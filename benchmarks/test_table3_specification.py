"""Table III: specification of the bSOM as implemented on FPGA.

Table III is a configuration table (40 neurons, 768-bit input and neuron
vectors, random initial weights, maximum neighbourhood of 4).  The benchmark
instantiates the cycle-accurate design with its defaults, times construction
plus weight initialisation, and checks the exported specification matches
the paper's table verbatim.
"""

from __future__ import annotations

from repro.hw import FpgaBsomConfig, FpgaBsomDesign


def _build_and_initialise():
    design = FpgaBsomDesign(FpgaBsomConfig(seed=0))
    design.initialise()
    return design


def test_table3_reproduction(benchmark):
    design = benchmark(_build_and_initialise)
    spec = design.specification()
    assert spec["network_size"] == "40 neurons"
    assert spec["input_vectors"] == "768 bits"
    assert spec["neuron_vectors"] == "768 bits"
    assert spec["initial_weights"] == "Random"
    assert spec["maximum_neighbourhood"] == "4 neurons"


def test_table3_initialisation_cycles(benchmark):
    """Weight initialisation takes exactly one cycle per weight bit (768)."""
    def initialise_cycles():
        design = FpgaBsomDesign(FpgaBsomConfig(seed=1))
        return design.initialise()

    cycles = benchmark(initialise_cycles)
    assert cycles == 768


def test_table3_random_initialisation_is_balanced():
    """'Random' initial weights: roughly half the bits are set, none are '#'."""
    design = FpgaBsomDesign(FpgaBsomConfig(seed=2))
    design.initialise()
    weights = design.export_weights()
    assert weights.dont_care_fraction() == 0.0
    density = weights.values.mean()
    assert 0.45 < density < 0.55
