"""Serve-layer load benchmark: the committed ``BENCH_serve.json`` baseline.

Replays a three-phase :class:`~repro.loadgen.WorkloadSpec` through the
open-loop load harness against a live ``StreamingInferenceService``:

* ``steady`` -- Poisson arrivals the service sustains comfortably; the
  baseline's p50/p99/p999 latency and steady throughput come from here.
* ``burst`` -- a burst train well past capacity; the baseline's
  *saturation throughput* (what the service actually answers per second
  when offered more than it can take) comes from here, and backpressure
  shedding is expected and recorded.
* ``soak`` -- a diurnal ramp with lifecycle churn mid-load: two
  hot-swaps, one register-submit-evict cycle against a throwaway victim
  model, and two rollout begin->promote / begin->demote cycles.  The
  hard contract (also enforced by ``scripts/check_serve.py`` in CI) is
  zero-drop at saturation: every submitted future goes terminal.

Everything on the generation side is seeded (one ``SeedSequence`` per
phase; see ``repro.loadgen.workload``), so the offered schedule is
bit-identical run to run; wall-clock variation enters only through the
service under test.  The aggregate is a projection of the existing
observability registry -- windowed deltas over
:func:`~repro.obs.export.metrics_record` snapshots -- not a new schema.

Results go to ``BENCH_serve.json`` at the repository root.  That file is
committed: ``scripts/check_serve.py`` uses its recorded saturation
throughput and steady p99 as CI regression bounds.  A plain test run only
writes the file when it is missing; regenerate deliberately (after serve
or loadgen changes) with::

    REPRO_WRITE_BENCH=1 python -m pytest benchmarks/test_serve_load.py

Thread pools are pinned to 1 by ``benchmarks/conftest.py`` so the numbers
are host-core-count independent.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import api
from repro.datasets import make_signature_clusters
from repro.loadgen import (
    BurstTrain,
    DiurnalRamp,
    Phase,
    PoissonProcess,
    WorkloadSpec,
    aggregate_run,
    phase_named,
    run_workload,
)
from repro.serve import ServiceConfig

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

SPEC_SEED = 20260808
POOL_IDENTITIES = 10
POOL_SAMPLES = 100
N_BITS = 128

#: Soak-phase lifecycle churn counts (mirrored by the assertions below and
#: by scripts/check_serve.py).
SOAK_SWAPS = 2
SOAK_EVICTIONS = 1
SOAK_ROLLOUTS = 2


def bench_spec() -> WorkloadSpec:
    """The committed benchmark workload: steady -> burst -> soak."""
    return WorkloadSpec(
        name="serve-bench",
        n_streams=256,
        zipf_exponent=0.95,
        seed=SPEC_SEED,
        phases=(
            Phase("steady", duration_s=1.0, arrival=PoissonProcess(600.0)),
            Phase(
                "burst",
                duration_s=0.8,
                arrival=BurstTrain(
                    base_rate_hz=400.0,
                    burst_rate_hz=20000.0,
                    period_s=0.4,
                    burst_fraction=0.5,
                ),
            ),
            Phase(
                "soak",
                duration_s=1.6,
                arrival=DiurnalRamp(300.0, 1200.0, period_s=0.8),
                hot_swaps=SOAK_SWAPS,
                evictions=SOAK_EVICTIONS,
                rollouts=SOAK_ROLLOUTS,
            ),
        ),
    )


def bench_config() -> ServiceConfig:
    """Small-but-realistic serving shape: the cache is deliberately far
    smaller than the pool's hot set so Zipf traffic churns the LRU."""
    return ServiceConfig(
        batch_size=16,
        max_delay_ms=2.0,
        cache_capacity=64,
        n_shards=2,
        max_pending=128,
    )


def run_bench():
    """Train, serve, replay the spec; returns ``(RunResult, aggregate)``."""
    signatures, labels = make_signature_clusters(
        POOL_IDENTITIES, POOL_SAMPLES, n_bits=N_BITS, seed=7
    )
    primary = api.train(
        signatures, labels, n_neurons=16, epochs=6, seed=1, backend="packed"
    )
    alternate = api.train(
        signatures, labels, n_neurons=24, epochs=8, seed=2, backend="packed"
    )
    service = api.serve({"hall": api.snapshot(primary)}, config=bench_config())
    try:
        run = run_workload(
            service,
            bench_spec(),
            signatures,
            model="hall",
            swap_source=lambda: api.snapshot(alternate),
        )
    finally:
        service.stop()
    return run, aggregate_run(run)


def test_serve_load_baseline():
    run, aggregate = run_bench()

    # Zero-drop at saturation: every future terminal, in every phase --
    # including the soak phase's victim-eviction and rollout churn.
    assert run.zero_drop, f"{run.unresolved} futures never resolved"

    # Accounting is exhaustive: each scheduled event ended exactly once.
    for phase in run.phases:
        assert (
            phase.answered + phase.shed + phase.failed + phase.unresolved
            == phase.offered
        ), f"phase {phase.name}: accounting leak"
        assert phase.failed == 0, f"phase {phase.name}: unexpected failures"
        assert phase.answered > 0, f"phase {phase.name}: nothing answered"

    # Soak actually churned the lifecycle mid-load.
    soak = run.phases[-1]
    assert soak.swaps == SOAK_SWAPS
    assert soak.evictions == SOAK_EVICTIONS
    assert soak.rollouts == SOAK_ROLLOUTS

    # The Zipf hot keys exercised the dedup/cache paths somewhere.
    steady_entry = phase_named(aggregate, "steady")
    burst_entry = phase_named(aggregate, "burst")
    soak_entry = phase_named(aggregate, "soak")
    assert steady_entry and burst_entry and soak_entry
    total_reuse = sum(
        entry["dedup_hits"] + entry["cache_hits"]
        for entry in aggregate["phases"]
    )
    assert total_reuse > 0, "Zipf skew never hit the dedup or cache paths"

    report = {
        "meta": {
            "spec": run.spec.name,
            "seed": run.spec.seed,
            "n_streams": run.spec.n_streams,
            "pool": f"{POOL_IDENTITIES}x{POOL_SAMPLES}x{N_BITS}b",
            "service": {
                "batch_size": 16,
                "max_delay_ms": 2.0,
                "cache_capacity": 64,
                "n_shards": 2,
                "max_pending": 128,
            },
            "source": "benchmarks/test_serve_load.py",
            "regenerate": (
                "REPRO_WRITE_BENCH=1 python -m pytest "
                "benchmarks/test_serve_load.py"
            ),
        },
        "phases": aggregate["phases"],
        "totals": aggregate["totals"],
        "baseline": {
            "steady_throughput_rps": steady_entry["throughput_rps"],
            "steady_p99_ms": steady_entry["latency_ms"]["p99"],
            "saturation_throughput_rps": burst_entry["throughput_rps"],
        },
    }
    if os.environ.get("REPRO_WRITE_BENCH") or not BENCH_PATH.exists():
        BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
