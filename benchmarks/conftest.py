"""Shared fixtures for the benchmark suite.

The benchmarks reproduce every table and figure of the paper on a reduced
protocol (smaller dataset scale and fewer repetitions than the paper's ten)
so that ``pytest benchmarks/ --benchmark-only`` completes in minutes.  The
full-scale protocol is available through ``examples/paper_tables.py`` /
``scripts/generate_experiment_results.py`` and its results are recorded in
EXPERIMENTS.md.

The shared dataset fixture and the serving-layer throughput benchmark draw
their seeds from the explicit constants below, so those numbers are
reproducible run to run.  (Benchmarks that predate the constants still
carry their own literal seeds inline -- explicit either way, just not yet
centralised here.)
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make this directory importable under pytest's importlib import mode (the
# repo-configured mode; prepend did it implicitly), then pull in the shared
# constants.  Importing bench_constants also pins the BLAS/OpenMP thread
# pools to 1 -- it must happen here, before numpy spins them up, or the
# BENCH numbers scale with the host's core count.
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_constants import (  # noqa: E402,F401  (re-exported for fixtures)
    BENCH_DATASET_SCALE,
    BENCH_DATASET_SEED,
    BENCH_NEURONS,
    BENCH_REPETITIONS,
    BENCH_SOM_SEED,
    BENCH_STREAM_SEED,
    BENCH_TRAIN_SEED,
)

import pytest

from repro.datasets import make_surveillance_dataset


@pytest.fixture(scope="session")
def bench_dataset():
    """Reduced-scale surveillance dataset shared by all accuracy benchmarks."""
    return make_surveillance_dataset(scale=BENCH_DATASET_SCALE, seed=BENCH_DATASET_SEED)
