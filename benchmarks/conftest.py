"""Shared fixtures for the benchmark suite.

The benchmarks reproduce every table and figure of the paper on a reduced
protocol (smaller dataset scale and fewer repetitions than the paper's ten)
so that ``pytest benchmarks/ --benchmark-only`` completes in minutes.  The
full-scale protocol is available through ``examples/paper_tables.py`` /
``scripts/generate_experiment_results.py`` and its results are recorded in
EXPERIMENTS.md.

The shared dataset fixture and the serving-layer throughput benchmark draw
their seeds from the explicit constants below, so those numbers are
reproducible run to run.  (Benchmarks that predate the constants still
carry their own literal seeds inline -- explicit either way, just not yet
centralised here.)
"""

from __future__ import annotations

import pytest

from repro.datasets import make_surveillance_dataset

#: Reduced-protocol constants shared by the accuracy benchmarks.
BENCH_DATASET_SCALE = 0.1
BENCH_REPETITIONS = 3
BENCH_NEURONS = 40

#: Explicit seeds: dataset construction, map weight initialisation, training
#: presentation order, and the serving-layer load generator, respectively.
BENCH_DATASET_SEED = 2010
BENCH_SOM_SEED = 0
BENCH_TRAIN_SEED = 1
BENCH_STREAM_SEED = 7


@pytest.fixture(scope="session")
def bench_dataset():
    """Reduced-scale surveillance dataset shared by all accuracy benchmarks."""
    return make_surveillance_dataset(scale=BENCH_DATASET_SCALE, seed=BENCH_DATASET_SEED)
