"""Shared fixtures for the benchmark suite.

The benchmarks reproduce every table and figure of the paper on a reduced
protocol (smaller dataset scale and fewer repetitions than the paper's ten)
so that ``pytest benchmarks/ --benchmark-only`` completes in minutes.  The
full-scale protocol is available through ``examples/paper_tables.py`` /
``scripts/generate_experiment_results.py`` and its results are recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.datasets import make_surveillance_dataset

#: Reduced-protocol constants shared by the accuracy benchmarks.
BENCH_DATASET_SCALE = 0.1
BENCH_REPETITIONS = 3
BENCH_NEURONS = 40


@pytest.fixture(scope="session")
def bench_dataset():
    """Reduced-scale surveillance dataset shared by all accuracy benchmarks."""
    return make_surveillance_dataset(scale=BENCH_DATASET_SCALE, seed=2010)
