"""Ablation: the unknown-object rejection threshold (section III-B).

"If the minimum Hamming distance exceeds a threshold value set during
training, the object is classified as unknown."  This ablation sweeps the
calibration percentile of that threshold and measures the two quantities it
trades off: accuracy on known objects (false rejections hurt it) and the
rejection rate on signatures from an object that was never trained on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BinarySom, SomClassifier, UNKNOWN_LABEL

PERCENTILES = (80.0, 95.0, 99.0, 100.0)
HELD_OUT_IDENTITY = 8
EPOCHS = 12


def _split_known_unknown(dataset):
    known_train = dataset.train_labels != HELD_OUT_IDENTITY
    known_test = dataset.test_labels != HELD_OUT_IDENTITY
    unknown_test = dataset.test_signatures[dataset.test_labels == HELD_OUT_IDENTITY]
    return (
        dataset.train_signatures[known_train],
        dataset.train_labels[known_train],
        dataset.test_signatures[known_test],
        dataset.test_labels[known_test],
        unknown_test,
    )


def _evaluate(dataset, percentile: float) -> tuple[float, float]:
    X_train, y_train, X_test, y_test, X_unknown = _split_known_unknown(dataset)
    classifier = SomClassifier(
        BinarySom(40, dataset.n_bits, seed=0), rejection_percentile=percentile
    )
    classifier.fit(X_train, y_train, epochs=EPOCHS, seed=1)
    known_accuracy = classifier.score(X_test, y_test)
    if X_unknown.shape[0]:
        rejected = float(np.mean(classifier.predict(X_unknown) == UNKNOWN_LABEL))
    else:
        rejected = float("nan")
    return known_accuracy, rejected


@pytest.fixture(scope="module")
def rejection_results(bench_dataset):
    return {p: _evaluate(bench_dataset, p) for p in PERCENTILES}


def test_ablation_rejection_reproduction(benchmark, bench_dataset):
    known_accuracy, _ = benchmark.pedantic(
        lambda: _evaluate(bench_dataset, 99.0), rounds=1, iterations=1
    )
    assert known_accuracy > 0.5


def test_tight_threshold_rejects_more_unknowns(rejection_results):
    """Lower calibration percentiles reject unseen objects at least as often."""
    tight = rejection_results[PERCENTILES[0]][1]
    loose = rejection_results[PERCENTILES[-1]][1]
    if not (np.isnan(tight) or np.isnan(loose)):
        assert tight >= loose


def test_loose_threshold_preserves_known_accuracy(rejection_results):
    """At the 100th percentile nothing from the training distribution is rejected,
    so known-object accuracy is at its ceiling."""
    accuracies = {p: acc for p, (acc, _) in rejection_results.items()}
    assert accuracies[100.0] >= accuracies[80.0] - 0.02


def test_rejection_is_a_real_tradeoff(rejection_results):
    for percentile, (accuracy, _) in rejection_results.items():
        assert accuracy > 0.45, percentile
