"""Figure 3: per-object binary signatures over time.

Figure 3 plots each training object's 768-bit signature frame by frame and
makes two qualitative points: a person's signature is broadly consistent
over time (horizontal banding in the plot) while still evolving from frame
to frame, and different people produce visibly different signatures.  The
benchmark regenerates the signature matrices from the synthetic dataset and
checks both properties quantitatively.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import run_figure3


@pytest.fixture(scope="module")
def figure3(bench_dataset):
    return run_figure3(bench_dataset, identities=[0, 1, 2])


def test_figure3_reproduction(benchmark, bench_dataset):
    result = benchmark.pedantic(
        lambda: run_figure3(bench_dataset, identities=[0, 1, 2]), rounds=1, iterations=1
    )
    assert set(result.signature_matrices) == {0, 1, 2}


def test_figure3_within_object_consistency(figure3):
    """Same-person signatures are much closer than different-person signatures."""
    assert figure3.within_identity_distance < figure3.between_identity_distance
    assert figure3.between_identity_distance > 1.3 * figure3.within_identity_distance


def test_figure3_signatures_evolve_over_time(figure3):
    """Consecutive frames of the same person are similar but not identical."""
    for matrix in figure3.signature_matrices.values():
        if matrix.shape[0] < 3:
            continue
        consecutive = np.count_nonzero(matrix[:-1] != matrix[1:], axis=1)
        assert consecutive.mean() > 0          # the signature evolves...
        assert consecutive.mean() < matrix.shape[1] / 4   # ...but stays consistent


def test_figure3_matrices_have_full_signature_width(figure3):
    for matrix in figure3.signature_matrices.values():
        assert matrix.shape[1] == 768
        assert set(np.unique(matrix)).issubset({0, 1})
