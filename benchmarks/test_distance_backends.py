"""Distance-backend benchmark grid: float32 GEMM vs packed uint64 vs naive.

Sweeps map sizes (16-1024 neurons) and batch sizes (1-4096 signatures) at
the paper's 768-bit signature width, asserting *bit-exact* agreement of all
three backends on every cell and timing the two production kernels (the
naive oracle is timed only on cells where it finishes in reasonable time;
its exactness is asserted everywhere via a row subsample).

Results go to ``BENCH_distance.json`` at the repository root.  That file
is committed: the module docstring of :mod:`repro.core.distance` and the
hybrid routing thresholds in :mod:`repro.core.backends` cite its crossover
points, and ``scripts/ci_check.sh`` uses its recorded 256-neuron/1024-batch
cell as the baseline for the packed-backend perf-regression guard.  To
keep that baseline an actual *baseline*, a plain test run only writes the
file when it is missing; regenerate it deliberately (after kernel changes)
with::

    REPRO_WRITE_BENCH=1 python -m pytest benchmarks/test_distance_backends.py

Thread counts are pinned to 1 by ``benchmarks/conftest.py`` so the numbers
are host-core-count independent.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.backends import (
    HAS_BITWISE_COUNT,
    GemmBackend,
    NaiveBackend,
    PackedBackend,
)
from repro.core.tristate import DONT_CARE

N_BITS = 768
NEURON_SIZES = (16, 64, 256, 1024)
BATCH_SIZES = (1, 8, 64, 1024, 4096)
TIMED_REPEATS = 3

#: The naive oracle is only *timed* on cells up to this neurons x batch
#: product; larger cells would dominate the suite's runtime without adding
#: information (it loses by orders of magnitude everywhere).
NAIVE_TIMING_MAX_PRODUCT = 256 * 1024

#: Bit-exactness against the oracle is asserted on every cell over at most
#: this many batch rows (the kernels are row-independent, so a subsample
#: proves the same arithmetic the full batch uses).
PARITY_MAX_ROWS = 512

#: The cell ``scripts/ci_check.sh`` guards against perf regressions.
BASELINE_CELL = {"n_neurons": 256, "batch": 1024}

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_distance.json"


def _make_weights(rng: np.random.Generator, n_neurons: int) -> np.ndarray:
    """Random tri-state weights with a guaranteed all-# neuron (row 0)."""
    weights = rng.integers(0, 3, size=(n_neurons, N_BITS), dtype=np.int8)
    weights[0] = DONT_CARE
    return weights


def _best_of(fn, repeats: int = TIMED_REPEATS) -> float:
    """Best-of-N wall-clock seconds (min is the standard noise filter)."""
    fn()  # warm-up: page in operands, trigger any lazy BLAS init
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_backend_grid_bit_exact_and_emit_bench():
    rng = np.random.default_rng(20100607)
    gemm, packed, naive = GemmBackend(), PackedBackend(), NaiveBackend()
    cells = []
    for n_neurons in NEURON_SIZES:
        weights = _make_weights(rng, n_neurons)
        gemm_ops = gemm.prepare(weights)
        packed_ops = packed.prepare(weights)
        naive_ops = naive.prepare(weights)
        for batch in BATCH_SIZES:
            inputs = rng.integers(0, 2, size=(batch, N_BITS), dtype=np.int8)

            # --- bit-exactness on every cell (subsampled rows) ---------- #
            sample = inputs[: min(batch, PARITY_MAX_ROWS)]
            oracle = naive.pairwise(naive_ops, sample)
            gemm_result = gemm.pairwise(gemm_ops, sample)
            packed_result = packed.pairwise(packed_ops, sample)
            assert np.array_equal(gemm_result, oracle)
            assert np.array_equal(packed_result, oracle)
            # The paper's all-# neuron edge case: distance 0 to everything.
            assert not oracle[:, 0].any()

            # --- timing ------------------------------------------------- #
            gemm_s = _best_of(lambda: gemm.pairwise(gemm_ops, inputs))
            packed_s = _best_of(lambda: packed.pairwise(packed_ops, inputs))
            naive_s = (
                _best_of(lambda: naive.pairwise(naive_ops, inputs), repeats=1)
                if n_neurons * batch <= NAIVE_TIMING_MAX_PRODUCT
                else None
            )
            cells.append(
                {
                    "n_neurons": n_neurons,
                    "batch": batch,
                    "gemm_ms": round(gemm_s * 1e3, 4),
                    "packed_ms": round(packed_s * 1e3, 4),
                    "naive_ms": None if naive_s is None else round(naive_s * 1e3, 4),
                    "speedup_packed_vs_gemm": round(gemm_s / packed_s, 2),
                }
            )

    best = max(cells, key=lambda cell: cell["speedup_packed_vs_gemm"])
    baseline = next(
        cell
        for cell in cells
        if cell["n_neurons"] == BASELINE_CELL["n_neurons"]
        and cell["batch"] == BASELINE_CELL["batch"]
    )
    report = {
        "meta": {
            "n_bits": N_BITS,
            "numpy": np.__version__,
            "popcount": "bitwise_count" if HAS_BITWISE_COUNT else "lut16",
            "omp_num_threads": os.environ.get("OMP_NUM_THREADS"),
            "timed_repeats": TIMED_REPEATS,
        },
        "cells": cells,
        "best_speedup_packed_vs_gemm": {
            "n_neurons": best["n_neurons"],
            "batch": best["batch"],
            "speedup": best["speedup_packed_vs_gemm"],
        },
        "baseline": {
            **BASELINE_CELL,
            "packed_ms": baseline["packed_ms"],
            "gemm_ms": baseline["gemm_ms"],
        },
    }
    if os.environ.get("REPRO_WRITE_BENCH") or not BENCH_PATH.exists():
        BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    # Acceptance: the packed kernel must beat the GEMM by >= 3x somewhere
    # on the grid (the committed BENCH_distance.json records where).  Only
    # enforceable with the native popcount ufunc -- on NumPy < 2.0 the
    # 16-bit LUT fallback is several times slower, and that is a property
    # of the host, not a kernel regression.
    if HAS_BITWISE_COUNT:
        assert best["speedup_packed_vs_gemm"] >= 3.0, (
            f"packed backend never reached 3x over GEMM; best was "
            f"{best['speedup_packed_vs_gemm']}x at {best['n_neurons']} neurons / "
            f"batch {best['batch']}"
        )
