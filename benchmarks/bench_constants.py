"""Shared constants (and thread pinning) for the benchmark suite.

Lives outside ``conftest.py`` so benchmark modules can import the
constants directly under any pytest import mode -- ``conftest.py`` puts
this directory on ``sys.path`` and re-exports everything for fixtures.

The thread pinning runs at import time, before numpy spins up its BLAS /
OpenMP pools, so BENCH numbers (and the GEMM-vs-packed crossover points in
``BENCH_distance.json``) are reproducible across hosts instead of scaling
with whatever core count the CI machine happens to have.  ``setdefault``
keeps an explicit operator override (e.g. ``OMP_NUM_THREADS=8`` for a
scaling study) in force.
"""

from __future__ import annotations

import os

for _threads_var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
):
    os.environ.setdefault(_threads_var, "1")

#: Reduced-protocol constants shared by the accuracy benchmarks.
BENCH_DATASET_SCALE = 0.1
BENCH_REPETITIONS = 3
BENCH_NEURONS = 40

#: Explicit seeds: dataset construction, map weight initialisation, training
#: presentation order, and the serving-layer load generator, respectively.
BENCH_DATASET_SEED = 2010
BENCH_SOM_SEED = 0
BENCH_TRAIN_SEED = 1
BENCH_STREAM_SEED = 7
