"""Vision front-end throughput: vectorized pipeline vs the seed oracle path.

End-to-end ``RecognitionSystem.process_frame`` frames/sec on a 320x240
synthetic entrance scene with five actors, comparing the vectorized
front-end (run-based CCL, separable morphology, single-pass blob
extraction, float32 in-place background, batched histograms) against the
retained seed implementation (``RecognitionSystemConfig(vectorized=False)``:
per-pixel two-pass CCL, full-kernel morphology, per-label full-frame blob
rescans, uint8-round-trip background differencing, per-blob histograms).
Before timing, the first frames are segmented through *both* paths and the
resulting blobs asserted bit-exact (mask, bounding box, centroid, area), so
the speedup is measured between interchangeable implementations.

Results go to ``BENCH_vision.json`` at the repository root.  That file is
committed: ``scripts/ci_check.sh`` uses its recorded vectorized frames/sec
as the baseline for the frame-rate regression guard
(``scripts/check_vision.py``, fail at >2x slower).  To keep that baseline
an actual *baseline*, a plain test run only writes the file when it is
missing; regenerate it deliberately (after front-end changes) with::

    REPRO_WRITE_BENCH=1 python -m pytest benchmarks/test_vision_throughput.py

Thread counts are pinned to 1 by ``benchmarks/conftest.py`` so the numbers
are host-core-count independent.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import BinarySom, SomClassifier
from repro.pipeline import RecognitionSystem, RecognitionSystemConfig
from repro.signatures import extract_signature
from repro.vision import ActorSpec, SceneConfig, SyntheticSurveillanceScene

#: The paper-scale camera resolution the acceptance criterion names.
SCENE_HEIGHT, SCENE_WIDTH = 240, 320

TRAIN_SCENE_SEED = 11
LIVE_SCENE_SEED = 23
SOM_SEED = 0
TRAIN_SEED = 1
TRAIN_FRAMES = 40
MIN_BLOB_AREA = 300
MIN_TRAIN_MASK_PIXELS = 300

#: Frames timed per measurement (both paths process the same prefix of the
#: same pre-rendered sequence; the oracle gets a shorter prefix because it
#: is orders of magnitude slower).
VECTORIZED_FRAMES = 10
ORACLE_FRAMES = 5
PARITY_FRAMES = 5
TIMED_REPEATS = 5
ORACLE_REPEATS = 2

#: Acceptance floor: the vectorized front-end must deliver at least this
#: many times the seed implementation's frames/sec.  The measured ratio is
#: ~11.6x (BENCH_vision.json), but the vectorized side's timed run is only
#: a few tens of milliseconds, so scheduler noise has been seen to squeeze
#: the best-of ratio below 10x on a busy host; the floor leaves headroom
#: for that while still catching any real regression (check_vision.py's
#: 2x wall-clock guard against the committed baseline is the tight bound).
SPEEDUP_FLOOR = 8.0

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_vision.json"


def bench_actors() -> list[ActorSpec]:
    """Five actors sized for the 320x240 scene (the paper's busy entrance)."""
    return [
        ActorSpec(0, torso_colour=(210, 40, 40), legs_colour=(40, 40, 60),
                  height=60, width=26, speed=2.0, entry_row=60, colour_jitter=3.0),
        ActorSpec(1, torso_colour=(40, 70, 210), legs_colour=(90, 90, 100),
                  height=64, width=28, speed=-2.4, entry_row=90, colour_jitter=3.0),
        ActorSpec(2, torso_colour=(60, 180, 70), legs_colour=(40, 40, 45),
                  height=62, width=27, speed=2.8, entry_row=130, colour_jitter=3.0),
        ActorSpec(3, torso_colour=(230, 200, 60), legs_colour=(60, 50, 40),
                  height=58, width=25, speed=-2.0, entry_row=40, colour_jitter=3.0),
        ActorSpec(4, torso_colour=(150, 60, 170), legs_colour=(30, 30, 50),
                  height=66, width=28, speed=2.4, entry_row=170, colour_jitter=3.0),
    ]


def bench_scene(seed: int) -> SyntheticSurveillanceScene:
    """A deterministic 320x240 scene (no jitter/occluders: stable blobs)."""
    config = SceneConfig(
        height=SCENE_HEIGHT, width=SCENE_WIDTH, lighting_amplitude=4.0,
        camera_jitter_pixels=0, pixel_noise_std=2.0, furniture_occluders=0,
        initial_pause_max_frames=0,
    )
    return SyntheticSurveillanceScene(actors=bench_actors(), config=config, seed=seed)


def train_bench_classifier() -> SomClassifier:
    """Fit a small bSOM on ground-truth silhouette signatures."""
    scene = bench_scene(TRAIN_SCENE_SEED)
    signatures, labels = [], []
    for frame in scene.frames(TRAIN_FRAMES):
        for identity, mask in frame.truth_masks.items():
            if mask.sum() < MIN_TRAIN_MASK_PIXELS:
                continue
            signatures.append(extract_signature(frame.image, mask).bits)
            labels.append(identity)
    X = np.array(signatures, dtype=np.uint8)
    y = np.array(labels, dtype=np.int64)
    return SomClassifier(BinarySom(16, 768, seed=SOM_SEED)).fit(
        X, y, epochs=6, seed=TRAIN_SEED
    )


def build_system(classifier: SomClassifier, vectorized: bool) -> RecognitionSystem:
    """A fresh recognition system primed with the live scene's clean plate."""
    system = RecognitionSystem(
        classifier,
        RecognitionSystemConfig(min_blob_area=MIN_BLOB_AREA, vectorized=vectorized),
    )
    system.initialise_background(bench_scene(LIVE_SCENE_SEED).background)
    return system


def live_frames(n_frames: int):
    """Pre-rendered live frames so rendering never pollutes the timings."""
    return list(bench_scene(LIVE_SCENE_SEED).frames(n_frames))


def time_pipeline(classifier, frames, vectorized: bool, repeats: int = TIMED_REPEATS):
    """Best-of-``repeats`` frames/sec plus the last run's metrics snapshot.

    Each repeat processes the sequence through a fresh system (background
    model and tracker state evolve frame to frame, so reusing one system
    would change the work measured).
    """
    best = float("inf")
    snapshot = None
    for _ in range(repeats):
        system = build_system(classifier, vectorized)
        start = time.perf_counter()
        for frame in frames:
            system.process_frame(frame)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        snapshot = system.metrics.snapshot()
    return len(frames) / best, snapshot


def assert_segmentation_parity(classifier, frames) -> int:
    """Both paths must produce bit-identical blobs; returns blobs compared.

    The background border/quantisation fix intentionally changes which
    near-threshold pixels segment as foreground, so the oracle system is
    given a vectorized subtractor here: the bit-exactness claim is for the
    morphology/CCL/blob stages on identical foreground masks.  (The timing
    runs below keep the seed subtractor in the seed path.)
    """
    from repro.vision import BackgroundSubtractor

    fast = build_system(classifier, vectorized=True)
    oracle = build_system(classifier, vectorized=False)
    oracle.subtractor = BackgroundSubtractor(
        threshold=oracle.config.difference_threshold, vectorized=True
    )
    oracle.subtractor.initialise(bench_scene(LIVE_SCENE_SEED).background)
    compared = 0
    for frame in frames:
        fast_blobs = fast.segment(frame.image)
        oracle_blobs = oracle.segment(frame.image)
        assert len(fast_blobs) == len(oracle_blobs)
        for a, b in zip(fast_blobs, oracle_blobs):
            assert a.label == b.label
            assert a.area == b.area
            assert a.bounding_box == b.bounding_box
            assert a.centroid == b.centroid
            assert np.array_equal(a.mask, b.mask)
            compared += 1
    return compared


def test_vision_throughput_and_emit_bench():
    classifier = train_bench_classifier()
    frames = live_frames(VECTORIZED_FRAMES)

    blobs_compared = assert_segmentation_parity(classifier, frames[:PARITY_FRAMES])
    assert blobs_compared > 0, "parity frames segmented no blobs; scene misconfigured"

    vectorized_fps, vectorized_snap = time_pipeline(
        classifier, frames, vectorized=True, repeats=TIMED_REPEATS
    )
    oracle_fps, oracle_snap = time_pipeline(
        classifier, frames[:ORACLE_FRAMES], vectorized=False,
        repeats=ORACLE_REPEATS,
    )
    speedup = vectorized_fps / oracle_fps

    def stage_table(snapshot):
        return {
            name: round(stats.mean_ms, 4)
            for name, stats in snapshot.stages.items()
        }

    report = {
        "meta": {
            "scene": f"{SCENE_WIDTH}x{SCENE_HEIGHT}",
            "actors": len(bench_actors()),
            "min_blob_area": MIN_BLOB_AREA,
            "vectorized_frames": VECTORIZED_FRAMES,
            "oracle_frames": ORACLE_FRAMES,
            "timed_repeats": TIMED_REPEATS,
            "parity_blobs_compared": blobs_compared,
            "numpy": np.__version__,
            "omp_num_threads": os.environ.get("OMP_NUM_THREADS"),
        },
        "fps_vectorized": round(vectorized_fps, 2),
        "fps_seed": round(oracle_fps, 2),
        "speedup": round(speedup, 2),
        "stage_mean_ms_vectorized": stage_table(vectorized_snap),
        "stage_mean_ms_seed": stage_table(oracle_snap),
        "baseline": {
            "frames": VECTORIZED_FRAMES,
            "fps_vectorized": round(vectorized_fps, 2),
        },
    }
    if os.environ.get("REPRO_WRITE_BENCH") or not BENCH_PATH.exists():
        BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    # Acceptance: the vectorized front-end must beat the seed implementation
    # by at least SPEEDUP_FLOOR end to end.  Both sides are pure CPU work
    # timed in the same single-threaded regime, so the ratio is a property
    # of the kernels, not of the host.
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized front-end only {speedup:.1f}x over the seed pipeline "
        f"({vectorized_fps:.1f} vs {oracle_fps:.1f} fps); floor is "
        f"{SPEEDUP_FLOOR}x"
    )
