"""Table IV: FPGA resource utilisation on the Virtex-4 XC4VLX160.

Paper numbers (post-synthesis, package FF1148, speed grade -10):

    flip-flops 4,095 (3%), 4-input LUTs 18,387 (13%), bonded IOBs 147 (19%),
    occupied slices 11,468 (16%), RAM16s 43 (14%).

The analytic resource model is calibrated once on this reference design;
the benchmark checks each row lands within 10% of the paper's figure and
that the utilisation percentages round to the same integers the paper
prints, then exercises the scaling questions the model exists to answer.
"""

from __future__ import annotations

import pytest

from repro.hw import FpgaBsomConfig, estimate_resources
from repro.hw.device import VIRTEX4_XC4VLX200, VIRTEX4_XC4VLX25
from repro.hw.resources import PAPER_TABLE4


def test_table4_reproduction(benchmark):
    report = benchmark(estimate_resources)
    utilisation = report.utilisation()
    for resource, paper_row in PAPER_TABLE4.items():
        assert utilisation[resource]["total"] == paper_row["total"]
        assert utilisation[resource]["used"] == pytest.approx(paper_row["used"], rel=0.10)
        assert round(utilisation[resource]["percent"]) == pytest.approx(
            paper_row["percent"], abs=1
        )


def test_table4_design_fits_reference_device():
    assert estimate_resources().fits()


def test_table4_scaling_with_network_size():
    """Doubling the number of neurons must not double total utilisation blindly
    -- storage and Hamming logic scale linearly, infrastructure does not."""
    reference = estimate_resources(FpgaBsomConfig(n_neurons=40)).total
    doubled = estimate_resources(FpgaBsomConfig(n_neurons=80)).total
    assert doubled.luts > reference.luts
    assert doubled.luts < 2.5 * reference.luts
    assert doubled.ram16s >= reference.ram16s


def test_table4_smaller_and_larger_devices():
    """The reference design overflows an XC4VLX25 but fits an XC4VLX200."""
    assert not estimate_resources(device=VIRTEX4_XC4VLX25).fits()
    assert estimate_resources(device=VIRTEX4_XC4VLX200).fits()
