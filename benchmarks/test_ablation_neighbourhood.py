"""Ablation: the shrinking neighbourhood schedule (section V-D).

The hardware shrinks the neighbourhood radius from 4 to 1 in equal segments
of the training run.  This ablation compares the paper's schedule against a
constant radius of 1 (no coarse ordering phase), a constant radius of 4 (no
refinement phase) and winner-only updates (radius 0, which the bSOM's
erosion dynamics cannot tolerate -- a single neuron swallows the data).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BinarySom, SomClassifier
from repro.core.topology import ConstantNeighbourhoodSchedule, StepwiseNeighbourhoodSchedule

SCHEDULES = {
    "paper_stepwise_4_to_1": StepwiseNeighbourhoodSchedule(max_radius=4),
    "constant_radius_1": ConstantNeighbourhoodSchedule(1),
    "constant_radius_4": ConstantNeighbourhoodSchedule(4),
    "winner_only": ConstantNeighbourhoodSchedule(0),
}
REPETITIONS = 3
EPOCHS = 15


def _mean_accuracy(dataset, schedule) -> float:
    scores = []
    for seed in range(REPETITIONS):
        classifier = SomClassifier(
            BinarySom(40, dataset.n_bits, seed=seed, schedule=schedule)
        )
        classifier.fit(
            dataset.train_signatures, dataset.train_labels, epochs=EPOCHS, seed=seed + 31
        )
        scores.append(classifier.score(dataset.test_signatures, dataset.test_labels))
    return float(np.mean(scores))


@pytest.fixture(scope="module")
def schedule_scores(bench_dataset):
    return {name: _mean_accuracy(bench_dataset, schedule) for name, schedule in SCHEDULES.items()}


def test_ablation_neighbourhood_reproduction(benchmark, bench_dataset):
    score = benchmark.pedantic(
        lambda: _mean_accuracy(bench_dataset, SCHEDULES["paper_stepwise_4_to_1"]),
        rounds=1,
        iterations=1,
    )
    assert 0.0 <= score <= 1.0


def test_paper_schedule_is_competitive(schedule_scores):
    best = max(
        score for name, score in schedule_scores.items() if name != "winner_only"
    )
    assert schedule_scores["paper_stepwise_4_to_1"] >= best - 0.05


def test_winner_only_updates_collapse(schedule_scores):
    """Without any neighbourhood the map collapses, far below the other variants."""
    assert schedule_scores["winner_only"] < schedule_scores["paper_stepwise_4_to_1"] - 0.15


def test_neighbourhood_needed_for_good_accuracy(schedule_scores):
    for name in ("paper_stepwise_4_to_1", "constant_radius_1", "constant_radius_4"):
        assert schedule_scores[name] > 0.5, name
