"""Figure 6 / section V-F: end-to-end recognition and the throughput claims.

The paper's deployment numbers: the design is clocked at 40 MHz, can train
with up to 25,000 patterns of 768 bits per second after initialisation, can
recognise far more signatures per second than the 30 fps tracker supplies,
trains several thousand patterns in under a second, and the deployed
recognition error is below 15.97% (Table I's best bSOM row).

The benchmark checks the analytic throughput model against those claims,
verifies the cycle-accurate simulation agrees with the analytic model, and
runs the figure-6 deployment flow (train off-line in software, load the
weights into the FPGA model, identify held-out signatures).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BinarySom, SomClassifier
from repro.hw import FpgaBsomConfig, FpgaBsomDesign, ThroughputModel
from repro.hw.throughput import CAMERA_FPS, PAPER_PATTERNS_PER_SECOND, paper_throughput_report


def test_figure6_reproduction(benchmark, bench_dataset):
    """The figure-6 flow: off-line training, FPGA deployment, live identification."""
    data = bench_dataset

    def deploy_and_identify():
        classifier = SomClassifier(BinarySom(40, data.n_bits, seed=0))
        classifier.fit(data.train_signatures, data.train_labels, epochs=10, seed=1)
        design = FpgaBsomDesign(FpgaBsomConfig(seed=0))
        design.load_weights(classifier.som)
        node_labels = classifier.labelling.node_labels
        predictions = []
        cycles = 0
        for signature in data.test_signatures:
            trace = design.present(signature)
            predictions.append(node_labels[trace.winner])
            cycles += trace.total_cycles
        return np.array(predictions), cycles

    predictions, cycles = benchmark.pedantic(deploy_and_identify, rounds=1, iterations=1)
    accuracy = float((predictions == data.test_labels).mean())
    # Paper: "less than 15.97% error"; the reduced synthetic protocol is noisier,
    # so the assertion uses a wider band while staying clearly above chance (1/9).
    assert accuracy > 0.6
    # Simulated wall-clock time for the whole test set at 40 MHz.
    seconds = cycles / 40e6
    assert seconds < 0.1


def test_figure6_training_throughput_matches_paper():
    report = paper_throughput_report()
    assert report.training_patterns_per_second == pytest.approx(
        PAPER_PATTERNS_PER_SECOND, rel=0.08
    )
    assert report.seconds_to_train[2_248] < 1.0
    assert report.seconds_to_train[25_000] <= 1.05


def test_figure6_recognition_outpaces_tracker():
    report = paper_throughput_report()
    # Five objects per frame at 30 fps is 150 signatures/second; the FPGA path
    # handles tens of thousands.
    assert report.recognitions_per_second > 300 * CAMERA_FPS


def test_figure6_simulation_agrees_with_analytic_model():
    rng = np.random.default_rng(0)
    design = FpgaBsomDesign(FpgaBsomConfig(seed=0))
    design.initialise()
    model = ThroughputModel()
    pattern = rng.integers(0, 2, 768).astype(np.uint8)
    assert design.present(pattern).total_cycles == model.cycles_per_recognition()
    assert design.train_pattern(pattern, 0, 10).total_cycles == model.cycles_per_training_pattern()


def test_figure6_throughput_scales_with_clock(benchmark):
    report = benchmark(ThroughputModel(FpgaBsomConfig(clock_mhz=80.0)).report)
    assert report.training_patterns_per_second == pytest.approx(
        2 * PAPER_PATTERNS_PER_SECOND, rel=0.08
    )
