"""Table I: mean recognition accuracy of cSOM vs bSOM over training iterations.

Paper numbers (40 neurons, 2,248 train / 1,139 test signatures, 10
repetitions): both algorithms sit in the 81.8%-87.4% band; the bSOM is
essentially at its plateau from 10 iterations while the cSOM starts lower
and keeps improving, overtaking the bSOM at large iteration counts.

The benchmark runs a reduced protocol (see ``benchmarks/conftest.py``) and
checks the *shape*: the bSOM's low-iteration accuracy is close to its own
high-iteration accuracy (it trains quickly), the cSOM improves materially
between the low and high iteration counts, and the cSOM ends at or above
the bSOM.
"""

from __future__ import annotations

import pytest

from repro.eval import run_table1
from repro.eval.experiments import Table1Config

#: Reduced iteration grid spanning the paper's 10..500 range.
BENCH_ITERATIONS = (10, 40, 120)
BENCH_REPETITIONS = 3
BENCH_NEURONS = 40


@pytest.fixture(scope="module")
def table1_result(bench_dataset):
    config = Table1Config(
        iterations=BENCH_ITERATIONS,
        repetitions=BENCH_REPETITIONS,
        n_neurons=BENCH_NEURONS,
    )
    return run_table1(bench_dataset, config)


def test_table1_reproduction(benchmark, bench_dataset):
    """Time one full (reduced) Table I cell: both SOMs at 10 iterations."""
    config = Table1Config(iterations=(10,), repetitions=1, n_neurons=BENCH_NEURONS)
    result = benchmark.pedantic(
        lambda: run_table1(bench_dataset, config), rounds=1, iterations=1
    )
    assert len(result.rows) == 1


def test_table1_shape_bsom_trains_quickly(table1_result):
    """bSOM accuracy at the smallest iteration count is already near its plateau."""
    low = table1_result.row(BENCH_ITERATIONS[0]).bsom_mean
    high = table1_result.row(BENCH_ITERATIONS[-1]).bsom_mean
    assert low > 0.6
    assert low >= high - 0.08


def test_table1_shape_csom_improves_with_iterations(table1_result):
    """cSOM improves materially from the low to the high iteration count."""
    low = table1_result.row(BENCH_ITERATIONS[0]).csom_mean
    high = table1_result.row(BENCH_ITERATIONS[-1]).csom_mean
    assert high > low + 0.03


def test_table1_shape_bsom_wins_early_csom_wins_late(table1_result):
    """The crossover the paper reports: bSOM ahead early, cSOM at least even late."""
    first = table1_result.row(BENCH_ITERATIONS[0])
    last = table1_result.row(BENCH_ITERATIONS[-1])
    assert first.bsom_mean > first.csom_mean
    assert last.csom_mean >= last.bsom_mean - 0.03


def test_table1_accuracies_in_plausible_band(table1_result):
    """All means stay inside a broad version of the paper's 80-90% band."""
    for row in table1_result.rows:
        assert 0.55 <= row.bsom_mean <= 1.0
        assert 0.45 <= row.csom_mean <= 1.0
