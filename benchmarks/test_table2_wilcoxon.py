"""Table II: one-tailed Wilcoxon rank-sum tests on the Table I repetitions.

The paper's conclusion from Table II is directional: at small iteration
counts the bSOM's accuracy distribution ranks significantly higher than the
cSOM's, and at large iteration counts the relationship flips.  The benchmark
reruns the reduced Table I protocol with enough repetitions for the rank-sum
test to have some power and checks that the verdict symbols follow that
direction (allowing "no significant difference" at either end, as the paper
itself records for some rows).
"""

from __future__ import annotations

import pytest

from repro.eval import run_table1, run_table2
from repro.eval.experiments import Table1Config

BENCH_ITERATIONS = (10, 120)
BENCH_REPETITIONS = 5


@pytest.fixture(scope="module")
def table2_rows(bench_dataset):
    table1 = run_table1(
        bench_dataset,
        Table1Config(iterations=BENCH_ITERATIONS, repetitions=BENCH_REPETITIONS, n_neurons=40),
    )
    return run_table2(table1)


def test_table2_reproduction(benchmark, bench_dataset):
    """Time the statistical analysis itself (given a precomputed Table I)."""
    table1 = run_table1(
        bench_dataset, Table1Config(iterations=(10,), repetitions=3, n_neurons=40)
    )
    rows = benchmark(run_table2, table1)
    assert len(rows) == 1


def test_table2_low_iterations_favour_bsom(table2_rows):
    row = next(r for r in table2_rows if r.iterations == BENCH_ITERATIONS[0])
    # bSOM better (">") or statistically inconclusive; never significantly worse.
    assert row.symbol in {">", "-"}
    if row.symbol == ">":
        assert row.z < 0  # paper sign convention: negative z when bSOM ranks higher


def test_table2_high_iterations_do_not_favour_bsom_significantly(table2_rows):
    row = next(r for r in table2_rows if r.iterations == BENCH_ITERATIONS[-1])
    assert row.symbol in {"<", "-"}


def test_table2_mean_ranks_are_complementary(table2_rows):
    expected_total = 2 * (2 * BENCH_REPETITIONS + 1) / 2
    for row in table2_rows:
        assert row.csom_mean_rank + row.bsom_mean_rank == pytest.approx(expected_total)
        assert 0.0 <= row.p_value <= 1.0
