"""Ablation: histogram binarisation rule (mean vs median vs fixed fraction).

The paper binarises the colour histogram at the mean bin count (equation 1).
This ablation rebuilds the dataset with two alternative thresholding rules
and compares end-to-end recognition accuracy.  The expectation is that the
mean rule is at least as good as the alternatives -- it adapts the number of
set bits to the silhouette's colour diversity, which is the cue the paper's
signature relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BinarySom, SomClassifier
from repro.datasets import make_surveillance_dataset
from repro.signatures import FixedFractionThreshold, MeanThreshold, MedianThreshold

STRATEGIES = {
    "mean": MeanThreshold(),
    "median": MedianThreshold(),
    "fixed_fraction_25": FixedFractionThreshold(0.25),
}
SCALE = 0.08
EPOCHS = 12


def _accuracy_with_strategy(strategy) -> float:
    dataset = make_surveillance_dataset(
        scale=SCALE, seed=2010, strategy=strategy, use_cache=False
    )
    scores = []
    for seed in range(2):
        classifier = SomClassifier(BinarySom(40, dataset.n_bits, seed=seed))
        classifier.fit(
            dataset.train_signatures, dataset.train_labels, epochs=EPOCHS, seed=seed + 7
        )
        scores.append(classifier.score(dataset.test_signatures, dataset.test_labels))
    return float(np.mean(scores))


@pytest.fixture(scope="module")
def threshold_scores():
    return {name: _accuracy_with_strategy(strategy) for name, strategy in STRATEGIES.items()}


def test_ablation_threshold_reproduction(benchmark):
    score = benchmark.pedantic(
        lambda: _accuracy_with_strategy(MeanThreshold()), rounds=1, iterations=1
    )
    assert 0.0 <= score <= 1.0


def test_mean_threshold_is_competitive(threshold_scores):
    """The paper's rule is within a small margin of (or better than) every alternative."""
    best = max(threshold_scores.values())
    assert threshold_scores["mean"] >= best - 0.05


def test_all_strategies_produce_usable_signatures(threshold_scores):
    for name, score in threshold_scores.items():
        assert score > 1.0 / 9.0, name
