"""Ablation: tri-state update rules vs purely binary weights.

DESIGN.md calls out the '#' (don't care) state as a design choice to ablate.
Three variants are compared on the same data:

* the library default (full rule for the winner, stochastically attenuated
  rule for neighbours) -- weights use all three states,
* the "full everywhere" rule the hardware block diagram suggests most
  literally -- also tri-state, but with much more aggressive erosion, and
* a binary-only variant (commit rules only, no '#' ever created) -- this is
  what the bSOM degenerates to without the tri-state contribution.

The expectation from the paper's framing: the tri-state variants should not
be worse than the binary-only variant, and the default should be the best
of the three.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BinarySom, SomClassifier
from repro.core.bsom import BsomUpdateRule

RULES = {
    "default_stochastic": BsomUpdateRule(),
    "full_everywhere": BsomUpdateRule(neighbour_rule="full"),
    "binary_only": BsomUpdateRule(winner_rule="commit", neighbour_rule="commit"),
}
REPETITIONS = 3
EPOCHS = 15


def _mean_accuracy(dataset, rule: BsomUpdateRule) -> float:
    scores = []
    for seed in range(REPETITIONS):
        classifier = SomClassifier(
            BinarySom(40, dataset.n_bits, seed=seed, update_rule=rule)
        )
        classifier.fit(
            dataset.train_signatures, dataset.train_labels, epochs=EPOCHS, seed=seed + 100
        )
        scores.append(classifier.score(dataset.test_signatures, dataset.test_labels))
    return float(np.mean(scores))


@pytest.fixture(scope="module")
def ablation_scores(bench_dataset):
    return {name: _mean_accuracy(bench_dataset, rule) for name, rule in RULES.items()}


def test_ablation_tristate_reproduction(benchmark, bench_dataset):
    score = benchmark.pedantic(
        lambda: _mean_accuracy(bench_dataset, RULES["default_stochastic"]),
        rounds=1,
        iterations=1,
    )
    assert 0.0 <= score <= 1.0


def test_default_rule_beats_binary_only(ablation_scores):
    assert ablation_scores["default_stochastic"] > ablation_scores["binary_only"]


def test_default_rule_at_least_matches_full_everywhere(ablation_scores):
    assert (
        ablation_scores["default_stochastic"]
        >= ablation_scores["full_everywhere"] - 0.02
    )


def test_all_variants_above_chance(ablation_scores):
    for name, score in ablation_scores.items():
        assert score > 1.0 / 9.0, name
