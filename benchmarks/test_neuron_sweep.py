"""Section IV neuron sweep: recognition accuracy vs map size.

The paper tests map sizes from 10 to 100 neurons in steps of 10 and reports
that (i) nine neurons is the logical minimum for nine objects but 40 are
needed for good performance, (ii) with more than 50 neurons both SOMs exceed
90% recognition, and (iii) large maps leave some neurons unused.  The
benchmark sweeps a reduced grid and checks those three observations in
relaxed form.
"""

from __future__ import annotations

import pytest

from repro.eval import run_neuron_sweep
from repro.eval.experiments import NeuronSweepConfig

BENCH_COUNTS = (10, 40, 80)


@pytest.fixture(scope="module")
def sweep_rows(bench_dataset):
    config = NeuronSweepConfig(neuron_counts=BENCH_COUNTS, repetitions=2, epochs=20)
    return run_neuron_sweep(bench_dataset, config)


def test_neuron_sweep_reproduction(benchmark, bench_dataset):
    config = NeuronSweepConfig(neuron_counts=(10,), repetitions=1, epochs=10)
    rows = benchmark.pedantic(
        lambda: run_neuron_sweep(bench_dataset, config), rounds=1, iterations=1
    )
    assert len(rows) == 1


def test_neuron_sweep_accuracy_improves_with_map_size(sweep_rows):
    by_size = {row.n_neurons: row for row in sweep_rows}
    assert by_size[80].bsom_accuracy >= by_size[10].bsom_accuracy - 0.02
    assert by_size[40].bsom_accuracy > 0.6


def test_neuron_sweep_large_maps_leave_neurons_unused(sweep_rows):
    largest = max(sweep_rows, key=lambda row: row.n_neurons)
    assert largest.bsom_used_neurons < largest.n_neurons
    assert largest.csom_used_neurons <= largest.n_neurons


def test_neuron_sweep_small_map_uses_most_neurons(sweep_rows):
    smallest = min(sweep_rows, key=lambda row: row.n_neurons)
    assert smallest.bsom_used_neurons >= 0.5 * smallest.n_neurons
