"""Figures 4 and 5: the parallel Hamming unit and the WTA comparator tree.

Section V-C fixes the cycle budget of the recognition datapath: the Hamming
distances of all 40 neurons are computed in parallel in exactly 768 cycles
(one per input bit), and the comparator tree finds the minimum of the forty
10-bit distances in exactly 7 cycles.  The benchmark runs the cycle-accurate
blocks and checks those numbers, plus the structural properties of figure 5
(comparator count halving per stage).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import batch_masked_hamming
from repro.hw import FpgaBsomConfig, FpgaBsomDesign
from repro.hw.blocks import HammingDistanceUnit, WinnerTakeAllUnit


@pytest.fixture(scope="module")
def reference_design():
    design = FpgaBsomDesign(FpgaBsomConfig(seed=0))
    design.initialise()
    return design


def test_figure5_reproduction(benchmark, reference_design, rng=np.random.default_rng(0)):
    """Time one full recognition pass and verify the per-block cycle budget."""
    pattern = rng.integers(0, 2, 768).astype(np.uint8)
    trace = benchmark(reference_design.present, pattern)
    assert trace.hamming_cycles == 768
    assert trace.wta_cycles == 7
    assert trace.input_cycles == 768


def test_figure5_wta_cycles_for_40_neurons():
    wta = WinnerTakeAllUnit(40)
    assert wta.cycles_required == 7
    assert wta.comparators_per_stage() == [32, 16, 8, 4, 2, 1]


def test_figure5_wta_selects_true_minimum(benchmark):
    rng = np.random.default_rng(3)
    wta = WinnerTakeAllUnit(40)
    distances = rng.integers(0, 768, size=40)

    winner, minimum = benchmark(wta.select, distances)
    assert minimum == distances.min()
    assert winner == int(np.argmin(distances))


def test_figure4_hamming_unit_matches_equation3(benchmark):
    """The 10-bit parallel Hamming unit agrees with the reference equation."""
    rng = np.random.default_rng(4)
    unit = HammingDistanceUnit(40, 768)
    assert unit.counter_width == 10
    assert unit.cycles_required == 768
    value = rng.integers(0, 2, size=(40, 768)).astype(np.uint8)
    care = (rng.random(size=(40, 768)) > 0.2).astype(np.uint8)
    pattern = rng.integers(0, 2, 768).astype(np.uint8)

    distances = benchmark(unit.compute, pattern, value, care)
    weights = np.where(care == 1, value, 2).astype(np.int8)
    assert np.array_equal(distances, batch_masked_hamming(weights, pattern))


def test_figure5_cycle_count_scales_logarithmically():
    assert WinnerTakeAllUnit(10).cycles_required == 5
    assert WinnerTakeAllUnit(20).cycles_required == 6
    assert WinnerTakeAllUnit(40).cycles_required == 7
    assert WinnerTakeAllUnit(80).cycles_required == 8
