"""Serving-layer throughput: micro-batched and cached vs one-at-a-time.

The paper's FPGA wins its throughput by scoring one signature against all
neurons in parallel (figure 6 / Table IV); the software serving layer wins
its own by scoring *many signatures* against all neurons in one
``pairwise_masked_hamming`` GEMM, and by memoising repeated silhouettes in
the signature LRU cache.  These benchmarks quantify both levers on the
reduced surveillance protocol, following the conventions of
``test_figure6_throughput.py``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import BinarySom, SomClassifier
from repro.serve import (
    ServiceConfig,
    SimulatedCameraStream,
    StreamingInferenceService,
    drive_streams,
)

# Shared constants live beside conftest.py, which puts this directory on
# sys.path before collection so the import works under any pytest import
# mode.
from bench_constants import (
    BENCH_NEURONS,
    BENCH_SOM_SEED,
    BENCH_STREAM_SEED,
    BENCH_TRAIN_SEED,
)

#: Signatures per throughput measurement (the issue's acceptance size).
SERVE_SIGNATURES = 1000
#: Acceptance floor: vectorised predict_batch vs looped predict_one.
SERVE_BATCH_SPEEDUP_FLOOR = 5.0
#: Simulated camera fan-in for the service benchmark.
SERVE_STREAMS = 4
SERVE_FRAMES_PER_STREAM = 250
SERVE_REPEAT_PROBABILITY = 0.5


@pytest.fixture(scope="module")
def serve_classifier(bench_dataset):
    """A bSOM classifier trained on the reduced surveillance protocol."""
    classifier = SomClassifier(
        BinarySom(BENCH_NEURONS, bench_dataset.n_bits, seed=BENCH_SOM_SEED)
    )
    return classifier.fit(
        bench_dataset.train_signatures,
        bench_dataset.train_labels,
        epochs=10,
        seed=BENCH_TRAIN_SEED,
    )


@pytest.fixture(scope="module")
def signature_block(bench_dataset):
    """Exactly SERVE_SIGNATURES test signatures (tiled when the set is smaller)."""
    signatures = bench_dataset.test_signatures
    repeats = -(-SERVE_SIGNATURES // signatures.shape[0])
    return np.tile(signatures, (repeats, 1))[:SERVE_SIGNATURES]


def _best_of(callable_, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_predict_batch_speedup_over_looped(serve_classifier, signature_block, benchmark):
    """One vectorised batch call beats 1k looped predict_one calls >= 5x."""
    looped_s = _best_of(
        lambda: [serve_classifier.predict_one(row) for row in signature_block]
    )
    batched_s = _best_of(lambda: serve_classifier.predict_batch(signature_block))
    batch = benchmark.pedantic(
        serve_classifier.predict_batch, args=(signature_block,), rounds=3, iterations=1
    )
    assert len(batch) == SERVE_SIGNATURES
    speedup = looped_s / batched_s
    assert speedup >= SERVE_BATCH_SPEEDUP_FLOOR, (
        f"batched path only {speedup:.1f}x faster than looped "
        f"({batched_s * 1e3:.1f} ms vs {looped_s * 1e3:.1f} ms)"
    )
    # Both paths agree bit-for-bit (the regression tests pin this per-row).
    looped_labels = [serve_classifier.predict_one(row).label for row in signature_block]
    np.testing.assert_array_equal(batch.labels, looped_labels)


def test_service_throughput_and_cache_hit_rate(
    bench_dataset, serve_classifier, benchmark
):
    """Micro-batched multi-stream serving outpaces one-at-a-time classification."""
    total_frames = SERVE_STREAMS * SERVE_FRAMES_PER_STREAM
    block = np.tile(
        bench_dataset.test_signatures,
        (-(-total_frames // bench_dataset.test_signatures.shape[0]), 1),
    )[:total_frames]
    single_sample_s = _best_of(
        lambda: [serve_classifier.predict_one(row) for row in block], rounds=3
    )

    def make_streams():
        return [
            SimulatedCameraStream(
                f"cam-{index}",
                bench_dataset.test_signatures,
                bench_dataset.test_labels,
                n_frames=SERVE_FRAMES_PER_STREAM,
                repeat_probability=SERVE_REPEAT_PROBABILITY,
                seed=BENCH_STREAM_SEED + index,
            )
            for index in range(SERVE_STREAMS)
        ]

    def serve_two_rounds():
        service = StreamingInferenceService(
            config=ServiceConfig(batch_size=32, max_delay_ms=5.0, n_shards=2)
        )
        service.register_model("bsom", serve_classifier)
        with service:
            # Cold round: mostly SOM work, measures micro-batched throughput.
            start = time.perf_counter()
            cold = drive_streams(service, make_streams(), model="bsom")
            cold_s = time.perf_counter() - start
            # Warm round: the pool is now cached, measures the cache path.
            warm = drive_streams(service, make_streams(), model="bsom")
        return cold, warm, service.metrics_snapshot(), cold_s

    cold, warm, snapshot, cold_s = benchmark.pedantic(
        serve_two_rounds, rounds=1, iterations=1
    )
    # Best-of for the wall-clock guard below: a single cold round swings
    # tens of percent with OS scheduling, so compare best against best
    # (the single-threaded baseline above is best-of-3 for the same
    # reason).  Correctness assertions still use the measured round.
    for _ in range(2):
        cold_s = min(cold_s, serve_two_rounds()[3])
    assert sum(len(report.responses) for report in cold) == total_frames
    assert sum(len(report.responses) for report in warm) == total_frames
    # The warm round replays cached pool signatures: repeats skip the SOM.
    warm_hits = sum(report.cache_hits for report in warm)
    assert warm_hits / total_frames > 0.9
    assert snapshot.cache_hit_rate > 0.2
    assert snapshot.batches_total > 0
    assert 0.0 < snapshot.mean_batch_fill <= 1.0
    # Four concurrent micro-batched streams keep pace with sequential
    # predict_one.  The comparison baseline moved under this check's feet:
    # the distance backends (cached operands + per-shape kernel routing)
    # roughly doubled in-process predict_one on the 40-neuron bench map,
    # while the service's per-request cost is queue/future/thread overhead
    # that a single-CPU box cannot hide, now including the always-on shard
    # supervisor's heartbeat accounting (~6% measured).  Best-of-3 against
    # best-of-3 the ratio sits around 0.5-0.6 with ~20% scheduling swing,
    # so the 0.35 factor keeps the check meaningful as a "service overhead
    # stays bounded" guard without flaking on a loaded CI box; the hard
    # >= 5x batching guarantee lives in the predict_batch test above,
    # which compares compute, not wall-clock thread scheduling.
    service_throughput = total_frames / cold_s
    single_throughput = total_frames / single_sample_s
    assert service_throughput > 0.35 * single_throughput, (
        f"service throughput {service_throughput:,.0f}/s fell below "
        f"0.35x the sequential baseline {single_throughput:,.0f}/s"
    )
    # Latency telemetry is present and ordered.
    assert 0.0 <= snapshot.latency_p50_ms <= snapshot.latency_p99_ms
