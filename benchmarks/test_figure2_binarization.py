"""Figure 2: converting a histogram into a binary feature vector.

Figure 2 shows a 16-bin histogram thresholded at the mean of all bins
(equations 1 and 2): bins at or above the mean produce a 1, the rest a 0.
The benchmark times the full front end (histogram + binarisation) on a
realistic silhouette and checks the figure's defining properties.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.signatures import binarize_histogram, extract_signature, mean_threshold, rgb_histogram


def _figure2_histogram():
    return np.array([5, 1, 6, 7, 4, 1, 6, 0, 5, 1, 4, 3, 0, 0, 0, 3], dtype=np.float64)


def test_figure2_reproduction(benchmark):
    histogram = _figure2_histogram()
    bits = benchmark(binarize_histogram, histogram)
    theta = mean_threshold(histogram)
    assert theta == pytest.approx(histogram.mean())
    assert np.array_equal(bits, (histogram >= theta).astype(np.uint8))
    # Both states occur, as in the figure.
    assert 0 < bits.sum() < bits.size


def test_figure2_full_signature_front_end(benchmark):
    """Histogram + binarisation for one silhouette, the per-object cost on the CPU side."""
    rng = np.random.default_rng(0)
    image = rng.integers(0, 256, size=(120, 160, 3)).astype(np.uint8)
    mask = np.zeros((120, 160), dtype=bool)
    mask[20:100, 40:90] = True

    signature = benchmark(extract_signature, image, mask)
    assert len(signature) == 768
    histogram = rgb_histogram(image, mask)
    assert signature.popcount == int((histogram >= histogram.mean()).sum())


def test_figure2_minimum_silhouette_guarantees_positive_threshold():
    """The paper's 768-pixel filter guarantees theta >= 1 for a 768-bin histogram."""
    rng = np.random.default_rng(1)
    image = rng.integers(0, 256, size=(64, 64, 3)).astype(np.uint8)
    mask = np.zeros((64, 64), dtype=bool)
    mask.reshape(-1)[:768] = True
    histogram = rgb_histogram(image, mask)
    assert mean_threshold(histogram) >= 1.0
