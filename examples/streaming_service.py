"""Streaming service demo: N simulated cameras, one registry, one hot-swap.

The paper deploys one bSOM behind one camera; this demo shows the serving
subsystem (:mod:`repro.serve`) scaling that deployment sideways through the
:mod:`repro.api` lifecycle facade:

1. train a bSOM identifier off-line and snapshot it with ``api.save``
   (exactly the paper's train-on-PC, ship-the-weights flow),
2. stand up the service with ``api.serve`` -- micro-batching scheduler,
   sharded model registry, signature LRU cache, in-flight dedup,
   telemetry -- straight from the loaded snapshot,
3. drive several concurrent simulated camera streams through it,
4. hot-swap to a longer-trained map with ``api.swap`` (the software
   "reflash": zero dropped requests) and drive the streams again, and
5. print the telemetry: throughput, latency percentiles, batch fill,
   cache/dedup hit-rates and the swap counter -- and, with
   ``--metrics-out``, append the full metric registry plus lifecycle
   events (the hot-swap, cache invalidation) as JSONL snapshots.

With ``--inject-faults`` the first drive phase runs under a deterministic
:class:`~repro.serve.FaultInjector` that kills one worker shard mid-wave:
the frames in the abandoned micro-batch fail fast with
``ShardFailedError``, the shard supervisor detects the dead thread and
restarts it, and the remaining frames resolve on the replacement worker.
The restart is visible in the telemetry (``shard restarts`` line, the
``shard_restart`` event) and in ``--metrics-out`` as the
``serve_shard_restarts_total`` counter.

Run with::

    python examples/streaming_service.py [--streams 6] [--frames 200] \
        [--metrics-out metrics.jsonl] [--inject-faults]
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

from repro import api
from repro.datasets import make_surveillance_dataset
from repro.errors import ServiceError, ServiceOverloadedError
from repro.obs import JsonlExporter
from repro.serve import (
    SHARD_DEATH,
    FaultInjector,
    FaultSpec,
    ServiceConfig,
    SimulatedCameraStream,
    SupervisorConfig,
    drive_streams,
)


def _drive(service, dataset, n_streams, frames_per_stream, seed0):
    streams = [
        SimulatedCameraStream(
            f"cam-{index}",
            dataset.test_signatures,
            dataset.test_labels,
            n_frames=frames_per_stream,
            repeat_probability=0.4,
            seed=seed0 + index,
        )
        for index in range(n_streams)
    ]
    start = time.perf_counter()
    reports = drive_streams(service, streams, model="hall")
    elapsed = time.perf_counter() - start
    answered = sum(len(report.responses) for report in reports)
    print(f"served {answered} classifications in {elapsed:.2f} s "
          f"({answered / elapsed:,.0f} signatures/s)")
    for report in reports:
        print(
            f"  {report.stream_id}: {len(report.responses)} responses, "
            f"accuracy {report.accuracy:.2%}, cache hits {report.cache_hits}, "
            f"backpressure retries {report.backpressure_retries}"
        )
    return reports


def _drive_through_fault(service, dataset, n_streams, frames_per_stream, seed0):
    """Drive the streams while the injector kills a worker shard.

    ``drive_streams`` surfaces non-overload failures to the caller, so this
    phase submits frames directly and counts per-future outcomes instead:
    the frames in the micro-batch the dying worker abandoned fail with
    ``ShardFailedError``; everything queued behind them is re-dispatched to
    the supervisor's replacement worker and resolves normally.
    """
    streams = [
        SimulatedCameraStream(
            f"cam-{index}",
            dataset.test_signatures,
            dataset.test_labels,
            n_frames=frames_per_stream,
            repeat_probability=0.4,
            seed=seed0 + index,
        )
        for index in range(n_streams)
    ]
    start = time.perf_counter()
    futures = []
    for stream in streams:
        for signature, _truth in stream.frames():
            while True:
                try:
                    futures.append(
                        service.submit(
                            signature, model="hall", stream_id=stream.stream_id
                        )
                    )
                    break
                except ServiceOverloadedError:
                    time.sleep(0.002)
    answered = failed = 0
    for future in futures:
        try:
            future.result(30.0)
            answered += 1
        except ServiceError:
            failed += 1
    elapsed = time.perf_counter() - start
    # The supervisor fails the abandoned futures before it finishes
    # standing up the replacement worker, so give it a beat to record.
    poll_deadline = time.monotonic() + 2.0
    restart_events = list(service.obs.events.events(kind="shard_restart"))
    while not restart_events and time.monotonic() < poll_deadline:
        time.sleep(0.01)
        restart_events = list(service.obs.events.events(kind="shard_restart"))
    print(f"served {answered} classifications in {elapsed:.2f} s; "
          f"{failed} frame(s) failed fast with the abandoned micro-batch "
          f"(coalesced duplicates included)")
    print(f"supervisor restarted {len(restart_events)} worker shard(s); "
          f"every other frame resolved on the replacement")
    for event in restart_events:
        print(f"  shard_restart event: {event.fields}")


def main(
    n_streams: int = 6,
    frames_per_stream: int = 200,
    metrics_out: str | None = None,
    inject_faults: bool = False,
) -> None:
    print("=== 1. Off-line training and snapshot ===")
    dataset = make_surveillance_dataset(scale=0.1, seed=2010)
    classifier = api.train(
        dataset.train_signatures, dataset.train_labels,
        n_neurons=40, epochs=15, seed=2010,
    )
    accuracy = classifier.score(dataset.test_signatures, dataset.test_labels)
    print(f"trained bSOM accuracy on held-out signatures: {accuracy:.2%}")

    snapshot_path = Path(tempfile.mkdtemp()) / "hall-bsom.npz"
    api.save(classifier, snapshot_path)
    print(f"snapshot written to {snapshot_path}")

    print("\n=== 2. Service: registry + shards + micro-batching + cache ===")
    injector = None
    if inject_faults:
        # Deterministic chaos: after one healthy micro-batch, the next
        # worker to take a batch dies with it in hand -- exactly once.
        injector = FaultInjector(
            seed=2010,
            specs=[FaultSpec(SHARD_DEATH, start_after=1, max_fires=1)],
        )
    config = ServiceConfig(
        batch_size=32,
        max_delay_ms=5.0,
        cache_capacity=4096,
        n_shards=2,
        routing_policy="least_loaded",
        fault_injector=injector,
        supervisor=SupervisorConfig(interval_s=0.05, hang_timeout_s=5.0),
    )
    service = api.serve({"hall": api.load(snapshot_path)}, config=config, start=False)
    exporter = JsonlExporter(metrics_out) if metrics_out else None
    print(
        f"registered models: {service.registry.names()}  "
        f"(shards per model: {config.n_shards}, policy: {config.routing_policy})"
    )

    with service:
        if inject_faults:
            print(f"\n=== 3. {n_streams} camera streams under an injected "
                  f"shard death ===")
            _drive_through_fault(
                service, dataset, n_streams, frames_per_stream, seed0=100
            )
            injector.disarm()  # chaos over; the swap phase runs clean
        else:
            print(f"\n=== 3. {n_streams} concurrent camera streams ===")
            _drive(service, dataset, n_streams, frames_per_stream, seed0=100)

        if exporter is not None:
            exporter.export(service.obs.registry, events=service.obs.events)

        print("\n=== 4. Hot-swap to a longer-trained map (zero-drop reflash) ===")
        improved = api.train(
            dataset.train_signatures, dataset.train_labels,
            n_neurons=40, epochs=30, seed=2010,
        )
        api.swap(service, "hall", api.snapshot(improved))
        print(f"swapped in epochs=30 map "
              f"(accuracy {improved.score(dataset.test_signatures, dataset.test_labels):.2%}); "
              f"driving the streams again")
        _drive(service, dataset, n_streams, frames_per_stream, seed0=500)

        print("\n=== 5. Telemetry ===")
        snapshot_metrics = service.metrics_snapshot()
        print(f"requests total:      {snapshot_metrics.requests_total}")
        print(f"batches dispatched:  {snapshot_metrics.batches_total} "
              f"(mean fill {snapshot_metrics.mean_batch_fill:.2f}, "
              f"mean size {snapshot_metrics.mean_batch_size:.1f})")
        print(f"cache hit rate:      {snapshot_metrics.cache_hit_rate:.2%}")
        print(f"in-flight dedup:     {snapshot_metrics.dedup_hits} fan-outs")
        print(f"model hot-swaps:     {snapshot_metrics.model_swaps}")
        print(f"latency p50/p95/p99: {snapshot_metrics.latency_p50_ms:.2f} / "
              f"{snapshot_metrics.latency_p95_ms:.2f} / "
              f"{snapshot_metrics.latency_p99_ms:.2f} ms")
        print(f"backpressure:        {snapshot_metrics.backpressure_rejections} rejections")
        if inject_faults:
            print(f"shard restarts:      {snapshot_metrics.shard_restarts} "
                  f"(serve_shard_restarts_total in --metrics-out)")
        if exporter is not None:
            exporter.export(service.obs.registry, events=service.obs.events)
            print(f"metric snapshots appended to {metrics_out}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--streams", type=int, default=6)
    parser.add_argument("--frames", type=int, default=200)
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH.jsonl",
        help="append JSONL metric+event snapshots here (repro.obs exporter)",
    )
    parser.add_argument(
        "--inject-faults",
        action="store_true",
        help="kill one worker shard mid-wave (deterministic FaultInjector) "
        "and show the supervisor restarting it",
    )
    arguments = parser.parse_args()
    main(
        n_streams=arguments.streams,
        frames_per_stream=arguments.frames,
        metrics_out=arguments.metrics_out,
        inject_faults=arguments.inject_faults,
    )
