"""Streaming service demo: N simulated cameras against one shared registry.

The paper deploys one bSOM behind one camera; this demo shows the serving
subsystem (:mod:`repro.serve`) scaling that deployment sideways:

1. train a bSOM identifier off-line and snapshot it with ``save_model``
   (exactly the paper's train-on-PC, ship-the-weights flow),
2. stand up a :class:`StreamingInferenceService` -- micro-batching
   scheduler, sharded model registry, signature LRU cache, telemetry --
   and load the snapshot into the registry by name,
3. drive several concurrent simulated camera streams through it, and
4. print the telemetry: throughput, latency percentiles, batch fill,
   cache hit-rate and per-shard queue depths.

Run with::

    python examples/streaming_service.py [--streams 6] [--frames 200]
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

from repro.core import BinarySom, SomClassifier, save_model
from repro.datasets import make_surveillance_dataset
from repro.serve import (
    ServiceConfig,
    SimulatedCameraStream,
    StreamingInferenceService,
    drive_streams,
)


def main(n_streams: int = 6, frames_per_stream: int = 200) -> None:
    print("=== 1. Off-line training and snapshot ===")
    dataset = make_surveillance_dataset(scale=0.1, seed=2010)
    classifier = SomClassifier(BinarySom(40, dataset.n_bits, seed=0))
    classifier.fit(dataset.train_signatures, dataset.train_labels, epochs=15, seed=1)
    accuracy = classifier.score(dataset.test_signatures, dataset.test_labels)
    print(f"trained bSOM accuracy on held-out signatures: {accuracy:.2%}")

    snapshot = Path(tempfile.mkdtemp()) / "hall-bsom.npz"
    save_model(classifier, snapshot)
    print(f"snapshot written to {snapshot}")

    print("\n=== 2. Service: registry + shards + micro-batching + cache ===")
    config = ServiceConfig(
        batch_size=32,
        max_delay_ms=5.0,
        cache_capacity=4096,
        n_shards=2,
        routing_policy="least_loaded",
    )
    service = StreamingInferenceService(config=config)
    service.load_model("hall", snapshot)
    print(
        f"registered models: {service.registry.names()}  "
        f"(shards per model: {config.n_shards}, policy: {config.routing_policy})"
    )

    print(f"\n=== 3. {n_streams} concurrent camera streams ===")
    streams = [
        SimulatedCameraStream(
            f"cam-{index}",
            dataset.test_signatures,
            dataset.test_labels,
            n_frames=frames_per_stream,
            repeat_probability=0.4,
            seed=100 + index,
        )
        for index in range(n_streams)
    ]
    with service:
        start = time.perf_counter()
        reports = drive_streams(service, streams, model="hall")
        elapsed = time.perf_counter() - start

    answered = sum(len(report.responses) for report in reports)
    print(f"served {answered} classifications in {elapsed:.2f} s "
          f"({answered / elapsed:,.0f} signatures/s)")
    for report in reports:
        print(
            f"  {report.stream_id}: {len(report.responses)} responses, "
            f"accuracy {report.accuracy:.2%}, cache hits {report.cache_hits}, "
            f"backpressure retries {report.backpressure_retries}"
        )

    print("\n=== 4. Telemetry ===")
    snapshot_metrics = service.metrics_snapshot()
    print(f"requests total:      {snapshot_metrics.requests_total}")
    print(f"batches dispatched:  {snapshot_metrics.batches_total} "
          f"(mean fill {snapshot_metrics.mean_batch_fill:.2f}, "
          f"mean size {snapshot_metrics.mean_batch_size:.1f})")
    print(f"cache hit rate:      {snapshot_metrics.cache_hit_rate:.2%}")
    print(f"latency p50/p95/p99: {snapshot_metrics.latency_p50_ms:.2f} / "
          f"{snapshot_metrics.latency_p95_ms:.2f} / "
          f"{snapshot_metrics.latency_p99_ms:.2f} ms")
    print(f"backpressure:        {snapshot_metrics.backpressure_rejections} rejections")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--streams", type=int, default=6)
    parser.add_argument("--frames", type=int, default=200)
    arguments = parser.parse_args()
    main(n_streams=arguments.streams, frames_per_stream=arguments.frames)
