"""Streaming service demo: N simulated cameras, one registry, one hot-swap.

The paper deploys one bSOM behind one camera; this demo shows the serving
subsystem (:mod:`repro.serve`) scaling that deployment sideways through the
:mod:`repro.api` lifecycle facade:

1. train a bSOM identifier off-line and snapshot it with ``api.save``
   (exactly the paper's train-on-PC, ship-the-weights flow),
2. stand up the service with ``api.serve`` -- micro-batching scheduler,
   sharded model registry, signature LRU cache, in-flight dedup,
   telemetry -- straight from the loaded snapshot,
3. drive several concurrent simulated camera streams through it,
4. hot-swap to a longer-trained map with ``api.swap`` (the software
   "reflash": zero dropped requests) and drive the streams again, and
5. print the telemetry: throughput, latency percentiles, batch fill,
   cache/dedup hit-rates and the swap counter -- and, with
   ``--metrics-out``, append the full metric registry plus lifecycle
   events (the hot-swap, cache invalidation) as JSONL snapshots.

With ``--canary`` step 4 becomes a guarded rollout instead of a blind
swap: a rebuilt candidate shadows live traffic (responses untouched),
takes a seeded 20% canary split once it clears the agreement policy, and
is promoted through the zero-drop swap; a deliberately regressed
candidate is then shadow-evaluated and auto-demoted, and a rollback
restores the pre-promotion map from the ring.  The whole cycle lands in
``--metrics-out`` as the ``serve_shadow_*`` / ``serve_rollout_*`` series
plus ``rollout_*`` events.

With ``--inject-faults`` the first drive phase runs under a deterministic
:class:`~repro.serve.FaultInjector` that kills one worker shard mid-wave:
the frames in the abandoned micro-batch fail fast with
``ShardFailedError``, the shard supervisor detects the dead thread and
restarts it, and the remaining frames resolve on the replacement worker.
The restart is visible in the telemetry (``shard restarts`` line, the
``shard_restart`` event) and in ``--metrics-out`` as the
``serve_shard_restarts_total`` counter.

With ``--load <spec>`` steps 3-4 are replaced by the open-loop load
harness (:mod:`repro.loadgen`): the named built-in workload -- ``demo``
is a warmup then a saturating burst train with one mid-load hot-swap --
is replayed against the service on a small submit pool, per-phase metric
snapshots are windowed into deltas, and the loadgen report (throughput,
windowed p50/p99/p999, batch fill, shed rate, churn) is printed.

Run with::

    python examples/streaming_service.py [--streams 6] [--frames 200] \
        [--metrics-out metrics.jsonl] [--inject-faults] [--load demo]
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

from repro import api
from repro.datasets import make_surveillance_dataset
from repro.errors import ServiceError, ServiceOverloadedError
from repro.obs import JsonlExporter
from repro.serve import (
    SHARD_DEATH,
    FaultInjector,
    FaultSpec,
    RolloutConfig,
    RolloutPolicy,
    ServiceConfig,
    SimulatedCameraStream,
    SupervisorConfig,
    drive_streams,
)


def _drive(service, dataset, n_streams, frames_per_stream, seed0):
    streams = [
        SimulatedCameraStream(
            f"cam-{index}",
            dataset.test_signatures,
            dataset.test_labels,
            n_frames=frames_per_stream,
            repeat_probability=0.4,
            seed=seed0 + index,
        )
        for index in range(n_streams)
    ]
    start = time.perf_counter()
    reports = drive_streams(service, streams, model="hall")
    elapsed = time.perf_counter() - start
    answered = sum(len(report.responses) for report in reports)
    print(f"served {answered} classifications in {elapsed:.2f} s "
          f"({answered / elapsed:,.0f} signatures/s)")
    for report in reports:
        print(
            f"  {report.stream_id}: {len(report.responses)} responses, "
            f"accuracy {report.accuracy:.2%}, cache hits {report.cache_hits}, "
            f"backpressure retries {report.backpressure_retries}"
        )
    return reports


def _drive_through_fault(service, dataset, n_streams, frames_per_stream, seed0):
    """Drive the streams while the injector kills a worker shard.

    ``drive_streams`` surfaces non-overload failures to the caller, so this
    phase submits frames directly and counts per-future outcomes instead:
    the frames in the micro-batch the dying worker abandoned fail with
    ``ShardFailedError``; everything queued behind them is re-dispatched to
    the supervisor's replacement worker and resolves normally.
    """
    streams = [
        SimulatedCameraStream(
            f"cam-{index}",
            dataset.test_signatures,
            dataset.test_labels,
            n_frames=frames_per_stream,
            repeat_probability=0.4,
            seed=seed0 + index,
        )
        for index in range(n_streams)
    ]
    start = time.perf_counter()
    futures = []
    for stream in streams:
        for signature, _truth in stream.frames():
            while True:
                try:
                    futures.append(
                        service.submit(
                            signature, model="hall", stream_id=stream.stream_id
                        )
                    )
                    break
                except ServiceOverloadedError:
                    time.sleep(0.002)
    answered = failed = 0
    for future in futures:
        try:
            future.result(30.0)
            answered += 1
        except ServiceError:
            failed += 1
    elapsed = time.perf_counter() - start
    # The supervisor fails the abandoned futures before it finishes
    # standing up the replacement worker, so give it a beat to record.
    poll_deadline = time.monotonic() + 2.0
    restart_events = list(service.obs.events.events(kind="shard_restart"))
    while not restart_events and time.monotonic() < poll_deadline:
        time.sleep(0.01)
        restart_events = list(service.obs.events.events(kind="shard_restart"))
    print(f"served {answered} classifications in {elapsed:.2f} s; "
          f"{failed} frame(s) failed fast with the abandoned micro-batch "
          f"(coalesced duplicates included)")
    print(f"supervisor restarted {len(restart_events)} worker shard(s); "
          f"every other frame resolved on the replacement")
    for event in restart_events:
        print(f"  shard_restart event: {event.fields}")


def _scrambled(snapshot):
    """Same map, label table rotated: a regressed candidate for the demo."""
    import dataclasses

    import numpy as np

    from repro.core.snapshot import SnapshotLabelling

    labelling = snapshot.labelling
    n_labels = max(int(labelling.labels.max()) + 1, 1)
    rotated = np.where(
        labelling.node_labels >= 0,
        (labelling.node_labels + 1) % n_labels,
        labelling.node_labels,
    )
    return dataclasses.replace(
        snapshot,
        labelling=SnapshotLabelling(
            node_labels=rotated,
            win_frequencies=labelling.win_frequencies,
            labels=labelling.labels,
        ),
    )


def _drive_until_verdict(service, manager, dataset, n_streams, frames, seed0):
    """Drive waves of frames until the active rollout reaches a verdict."""
    for attempt in range(5):
        _drive(service, dataset, n_streams, frames, seed0=seed0 + attempt * 1000)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if manager.status("hall") is None:
                return True
            time.sleep(0.01)
    return False


def _canary_cycle(service, dataset, n_streams, frames_per_stream):
    """Shadow -> canary -> promote -> forced regression -> rollback."""
    print("\n=== 4. Guarded rollout: shadow -> canary -> promote ===")
    manager = service.enable_rollouts(
        RolloutConfig(
            policy=RolloutPolicy(
                min_samples=100, promote_agreement=0.95, demote_agreement=0.85
            ),
            canary_fraction=0.2,
            split_seed=2010,
        )
    )
    # The candidate is a rebuild of the same training recipe -- seeded
    # training is deterministic, so it should agree with the active map
    # and clear the policy on live traffic.
    rebuilt = api.train(
        dataset.train_signatures, dataset.train_labels,
        n_neurons=40, epochs=15, seed=2010,
    )
    manager.begin("hall", api.snapshot(rebuilt, metadata={"build": "rebuild-v2"}))
    print("candidate hall@v1 shadowing live traffic "
          "(responses still come from the active map)...")
    if not _drive_until_verdict(
        service, manager, dataset, n_streams, frames_per_stream, seed0=500
    ):
        print("rollout still undecided; promoting by hand for the demo")
        manager.promote("hall")
    for event in service.obs.events.events(kind="rollout_canary"):
        print(f"  rollout_canary event: {event.fields}")
    for event in service.obs.events.events(kind="rollout_promoted"):
        print(f"  rollout_promoted event: {event.fields}")
    print(f"rollback ring now holds {len(manager.ring('hall'))} snapshot(s)")

    print("\n=== 5. Forced regression: scrambled candidate is auto-demoted ===")
    active = api.snapshot(service.registry.classifier("hall"))
    manager.begin("hall", _scrambled(active))
    print("regressed candidate hall@v2 shadowing live traffic...")
    if not _drive_until_verdict(
        service, manager, dataset, n_streams, frames_per_stream, seed0=9000
    ):
        raise AssertionError("regressed candidate was never demoted")
    for event in service.obs.events.events(kind="rollout_demoted"):
        print(f"  rollout_demoted event: {event.fields}")

    print("\n=== 6. Rollback: restore the pre-promotion map from the ring ===")
    if manager.rollback("hall"):
        for event in service.obs.events.events(kind="rollout_rolled_back"):
            print(f"  rollout_rolled_back event: {event.fields}")
        print("previous version serving again (zero-drop swap); "
              "driving one confirmation wave")
        _drive(service, dataset, n_streams, frames_per_stream, seed0=7000)
    return manager


def _load_harness(service, dataset, spec_name, exporter):
    """Replay a built-in loadgen spec against the live service."""
    from repro.loadgen import aggregate_run, built_in_specs, render_report, run_workload

    spec = built_in_specs()[spec_name]
    print(f"\n=== 3. Load harness: spec {spec.name!r} "
          f"({len(spec.phases)} phases, {spec.n_streams} simulated streams, "
          f"seed {spec.seed}) ===")
    # The mid-load hot-swap target: the same recipe trained longer.
    improved = api.train(
        dataset.train_signatures, dataset.train_labels,
        n_neurons=40, epochs=30, seed=2010,
    )
    run = run_workload(
        service,
        spec,
        dataset.test_signatures,
        model="hall",
        swap_source=lambda: api.snapshot(improved),
        exporter=exporter,
    )
    print(render_report(aggregate_run(run)))


def main(
    n_streams: int = 6,
    frames_per_stream: int = 200,
    metrics_out: str | None = None,
    inject_faults: bool = False,
    canary: bool = False,
    load: str | None = None,
) -> None:
    print("=== 1. Off-line training and snapshot ===")
    dataset = make_surveillance_dataset(scale=0.1, seed=2010)
    classifier = api.train(
        dataset.train_signatures, dataset.train_labels,
        n_neurons=40, epochs=15, seed=2010,
    )
    accuracy = classifier.score(dataset.test_signatures, dataset.test_labels)
    print(f"trained bSOM accuracy on held-out signatures: {accuracy:.2%}")

    snapshot_path = Path(tempfile.mkdtemp()) / "hall-bsom.npz"
    api.save(classifier, snapshot_path)
    print(f"snapshot written to {snapshot_path}")

    print("\n=== 2. Service: registry + shards + micro-batching + cache ===")
    injector = None
    if inject_faults:
        # Deterministic chaos: after one healthy micro-batch, the next
        # worker to take a batch dies with it in hand -- exactly once.
        injector = FaultInjector(
            seed=2010,
            specs=[FaultSpec(SHARD_DEATH, start_after=1, max_fires=1)],
        )
    # The rollout demo disables the signature cache: shadow evaluation
    # mirrors micro-batches, and a hot cache would answer the repeated
    # frames before they ever reach the kernels the candidate must match.
    config = ServiceConfig(
        batch_size=32,
        max_delay_ms=5.0,
        cache_capacity=0 if canary else 4096,
        n_shards=2,
        routing_policy="least_loaded",
        fault_injector=injector,
        supervisor=SupervisorConfig(interval_s=0.05, hang_timeout_s=5.0),
    )
    service = api.serve({"hall": api.load(snapshot_path)}, config=config, start=False)
    exporter = JsonlExporter(metrics_out) if metrics_out else None
    print(
        f"registered models: {service.registry.names()}  "
        f"(shards per model: {config.n_shards}, policy: {config.routing_policy})"
    )

    with service:
        if load:
            _load_harness(service, dataset, load, exporter)
        elif inject_faults:
            print(f"\n=== 3. {n_streams} camera streams under an injected "
                  f"shard death ===")
            _drive_through_fault(
                service, dataset, n_streams, frames_per_stream, seed0=100
            )
            injector.disarm()  # chaos over; the swap phase runs clean
        else:
            print(f"\n=== 3. {n_streams} concurrent camera streams ===")
            _drive(service, dataset, n_streams, frames_per_stream, seed0=100)

        if exporter is not None and not load:
            # (the load harness exports its own per-phase snapshots)
            exporter.export(service.obs.registry, events=service.obs.events)

        if load:
            pass  # the harness already drove its hot-swap mid-load
        elif canary:
            _canary_cycle(service, dataset, n_streams, frames_per_stream)
        else:
            print("\n=== 4. Hot-swap to a longer-trained map (zero-drop reflash) ===")
            improved = api.train(
                dataset.train_signatures, dataset.train_labels,
                n_neurons=40, epochs=30, seed=2010,
            )
            api.swap(service, "hall", api.snapshot(improved))
            print(f"swapped in epochs=30 map "
                  f"(accuracy {improved.score(dataset.test_signatures, dataset.test_labels):.2%}); "
                  f"driving the streams again")
            _drive(service, dataset, n_streams, frames_per_stream, seed0=500)

        print("\n=== Telemetry ===")
        snapshot_metrics = service.metrics_snapshot()
        print(f"requests total:      {snapshot_metrics.requests_total}")
        print(f"batches dispatched:  {snapshot_metrics.batches_total} "
              f"(mean fill {snapshot_metrics.mean_batch_fill:.2f}, "
              f"mean size {snapshot_metrics.mean_batch_size:.1f})")
        print(f"cache hit rate:      {snapshot_metrics.cache_hit_rate:.2%}")
        print(f"in-flight dedup:     {snapshot_metrics.dedup_hits} fan-outs")
        print(f"model hot-swaps:     {snapshot_metrics.model_swaps}")
        print(f"latency p50/p95/p99: {snapshot_metrics.latency_p50_ms:.2f} / "
              f"{snapshot_metrics.latency_p95_ms:.2f} / "
              f"{snapshot_metrics.latency_p99_ms:.2f} ms")
        print(f"backpressure:        {snapshot_metrics.backpressure_rejections} rejections")
        if inject_faults:
            print(f"shard restarts:      {snapshot_metrics.shard_restarts} "
                  f"(serve_shard_restarts_total in --metrics-out)")
        if canary:
            registry = service.obs.registry

            def _count(name, labels=None):
                metric = registry.get(name, labels)
                return int(metric.value) if metric is not None else 0

            print(f"shadow mirrored:     "
                  f"{_count('serve_shadow_requests_total', {'model': 'hall'})} requests "
                  f"({_count('serve_shadow_disagreements_total', {'model': 'hall'})} "
                  f"disagreements)")
            print(f"rollouts:            "
                  f"{_count('serve_rollout_promotions_total')} promoted, "
                  f"{_count('serve_rollout_demotions_total')} demoted, "
                  f"{_count('serve_rollout_rollbacks_total')} rolled back "
                  f"(serve_rollout_* in --metrics-out)")
        if exporter is not None:
            exporter.export(service.obs.registry, events=service.obs.events)
            print(f"metric snapshots appended to {metrics_out}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--streams", type=int, default=6)
    parser.add_argument("--frames", type=int, default=200)
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH.jsonl",
        help="append JSONL metric+event snapshots here (repro.obs exporter)",
    )
    parser.add_argument(
        "--inject-faults",
        action="store_true",
        help="kill one worker shard mid-wave (deterministic FaultInjector) "
        "and show the supervisor restarting it",
    )
    parser.add_argument(
        "--canary",
        action="store_true",
        help="replace the plain hot-swap with a guarded rollout cycle: "
        "shadow -> canary -> promote, a forced regression auto-demoted, "
        "then a rollback from the ring",
    )
    parser.add_argument(
        "--load",
        default=None,
        choices=("demo", "smoke"),
        metavar="SPEC",
        help="replace the stream drive with the open-loop load harness "
        "running this built-in WorkloadSpec (demo: warmup + saturating "
        "burst with one mid-load hot-swap) and print the loadgen report",
    )
    arguments = parser.parse_args()
    main(
        n_streams=arguments.streams,
        frames_per_stream=arguments.frames,
        metrics_out=arguments.metrics_out,
        inject_faults=arguments.inject_faults,
        canary=arguments.canary,
        load=arguments.load,
    )
