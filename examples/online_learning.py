"""On-line learning and automatic labelling (the paper's future-work section).

The paper closes by sketching how the system would discover objects it was
never trained on: the bSOM's novelty detection flags signatures that match
the map poorly, positional tracking accumulates those signatures per track,
and once enough evidence exists the map is updated on-line and the new
object receives its own label.

This example trains on eight of the nine people, streams the ninth person's
signatures through the :class:`~repro.pipeline.online.OnlineLearner` and
shows the new identity being created and subsequently recognised.

Run with::

    python examples/online_learning.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BinarySom, SomClassifier, UNKNOWN_LABEL
from repro.datasets import make_surveillance_dataset
from repro.pipeline import OnlineLearner, OnlineLearnerConfig


def main() -> None:
    dataset = make_surveillance_dataset(scale=0.15, seed=2010)
    held_out = 8
    known = dataset.train_labels != held_out
    X_known, y_known = dataset.train_signatures[known], dataset.train_labels[known]
    X_new = dataset.train_signatures[dataset.train_labels == held_out]
    print(f"training on {X_known.shape[0]} signatures of 8 known people; "
          f"person {held_out} ({X_new.shape[0]} signatures) is unseen")

    classifier = SomClassifier(
        BinarySom(40, dataset.n_bits, seed=0),
        rejection_percentile=98.0,
        rejection_margin=1.05,
    )
    classifier.fit(X_known, y_known, epochs=15, seed=1)
    known_mask = dataset.test_labels != held_out
    print(f"accuracy on known people before on-line learning: "
          f"{classifier.score(dataset.test_signatures[known_mask], dataset.test_labels[known_mask]):.2%}")

    learner = OnlineLearner(
        classifier, X_known, y_known,
        OnlineLearnerConfig(min_signatures=15, online_epochs=3),
    )

    print("\nstreaming the unseen person's signatures (track 42)...")
    decisions = []
    for i, signature in enumerate(X_new):
        decision = learner.observe(track_id=42, signature=signature)
        decisions.append(decision)
        if learner.updates and learner.updates[-1].signatures_used and decision != UNKNOWN_LABEL and i < 60:
            pass
    new_labels = sorted({d for d in decisions if d not in set(y_known.tolist()) and d != UNKNOWN_LABEL})
    print(f"decisions while accumulating evidence: "
          f"{decisions[:20]} ...")
    if learner.updates:
        update = learner.updates[0]
        print(f"\non-line update fired: new label {update.new_label} created from "
              f"{update.signatures_used} signatures, {update.neurons_relabelled} neurons relabelled")
    else:
        print("\nno on-line update fired (the unseen person matched an existing cluster)")

    # How are the unseen person's *test* signatures classified now?
    X_new_test = dataset.test_signatures[dataset.test_labels == held_out]
    if learner.updates and X_new_test.shape[0]:
        new_label = learner.updates[0].new_label
        predictions = np.array([learner.observe(track_id=43, signature=x) for x in X_new_test])
        recognised = float((predictions == new_label).mean())
        print(f"fraction of the new person's test signatures now assigned the new label: "
              f"{recognised:.2%}")
    known_after = classifier.score(
        dataset.test_signatures[known_mask], dataset.test_labels[known_mask]
    )
    print(f"accuracy on the original eight people after on-line learning: {known_after:.2%}")


if __name__ == "__main__":
    main()
