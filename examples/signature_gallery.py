"""Figure 3: binary signatures of individual objects over time.

Renders, as ASCII, the per-frame 768-bit signatures of three of the nine
synthetic people (each row is one frame, downsampled to fit a terminal) and
prints the consistency statistics behind the figure: signatures of the same
person are far closer in Hamming distance than signatures of different
people, which is exactly what makes the bSOM identification work.

Run with::

    python examples/signature_gallery.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import make_surveillance_dataset
from repro.eval import run_figure3


def render_signature_rows(matrix: np.ndarray, columns: int = 96, rows: int = 12) -> str:
    """Downsample a (time, bits) signature matrix to an ASCII block."""
    if matrix.shape[0] == 0:
        return "(no signatures)"
    row_idx = np.linspace(0, matrix.shape[0] - 1, min(rows, matrix.shape[0])).astype(int)
    col_idx = np.linspace(0, matrix.shape[1] - 1, columns).astype(int)
    lines = []
    for r in row_idx:
        line = "".join("#" if matrix[r, c] else "." for c in col_idx)
        lines.append(line)
    return "\n".join(lines)


def main() -> None:
    dataset = make_surveillance_dataset(scale=0.15, seed=2010)
    result = run_figure3(dataset, identities=[0, 1, 2])

    for identity in result.identities:
        matrix = result.signature_matrices[identity]
        print(f"=== person {identity}: {matrix.shape[0]} signatures over time "
              f"(rows = time, columns = histogram bins, downsampled) ===")
        print(render_signature_rows(matrix))
        bits_set = matrix.sum(axis=1)
        print(f"bits set per signature: mean {bits_set.mean():.0f}, "
              f"min {bits_set.min()}, max {bits_set.max()}\n")

    print("=== Consistency statistics (the point of figure 3) ===")
    print(f"mean Hamming distance within an identity : {result.within_identity_distance:.1f} bits")
    print(f"mean Hamming distance between identities : {result.between_identity_distance:.1f} bits")
    ratio = result.between_identity_distance / max(result.within_identity_distance, 1e-9)
    print(f"separation ratio                          : {ratio:.2f}x")


if __name__ == "__main__":
    main()
