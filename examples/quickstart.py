"""Quickstart: train a bSOM identifier on binary signatures and use it.

This walks the paper's core loop end to end in a couple of minutes:

1. build a (reduced-scale) synthetic surveillance dataset -- nine people,
   768-bit colour-histogram signatures with realistic segmentation noise,
2. train the tri-state binary SOM (bSOM) off-line and label its neurons by
   win frequency,
3. identify held-out signatures and compare against the cSOM baseline,
4. demonstrate the figure-2 binarisation on a toy histogram.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BinarySom, KohonenSom, SomClassifier
from repro.datasets import make_surveillance_dataset
from repro.eval import classification_report, format_table
from repro.signatures import binarize_histogram, mean_threshold


def main() -> None:
    print("=== 1. Dataset (reduced paper-scale synthetic surveillance data) ===")
    dataset = make_surveillance_dataset(scale=0.15, seed=2010)
    summary = dataset.summary()
    print(
        f"identities={summary['identities']}  train={summary['train_signatures']}  "
        f"test={summary['test_signatures']}  bits={summary['bits']}"
    )

    print("\n=== 2. Train the bSOM (40 neurons, 768-bit tri-state weights) ===")
    bsom = SomClassifier(BinarySom(40, dataset.n_bits, seed=0))
    bsom.fit(dataset.train_signatures, dataset.train_labels, epochs=20, seed=1)
    labelling = bsom.labelling
    print(
        f"used neurons: {labelling.used_neuron_count}/40, "
        f"labelling purity: {labelling.purity():.3f}, "
        f"don't-care fraction: {bsom.som.dont_care_fraction():.3f}"
    )

    print("\n=== 3. Identify held-out signatures ===")
    predictions = bsom.predict(dataset.test_signatures)
    report = classification_report(dataset.test_labels, predictions)
    print(f"bSOM recognition accuracy: {report.accuracy:.2%} (error {report.error_rate:.2%})")

    csom = SomClassifier(KohonenSom(40, dataset.n_bits, seed=0))
    csom.fit(dataset.train_signatures, dataset.train_labels, epochs=20, seed=1)
    print(f"cSOM recognition accuracy: {csom.score(dataset.test_signatures, dataset.test_labels):.2%}")

    rows = [
        [label, f"{accuracy:.2%}"] for label, accuracy in sorted(report.per_class.items())
    ]
    print("\nPer-person accuracy (bSOM):")
    print(format_table(["person", "accuracy"], rows))

    print("\n=== 4. Figure 2: mean-threshold binarisation of a 16-bin histogram ===")
    histogram = np.array([5, 1, 6, 7, 4, 1, 6, 0, 5, 1, 4, 3, 0, 0, 0, 3], dtype=float)
    theta = mean_threshold(histogram)
    bits = binarize_histogram(histogram)
    print(f"histogram: {histogram.astype(int).tolist()}")
    print(f"theta (mean): {theta:.3f}")
    print(f"binary signature: {''.join(map(str, bits.tolist()))}")


if __name__ == "__main__":
    main()
