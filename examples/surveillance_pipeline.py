"""End-to-end surveillance pipeline (figure 1 / figure 6 of the paper).

This example runs the *full* chain, not just the classifier: synthetic
video frames are segmented by background differencing, cleaned with
morphology, grouped into blobs by connected-components labelling, tracked
frame to frame, converted into 768-bit colour signatures and identified by
a trained bSOM, with per-track majority voting.

Run with::

    python examples/surveillance_pipeline.py [--metrics-out metrics.jsonl]

``--metrics-out`` appends the pipeline's per-stage timing registry
(``pipeline_*`` metrics, seconds) as a JSONL snapshot via the
:mod:`repro.obs` exporter.
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro.core import BinarySom, SomClassifier
from repro.obs import JsonlExporter
from repro.pipeline import RecognitionSystem, RecognitionSystemConfig
from repro.signatures import extract_signature
from repro.vision import ActorSpec, SceneConfig, SyntheticSurveillanceScene


def build_scene(seed: int) -> SyntheticSurveillanceScene:
    """A three-person entrance scene with no furniture (to keep the demo short)."""
    actors = [
        ActorSpec(0, torso_colour=(210, 40, 40), legs_colour=(40, 40, 60),
                  height=42, width=18, speed=1.6, entry_row=26, colour_jitter=3.0),
        ActorSpec(1, torso_colour=(40, 70, 210), legs_colour=(90, 90, 100),
                  height=46, width=20, speed=-1.9, entry_row=32, colour_jitter=3.0),
        ActorSpec(2, torso_colour=(60, 180, 70), legs_colour=(40, 40, 45),
                  height=44, width=19, speed=2.2, entry_row=22, colour_jitter=3.0),
    ]
    config = SceneConfig(
        lighting_amplitude=4.0, camera_jitter_pixels=0, pixel_noise_std=2.0,
        furniture_occluders=0, initial_pause_max_frames=0,
    )
    return SyntheticSurveillanceScene(actors=actors, config=config, seed=seed)


def collect_training_signatures(scene, n_frames):
    """Training signatures from ground-truth silhouettes (the paper's manual labelling)."""
    signatures, labels = [], []
    for frame in scene.frames(n_frames):
        for identity, mask in frame.truth_masks.items():
            if mask.sum() < 120:
                continue
            signatures.append(extract_signature(frame.image, mask).bits)
            labels.append(identity)
    import numpy as np

    return np.array(signatures, dtype=np.uint8), np.array(labels, dtype=np.int64)


def main(metrics_out: str | None = None) -> None:
    print("=== Off-line training (operator-labelled silhouettes) ===")
    train_scene = build_scene(seed=11)
    X, y = collect_training_signatures(train_scene, 90)
    print(f"collected {X.shape[0]} labelled training signatures for {len(set(y.tolist()))} people")

    classifier = SomClassifier(BinarySom(20, 768, seed=0))
    classifier.fit(X, y, epochs=15, seed=1)
    print(f"node labelling purity: {classifier.labelling.purity():.3f}")

    print("\n=== Live pipeline: segmentation -> tracking -> signatures -> bSOM ===")
    system = RecognitionSystem(classifier, RecognitionSystemConfig(min_blob_area=120))
    live_scene = build_scene(seed=23)
    system.initialise_background(live_scene.background)

    frames = list(live_scene.frames(60))
    observations = system.process_sequence(frames)
    print(f"processed {system.frames_processed} frames, {len(observations)} object observations")

    per_track = Counter(obs.track_id for obs in observations)
    print("\nTrack-level identities (majority vote over per-frame decisions):")
    frame_index = {frame.index: frame for frame in frames}
    for track_id, count in sorted(per_track.items()):
        identity = system.track_identity(track_id)
        # Ground truth: the actor whose silhouette overlaps this track's blobs most.
        overlaps: Counter = Counter()
        for obs in observations:
            if obs.track_id != track_id:
                continue
            frame = frame_index[obs.frame_index]
            for actor, mask in frame.truth_masks.items():
                overlaps[actor] += int((mask & obs.blob.mask).sum())
        truth = overlaps.most_common(1)[0][0] if overlaps else "?"
        print(
            f"  track {track_id:2d}: {count:3d} observations -> identified as person "
            f"{identity} (ground truth {truth})"
        )

    snapshot = system.metrics.snapshot()
    print("\nPer-stage timing (vectorized front-end, mean ms/frame):")
    for name, stats in snapshot.stages.items():
        print(f"  {name:10s} {stats.mean_ms:8.3f} ms  (x{stats.calls} calls)")
    print(
        f"  {'frame':10s} {snapshot.mean_frame_ms:8.3f} ms  "
        f"-> {snapshot.frames_per_second:.1f} frames/sec end to end"
    )
    if metrics_out:
        JsonlExporter(metrics_out).export(system.metrics.registry)
        print(f"metric snapshot appended to {metrics_out}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH.jsonl",
        help="append a JSONL metric snapshot here (repro.obs exporter)",
    )
    main(metrics_out=parser.parse_args().metrics_out)
