"""Reproduce the paper's Tables I and II (and the neuron sweep) at any scale.

By default this runs a medium protocol (scale 0.2 of the paper's signature
counts, 4 repetitions, 8 iteration counts) and prints the tables next to the
paper's published numbers.  ``--paper-scale`` runs the full protocol
(2,248/1,139 signatures, 10 repetitions, all 14 iteration counts) -- expect
it to take a few hours of CPU time.

Run with::

    python examples/paper_tables.py
    python examples/paper_tables.py --paper-scale
"""

from __future__ import annotations

import argparse

from repro.datasets import make_surveillance_dataset
from repro.eval import format_table, run_neuron_sweep, run_table1, run_table2
from repro.eval.experiments import NeuronSweepConfig, PAPER_ITERATIONS, Table1Config

PAPER_TABLE1 = {
    10: (81.84, 84.41), 20: (83.06, 84.56), 30: (84.50, 84.85), 40: (84.05, 84.05),
    50: (83.98, 85.03), 60: (84.70, 85.91), 70: (85.03, 85.74), 80: (85.01, 84.58),
    90: (85.20, 84.40), 100: (85.15, 84.58), 200: (84.68, 86.44), 300: (86.71, 84.23),
    400: (87.33, 86.05), 500: (87.42, 86.89),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true",
                        help="run the full 2,248/1,139-signature, 10-repetition protocol")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--reps", type=int, default=4)
    args = parser.parse_args()

    if args.paper_scale:
        scale, reps, iterations = 1.0, 10, PAPER_ITERATIONS
    else:
        scale, reps, iterations = args.scale, args.reps, (10, 20, 30, 50, 70, 100, 200, 400)

    print(f"building dataset (scale={scale}) ...")
    dataset = make_surveillance_dataset(scale=scale, seed=2010)
    print(dataset.summary())

    print(f"\nrunning Table I ({len(iterations)} iteration counts x {reps} repetitions x 2 SOMs)...")
    table1 = run_table1(dataset, Table1Config(iterations=iterations, repetitions=reps))

    rows = []
    for row in table1.rows:
        paper_csom, paper_bsom = PAPER_TABLE1.get(row.iterations, (None, None))
        rows.append([
            row.iterations,
            f"{row.csom_mean:.2%}", f"{row.bsom_mean:.2%}",
            f"{paper_csom:.2f}%" if paper_csom else "-",
            f"{paper_bsom:.2f}%" if paper_bsom else "-",
        ])
    print("\nTable I -- average recognition accuracy")
    print(format_table(
        ["iterations", "cSOM (ours)", "bSOM (ours)", "cSOM (paper)", "bSOM (paper)"], rows
    ))

    print("\nTable II -- one-tailed Wilcoxon rank-sum tests (5% significance)")
    table2 = run_table2(table1)
    rows2 = [
        [r.iterations, f"{r.csom_mean_rank:.2f}", f"{r.bsom_mean_rank:.2f}",
         f"{r.z:.2f}", f"{r.p_value:.4f}",
         {"<": "cSOM better", ">": "bSOM better", "-": "no significant difference"}[r.symbol]]
        for r in table2
    ]
    print(format_table(
        ["iterations", "cSOM mean rank", "bSOM mean rank", "z", "p", "verdict"], rows2
    ))

    print("\nNeuron sweep (section IV) -- accuracy and used neurons vs map size")
    sweep = run_neuron_sweep(
        dataset,
        NeuronSweepConfig(neuron_counts=tuple(range(10, 101, 10)),
                          repetitions=2, epochs=30, dataset_scale=scale),
    )
    sweep_rows = [
        [r.n_neurons, f"{r.bsom_accuracy:.2%}", f"{r.csom_accuracy:.2%}",
         f"{r.bsom_used_neurons:.1f}", f"{r.csom_used_neurons:.1f}"]
        for r in sweep
    ]
    print(format_table(
        ["neurons", "bSOM accuracy", "cSOM accuracy", "bSOM used", "cSOM used"], sweep_rows
    ))


if __name__ == "__main__":
    main()
