"""The FPGA architecture: cycle-accurate simulation, resources and throughput.

Reproduces the hardware side of the paper (section V): Table III's design
specification, the block cycle counts of figures 4/5, Table IV's resource
utilisation on the Virtex-4 XC4VLX160, and the 25,000-patterns-per-second
throughput claim -- then runs the deployment flow of figure 6 (train
off-line, load weights into BlockRAM, recognise in real time) and checks the
hardware model agrees with the software bSOM signature by signature.

Run with::

    python examples/hardware_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BinarySom, SomClassifier
from repro.datasets import make_surveillance_dataset
from repro.eval import format_table
from repro.hw import FpgaBsomConfig, FpgaBsomDesign, ThroughputModel, estimate_resources
from repro.hw.resources import PAPER_TABLE4


def main() -> None:
    design = FpgaBsomDesign(FpgaBsomConfig(seed=0))

    print("=== Table III: design specification ===")
    for key, value in design.specification().items():
        print(f"  {key:24s} {value}")

    print("\n=== Block cycle counts (figures 4 and 5) ===")
    init_cycles = design.initialise()
    pattern = np.random.default_rng(0).integers(0, 2, 768).astype(np.uint8)
    recognition = design.present(pattern)
    training = design.train_pattern(pattern, 0, 100)
    print(f"  weight initialisation : {init_cycles} cycles")
    print(f"  pattern input         : {recognition.input_cycles} cycles")
    print(f"  Hamming unit (40 par.): {recognition.hamming_cycles} cycles")
    print(f"  WTA comparator tree   : {recognition.wta_cycles} cycles")
    print(f"  neighbourhood update  : {training.update_cycles} cycles")

    print("\n=== Table IV: resource utilisation on XC4VLX160 ===")
    report = estimate_resources()
    rows = []
    for name, row in report.utilisation().items():
        paper = PAPER_TABLE4[name]
        rows.append([
            name, int(row["total"]), int(row["used"]), f"{row['percent']:.0f}%",
            paper["used"], f"{paper['percent']}%",
        ])
    print(format_table(
        ["resource", "total", "used (model)", "util (model)", "used (paper)", "util (paper)"],
        rows,
    ))

    print("\n=== Throughput at 40 MHz (section V-E/F) ===")
    throughput = ThroughputModel().report()
    print(f"  training patterns / second : {throughput.training_patterns_per_second:,.0f} "
          f"(paper: up to 25,000)")
    print(f"  recognitions / second      : {throughput.recognitions_per_second:,.0f}")
    print(f"  train 2,248 signatures in  : {throughput.seconds_to_train[2248] * 1e3:.1f} ms")
    print(f"  margin over 30 fps camera  : {throughput.realtime_margin:,.0f}x")

    print("\n=== Figure 6: deploy a software-trained map onto the FPGA model ===")
    dataset = make_surveillance_dataset(scale=0.1, seed=2010)
    classifier = SomClassifier(BinarySom(40, dataset.n_bits, seed=0))
    classifier.fit(dataset.train_signatures, dataset.train_labels, epochs=15, seed=1)
    design.load_weights(classifier.som)
    node_labels = classifier.labelling.node_labels

    software = classifier.predict(dataset.test_signatures)
    hardware, cycles = [], 0
    for signature in dataset.test_signatures:
        trace = design.present(signature)
        hardware.append(node_labels[trace.winner])
        cycles += trace.total_cycles
    hardware = np.array(hardware)
    agreement = float((hardware == software).mean())
    accuracy = float((hardware == dataset.test_labels).mean())
    print(f"  hardware/software agreement : {agreement:.2%} over {len(hardware)} signatures")
    print(f"  hardware recognition accuracy: {accuracy:.2%}")
    print(f"  simulated FPGA time          : {cycles / 40e6 * 1e3:.2f} ms "
          f"({cycles:,} cycles at 40 MHz)")


if __name__ == "__main__":
    main()
