"""Setuptools shim so `pip install -e .` works without network access.

All project metadata lives in pyproject.toml; this file only exists because
the build environment has no index access for PEP 517 build isolation.
"""
from setuptools import setup

setup()
