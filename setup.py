"""Setuptools shim so `pip install -e .` works without network access.

All project metadata lives in pyproject.toml; this file only exists because
the build environment has no index access for PEP 517 build isolation, so
editable installs run as::

    pip install -e . --no-build-isolation

(With setuptools < 70 the ``wheel`` package must also be importable, since
older setuptools delegates the PEP 660 ``build_editable`` hook to
``bdist_wheel``.)
"""
from setuptools import setup

setup()
