"""Unit tests for the conventional Kohonen SOM baseline."""

import numpy as np
import pytest

from repro.core.csom import KohonenSom, LearningRateSchedule
from repro.core.topology import RingTopology
from repro.errors import ConfigurationError, DataError, DimensionMismatchError


class TestLearningRateSchedule:
    def test_linear_decay_endpoints(self):
        schedule = LearningRateSchedule(initial=0.5, final=0.01)
        assert schedule.rate(0, 100) == pytest.approx(0.5)
        assert schedule.rate(99, 100) == pytest.approx(0.01)

    def test_monotonically_decreasing(self):
        schedule = LearningRateSchedule(initial=0.4, final=0.02)
        rates = [schedule.rate(i, 50) for i in range(50)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_single_iteration_uses_initial(self):
        schedule = LearningRateSchedule(initial=0.3, final=0.01)
        assert schedule.rate(0, 1) == pytest.approx(0.3)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            LearningRateSchedule(initial=0.0)
        with pytest.raises(ConfigurationError):
            LearningRateSchedule(initial=0.5, final=0.6)

    def test_invalid_iteration(self):
        schedule = LearningRateSchedule()
        with pytest.raises(ConfigurationError):
            schedule.rate(5, 5)


class TestKohonenSom:
    def test_initial_weights_in_unit_interval(self):
        som = KohonenSom(8, 32, seed=0)
        assert som.weights.min() >= 0.0
        assert som.weights.max() <= 1.0

    def test_seed_reproducibility(self):
        assert np.array_equal(KohonenSom(4, 16, seed=3).weights, KohonenSom(4, 16, seed=3).weights)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            KohonenSom(0, 16)
        with pytest.raises(ConfigurationError):
            KohonenSom(4, 16, neighbour_decay=0.0)
        with pytest.raises(ConfigurationError):
            KohonenSom(4, 16, topology=RingTopology(5))

    def test_distances_are_squared_euclidean(self, rng):
        som = KohonenSom(4, 8, seed=0)
        x = rng.integers(0, 2, 8)
        expected = ((som.weights - x) ** 2).sum(axis=1)
        assert np.allclose(som.distances(x), expected)

    def test_distance_matrix_matches_distances(self, rng):
        som = KohonenSom(6, 16, seed=1)
        X = rng.integers(0, 2, size=(5, 16))
        matrix = som.distance_matrix(X)
        for i, x in enumerate(X):
            assert np.allclose(matrix[i], som.distances(x))

    def test_input_validation(self):
        som = KohonenSom(4, 8, seed=0)
        with pytest.raises(DimensionMismatchError):
            som.distances(np.zeros(9))
        with pytest.raises(DataError):
            som.distances(np.full(8, 0.5))

    def test_winner_update_moves_towards_input(self, rng):
        som = KohonenSom(4, 8, seed=0)
        x = rng.integers(0, 2, 8)
        winner = som.winner(x)
        before = np.abs(som.weights[winner] - x).sum()
        som.partial_fit(x, 0, 10)
        after = np.abs(som.weights[winner] - x).sum()
        assert after < before

    def test_neurons_outside_radius_unchanged(self):
        som = KohonenSom(10, 8, seed=0)
        x = np.ones(8, dtype=np.int8)
        winner = som.winner(x)
        far = (winner + 7) % 10 if abs((winner + 7) % 10 - winner) > 4 else (winner + 5) % 10
        before = som.weights[far].copy()
        # Use the last iteration so the radius is 1.
        som.partial_fit(x, 99, 100)
        if abs(far - winner) > 1:
            assert np.array_equal(som.weights[far], before)

    def test_set_weights_roundtrip(self):
        som = KohonenSom(4, 8, seed=0)
        weights = som.weights
        other = KohonenSom(4, 8, seed=9)
        other.set_weights(weights)
        assert np.array_equal(other.weights, weights)

    def test_set_weights_shape_check(self):
        with pytest.raises(ConfigurationError):
            KohonenSom(4, 8, seed=0).set_weights(np.zeros((3, 8)))

    def test_training_reduces_quantisation_error(self, cluster_data):
        X, _ = cluster_data
        som = KohonenSom(16, X.shape[1], seed=0)
        before = som.quantisation_error(X)
        som.fit(X, epochs=5, seed=1)
        assert som.quantisation_error(X) < before

    def test_training_is_reproducible(self, cluster_data):
        X, _ = cluster_data
        a = KohonenSom(8, X.shape[1], seed=4).fit(X, epochs=3, seed=9)
        b = KohonenSom(8, X.shape[1], seed=4).fit(X, epochs=3, seed=9)
        assert np.allclose(a.weights, b.weights)

    def test_weights_stay_in_unit_cube_after_training(self, cluster_data):
        X, _ = cluster_data
        som = KohonenSom(8, X.shape[1], seed=0).fit(X, epochs=5, seed=1)
        assert som.weights.min() >= 0.0
        assert som.weights.max() <= 1.0

    def test_neuron_usage_sums_to_samples(self, cluster_data):
        X, _ = cluster_data
        som = KohonenSom(8, X.shape[1], seed=0).fit(X, epochs=2, seed=1)
        assert som.neuron_usage(X).sum() == X.shape[0]
