"""Unit tests for the individual hardware blocks (figure 4)."""

import numpy as np
import pytest

from repro.core.bsom import BsomUpdateRule
from repro.core.distance import batch_masked_hamming
from repro.core.tristate import TriStateWeights, random_tristate
from repro.errors import ConfigurationError, DimensionMismatchError, HardwareModelError
from repro.hw import ClockDomain
from repro.hw.blocks import (
    HammingDistanceUnit,
    NeighbourhoodUpdateBlock,
    PatternInputBlock,
    VgaDisplayBlock,
    WeightInitialisationBlock,
    WinnerTakeAllUnit,
)
from repro.hw.bram import BlockRam


@pytest.fixture()
def planes():
    """Small weight planes (value, care) plus matching BlockRAMs."""
    weights = random_tristate(8, 32, dont_care_probability=0.25, seed=3)
    value, care = weights.to_bitplanes()
    value_ram = BlockRam(8, 32, name="value")
    care_ram = BlockRam(8, 32, name="care")
    for neuron in range(8):
        value_ram.write(neuron, value[neuron])
        care_ram.write(neuron, care[neuron])
    return weights, value, care, value_ram, care_ram


class TestWeightInitialisation:
    def test_cycle_count_is_one_per_bit(self):
        block = WeightInitialisationBlock(40, 768, seed=0)
        assert block.cycles_required == 768

    def test_initialises_all_neurons_with_binary_values(self):
        block = WeightInitialisationBlock(6, 64, seed=1)
        value_ram = BlockRam(6, 64, name="value")
        care_ram = BlockRam(6, 64, name="care")
        clock = ClockDomain()
        cycles = block.run(value_ram, care_ram, clock)
        assert cycles == 64
        assert clock.cycles == 64
        values = value_ram.dump()
        assert set(np.unique(values)).issubset({0, 1})
        assert np.all(care_ram.dump() == 1)
        # Neurons should not all be identical (distinct LFSR seeds).
        assert len({row.tobytes() for row in values}) > 1

    def test_geometry_mismatch(self):
        block = WeightInitialisationBlock(4, 16, seed=0)
        with pytest.raises(ConfigurationError):
            block.run(BlockRam(3, 16), BlockRam(4, 16))

    def test_reproducible_for_seed(self):
        def run(seed):
            block = WeightInitialisationBlock(4, 32, seed=seed)
            value, care = BlockRam(4, 32), BlockRam(4, 32)
            block.run(value, care)
            return value.dump()

        assert np.array_equal(run(9), run(9))
        assert not np.array_equal(run(9), run(10))


class TestPatternInput:
    def test_cycles_and_register(self):
        block = PatternInputBlock(768)
        clock = ClockDomain()
        pattern = np.random.default_rng(0).integers(0, 2, 768).astype(np.uint8)
        captured = block.acquire(pattern, clock)
        assert np.array_equal(captured, pattern)
        assert clock.cycles == 768
        assert block.acquisition_complete
        assert block.acquisitions == 1

    def test_accepts_binary_image(self):
        block = PatternInputBlock(768, image_shape=(24, 32))
        image = np.random.default_rng(1).integers(0, 2, (24, 32)).astype(np.uint8)
        captured = block.acquire(image)
        assert np.array_equal(captured, image.reshape(-1))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PatternInputBlock(768, image_shape=(10, 10))
        block = PatternInputBlock(16, image_shape=(4, 4))
        with pytest.raises(DimensionMismatchError):
            block.acquire(np.zeros(15, dtype=np.uint8))
        with pytest.raises(HardwareModelError):
            block.acquire(np.full(16, 2, dtype=np.uint8))


class TestHammingUnit:
    def test_cycles_are_bit_count(self):
        assert HammingDistanceUnit(40, 768).cycles_required == 768

    def test_counter_width_matches_figure4(self):
        assert HammingDistanceUnit(40, 768).counter_width == 10

    def test_matches_reference_distance(self, planes, rng):
        weights, value, care, _, _ = planes
        unit = HammingDistanceUnit(8, 32)
        x = rng.integers(0, 2, 32).astype(np.uint8)
        distances = unit.compute(x, value, care)
        assert np.array_equal(distances, batch_masked_hamming(weights.values, x))

    def test_bit_serial_matches_vectorised(self, planes, rng):
        _, value, care, _, _ = planes
        x = rng.integers(0, 2, 32).astype(np.uint8)
        serial = HammingDistanceUnit(8, 32, bit_serial=True).compute(x, value, care)
        fast = HammingDistanceUnit(8, 32, bit_serial=False).compute(x, value, care)
        assert np.array_equal(serial, fast)

    def test_clock_charge(self, planes, rng):
        _, value, care, _, _ = planes
        clock = ClockDomain()
        HammingDistanceUnit(8, 32).compute(rng.integers(0, 2, 32), value, care, clock)
        assert clock.cycles == 32

    def test_shape_validation(self, planes):
        _, value, care, _, _ = planes
        unit = HammingDistanceUnit(8, 32)
        with pytest.raises(DimensionMismatchError):
            unit.compute(np.zeros(16, dtype=np.uint8), value, care)
        with pytest.raises(HardwareModelError):
            unit.compute(np.zeros(32, dtype=np.uint8), value[:4], care)


class TestWinnerTakeAll:
    def test_paper_cycle_count_for_40_neurons(self):
        wta = WinnerTakeAllUnit(40)
        assert wta.padded_inputs == 64
        assert wta.tree_depth == 6
        assert wta.cycles_required == 7

    def test_selects_minimum(self, rng):
        wta = WinnerTakeAllUnit(40)
        distances = rng.integers(0, 768, 40)
        winner, minimum = wta.select(distances)
        assert minimum == distances.min()
        assert winner == int(np.argmin(distances))

    def test_tie_breaks_to_lower_index(self):
        wta = WinnerTakeAllUnit(8)
        distances = np.array([5, 3, 3, 9, 3, 7, 8, 6])
        winner, minimum = wta.select(distances)
        assert (winner, minimum) == (1, 3)

    def test_comparator_budget(self):
        wta = WinnerTakeAllUnit(40)
        assert wta.comparators_per_stage() == [32, 16, 8, 4, 2, 1]
        assert wta.total_comparators == 63

    def test_cycle_counts_for_other_sizes(self):
        assert WinnerTakeAllUnit(10).cycles_required == 5
        assert WinnerTakeAllUnit(64).cycles_required == 7
        assert WinnerTakeAllUnit(100).cycles_required == 8
        assert WinnerTakeAllUnit(1).cycles_required == 1

    def test_clock_charge(self, rng):
        clock = ClockDomain()
        WinnerTakeAllUnit(40).select(rng.integers(0, 700, 40), clock)
        assert clock.cycles == 7

    def test_shape_validation(self):
        with pytest.raises(DimensionMismatchError):
            WinnerTakeAllUnit(8).select(np.zeros(9))


class TestNeighbourhoodUpdate:
    def test_update_matches_software_full_rule(self, planes, rng):
        weights, _, _, value_ram, care_ram = planes
        from repro.core.bsom import BinarySom
        from repro.core.topology import StepwiseNeighbourhoodSchedule

        rule = BsomUpdateRule(neighbour_rule="full")
        block = NeighbourhoodUpdateBlock(8, 32, update_rule=rule, seed=0)
        software = BinarySom(
            8, 32, update_rule=rule, schedule=StepwiseNeighbourhoodSchedule(4), seed=0
        )
        software.set_weights(weights)

        x = rng.integers(0, 2, 32).astype(np.int8)
        winner = software.partial_fit(x, 0, 10)
        block.update(winner, x.astype(np.uint8), value_ram, care_ram, 0, 10)
        hardware_weights = TriStateWeights.from_bitplanes(value_ram.dump(), care_ram.dump())
        assert hardware_weights == software.weights

    def test_cycles_per_update(self):
        assert NeighbourhoodUpdateBlock(40, 768).cycles_required == 768

    def test_only_neighbourhood_rows_change(self, planes, rng):
        _, value, care, value_ram, care_ram = planes
        block = NeighbourhoodUpdateBlock(
            8, 32, update_rule=BsomUpdateRule(neighbour_rule="full"), seed=0
        )
        before_value = value_ram.dump()
        x = rng.integers(0, 2, 32).astype(np.uint8)
        members = block.update(0, x, value_ram, care_ram, 99, 100)  # radius 1 at the end
        assert set(members.tolist()) == {0, 1}
        after_value = value_ram.dump()
        assert np.array_equal(before_value[2:], after_value[2:])

    def test_validation(self, planes, rng):
        _, _, _, value_ram, care_ram = planes
        block = NeighbourhoodUpdateBlock(8, 32)
        with pytest.raises(HardwareModelError):
            block.update(99, np.zeros(32, dtype=np.uint8), value_ram, care_ram, 0, 10)
        with pytest.raises(HardwareModelError):
            block.update(0, np.zeros(16, dtype=np.uint8), value_ram, care_ram, 0, 10)


class TestVgaDisplay:
    def test_render_levels(self, planes):
        weights, value, care, _, _ = planes
        display = VgaDisplayBlock(8, tile_shape=(4, 8))
        frame = display.render(value, care)
        assert set(np.unique(frame)).issubset({0, 128, 255})
        assert display.frames_rendered == 1

    def test_grid_geometry(self):
        display = VgaDisplayBlock(40, tile_shape=(24, 32), resolution=(480, 640))
        assert display.tiles_per_row == 20
        assert display.grid_shape == (2, 20)
        assert display.pixel_clocks_per_frame == 480 * 640
        assert display.seconds_per_frame() == pytest.approx(1 / 60)

    def test_shape_validation(self, planes):
        _, value, care, _, _ = planes
        display = VgaDisplayBlock(8, tile_shape=(4, 4))
        with pytest.raises(HardwareModelError):
            display.render(value, care)

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            VgaDisplayBlock(0)
        with pytest.raises(ConfigurationError):
            VgaDisplayBlock(8, refresh_hz=0)
