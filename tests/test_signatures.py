"""Unit tests for the binary signature front end (section III-A)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.signatures import (
    BinarySignature,
    ColourHistogram,
    FixedFractionThreshold,
    MeanThreshold,
    MedianThreshold,
    binarize_histogram,
    extract_signature,
    image_to_signature,
    mean_threshold,
    pack_bits,
    rgb_histogram,
    signature_to_image,
    unpack_bits,
)
from repro.signatures.histogram import BINS_PER_CHANNEL, HISTOGRAM_BINS


def _solid_image(colour, height=20, width=10):
    image = np.zeros((height, width, 3), dtype=np.uint8)
    image[:] = colour
    return image


class TestColourHistogram:
    def test_total_bins_is_768_by_default(self):
        assert ColourHistogram().total_bins == HISTOGRAM_BINS == 768
        assert BINS_PER_CHANNEL == 256

    def test_counts_land_in_expected_bins(self):
        image = _solid_image((10, 128, 255))
        histogram = rgb_histogram(image)
        pixels = image.shape[0] * image.shape[1]
        assert histogram[10] == pixels            # red channel bin 10
        assert histogram[256 + 128] == pixels     # green channel bin 128
        assert histogram[512 + 255] == pixels     # blue channel bin 255
        assert histogram.sum() == 3 * pixels

    def test_mask_restricts_pixels(self):
        image = _solid_image((50, 50, 50))
        mask = np.zeros(image.shape[:2], dtype=bool)
        mask[:5, :5] = True
        histogram = rgb_histogram(image, mask)
        assert histogram.sum() == 3 * 25

    def test_incremental_accumulation_matches_one_shot(self):
        rng = np.random.default_rng(0)
        image = rng.integers(0, 256, size=(12, 12, 3)).astype(np.uint8)
        histogram = ColourHistogram()
        histogram.add_image(image[:6])
        histogram.add_image(image[6:])
        assert np.array_equal(histogram.counts, rgb_histogram(image))

    def test_merge(self):
        a = ColourHistogram()
        a.add_image(_solid_image((1, 2, 3)))
        b = ColourHistogram()
        b.add_image(_solid_image((4, 5, 6)))
        merged = a.merge(b)
        assert merged.counts.sum() == a.counts.sum() + b.counts.sum()
        assert merged.pixel_count == a.pixel_count + b.pixel_count

    def test_merge_requires_same_bins(self):
        with pytest.raises(ConfigurationError):
            ColourHistogram(256).merge(ColourHistogram(128))

    def test_coarser_bins(self):
        histogram = ColourHistogram(bins_per_channel=16)
        histogram.add_image(_solid_image((255, 0, 16)))
        assert histogram.total_bins == 48
        assert histogram.counts[15] > 0      # red 255 -> bin 15
        assert histogram.counts[16] > 0      # green 0 -> bin 0 of channel 1
        assert histogram.counts[32 + 1] > 0  # blue 16 -> bin 1 of channel 2

    def test_invalid_bins(self):
        with pytest.raises(ConfigurationError):
            ColourHistogram(0)
        with pytest.raises(ConfigurationError):
            ColourHistogram(7)  # must divide 256

    def test_channel_slices(self):
        histogram = ColourHistogram()
        histogram.add_image(_solid_image((9, 0, 0)))
        assert histogram.channel(0)[9] > 0
        assert histogram.channel(1).sum() == histogram.channel(0).sum()
        with pytest.raises(ConfigurationError):
            histogram.channel(3)

    def test_normalised_sums_to_one(self):
        histogram = ColourHistogram()
        histogram.add_image(_solid_image((9, 9, 9)))
        assert histogram.normalised().sum() == pytest.approx(1.0)
        histogram.reset()
        assert histogram.normalised().sum() == 0.0

    def test_rejects_bad_images(self):
        with pytest.raises(DataError):
            rgb_histogram(np.zeros((5, 5), dtype=np.uint8))
        with pytest.raises(DataError):
            rgb_histogram(np.zeros((5, 5, 3), dtype=np.float32))
        with pytest.raises(DataError):
            rgb_histogram(np.zeros((5, 5, 3), dtype=np.uint8), np.zeros((4, 4), dtype=bool))


class TestBinarisation:
    def test_figure2_example(self):
        """The 16-bin example of figure 2: bins >= mean map to 1."""
        histogram = np.array([5, 1, 6, 7, 4, 1, 6, 0, 5, 1, 4, 3, 0, 0, 0, 3], dtype=float)
        theta = mean_threshold(histogram)
        bits = binarize_histogram(histogram)
        assert theta == pytest.approx(histogram.mean())
        assert np.array_equal(bits, (histogram >= theta).astype(np.uint8))
        assert set(np.unique(bits)).issubset({0, 1})

    def test_equation_uses_greater_or_equal(self):
        histogram = np.array([2.0, 2.0, 2.0, 2.0])
        assert binarize_histogram(histogram).tolist() == [1, 1, 1, 1]

    def test_median_threshold(self):
        histogram = np.array([0.0, 0.0, 5.0, 10.0])
        assert MedianThreshold().threshold(histogram) == pytest.approx(2.5)

    def test_fixed_fraction_sets_expected_count(self):
        histogram = np.arange(100, dtype=float)
        bits = FixedFractionThreshold(0.25).binarize(histogram)
        assert bits.sum() == pytest.approx(25, abs=1)

    def test_fixed_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            FixedFractionThreshold(1.5)

    def test_rejects_negative_and_empty(self):
        with pytest.raises(DataError):
            binarize_histogram(np.array([-1.0, 2.0]))
        with pytest.raises(DataError):
            binarize_histogram(np.array([]))
        with pytest.raises(DataError):
            binarize_histogram(np.zeros((2, 2)))

    def test_strategy_callable(self):
        histogram = np.array([1.0, 3.0])
        assert MeanThreshold()(histogram).tolist() == [0, 1]


class TestPacking:
    def test_pack_unpack_roundtrip(self, rng):
        bits = rng.integers(0, 2, 768).astype(np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(bits), 768), bits)

    def test_pack_length(self, rng):
        bits = rng.integers(0, 2, 768).astype(np.uint8)
        assert pack_bits(bits).size == 96

    def test_unpack_too_short(self):
        with pytest.raises(DataError):
            unpack_bits(np.zeros(2, dtype=np.uint8), 100)

    def test_signature_image_roundtrip(self, rng):
        bits = rng.integers(0, 2, 768).astype(np.uint8)
        image = signature_to_image(bits)
        assert image.shape == (24, 32)
        assert np.array_equal(image_to_signature(image), bits)

    def test_wrong_length_rejected(self):
        with pytest.raises(DataError):
            signature_to_image(np.zeros(100, dtype=np.uint8))

    def test_non_binary_rejected(self):
        with pytest.raises(DataError):
            pack_bits(np.array([0, 1, 2], dtype=np.uint8))


class TestBinarySignature:
    def test_extraction_produces_768_bits(self):
        image = _solid_image((120, 30, 200), 40, 30)
        mask = np.ones((40, 30), dtype=bool)
        signature = extract_signature(image, mask, label=3, frame_index=7)
        assert len(signature) == 768
        assert signature.label == 3
        assert signature.frame_index == 7
        assert signature.popcount > 0

    def test_bits_are_read_only(self):
        signature = BinarySignature(np.array([0, 1, 1, 0], dtype=np.uint8))
        with pytest.raises(ValueError):
            signature.bits[0] = 1

    def test_equality_and_hash(self):
        a = BinarySignature(np.array([0, 1], dtype=np.uint8), label=1)
        b = BinarySignature(np.array([0, 1], dtype=np.uint8), label=1)
        c = BinarySignature(np.array([1, 1], dtype=np.uint8), label=1)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_hamming_distance(self):
        a = BinarySignature(np.array([0, 1, 0, 1], dtype=np.uint8))
        b = BinarySignature(np.array([1, 1, 0, 0], dtype=np.uint8))
        assert a.hamming_distance(b) == 2
        with pytest.raises(DataError):
            a.hamming_distance(np.zeros(3, dtype=np.uint8))

    def test_with_label(self):
        signature = BinarySignature(np.array([0, 1], dtype=np.uint8))
        labelled = signature.with_label(4)
        assert labelled.label == 4
        assert signature.label is None

    def test_rejects_non_binary(self):
        with pytest.raises(DataError):
            BinarySignature(np.array([0, 2], dtype=np.uint8))

    def test_same_object_same_signature_different_frames(self):
        """The colour signature is position invariant (same pixels, shifted)."""
        image_a = np.zeros((30, 30, 3), dtype=np.uint8)
        image_b = np.zeros((30, 30, 3), dtype=np.uint8)
        image_a[5:15, 5:15] = (200, 40, 90)
        image_b[15:25, 10:20] = (200, 40, 90)
        mask_a = np.zeros((30, 30), dtype=bool)
        mask_b = np.zeros((30, 30), dtype=bool)
        mask_a[5:15, 5:15] = True
        mask_b[15:25, 10:20] = True
        sig_a = extract_signature(image_a, mask_a)
        sig_b = extract_signature(image_b, mask_b)
        assert sig_a.hamming_distance(sig_b) == 0


class TestExtendedFeatures:
    def test_shape_features_of_rectangle(self):
        from repro.signatures import shape_features

        mask = np.zeros((20, 20), dtype=bool)
        mask[2:12, 4:9] = True
        features = shape_features(mask)
        assert features.area == 50
        assert features.height == 10
        assert features.width == 5
        assert features.aspect_ratio == pytest.approx(2.0)
        assert features.fill_ratio == pytest.approx(1.0)
        assert sum(features.vertical_profile) == pytest.approx(1.0)

    def test_empty_mask(self):
        from repro.signatures import shape_features

        features = shape_features(np.zeros((10, 10), dtype=bool))
        assert features.area == 0
        assert features.aspect_ratio == 0.0

    def test_extended_extractor_length(self):
        from repro.signatures import ExtendedFeatureExtractor

        extractor = ExtendedFeatureExtractor(bins_per_channel=32, bits_per_feature=4, profile_bands=4)
        image = _solid_image((100, 50, 25), 30, 20)
        mask = np.zeros((30, 20), dtype=bool)
        mask[5:25, 5:15] = True
        bits = extractor.extract(image, mask)
        assert bits.size == extractor.signature_length
        assert set(np.unique(bits)).issubset({0, 1})

    def test_extended_extractor_validation(self):
        from repro.signatures import ExtendedFeatureExtractor

        with pytest.raises(ConfigurationError):
            ExtendedFeatureExtractor(bits_per_feature=0)
