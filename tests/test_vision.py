"""Unit tests for the video segmentation and tracking substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError, TrackingError
from repro.vision import (
    BackgroundSubtractor,
    Blob,
    ConnectedComponentLabeller,
    Frame,
    ObjectTracker,
    SceneConfig,
    SyntheticSurveillanceScene,
    TrackState,
    VideoSequence,
    binary_close,
    binary_dilate,
    binary_erode,
    binary_open,
    default_actor_palette,
    extract_blobs,
    filter_blobs_by_area,
    label_components,
)
from repro.vision.background import BackgroundModel
from repro.vision.connected_components import UnionFind


class TestFrameAndSequence:
    def test_frame_validates_shape(self):
        with pytest.raises(DataError):
            Frame(0, np.zeros((4, 4), dtype=np.uint8))

    def test_sequence_checks_resolution(self):
        seq = VideoSequence(fps=30)
        seq.append(Frame(0, np.zeros((4, 4, 3), dtype=np.uint8)))
        with pytest.raises(DataError):
            seq.append(Frame(1, np.zeros((5, 5, 3), dtype=np.uint8)))

    def test_sequence_duration(self):
        frames = [Frame(i, np.zeros((4, 4, 3), dtype=np.uint8)) for i in range(60)]
        seq = VideoSequence(frames, fps=30)
        assert seq.duration_seconds == pytest.approx(2.0)
        assert seq.resolution == (4, 4)
        assert len(seq) == 60
        assert seq[10].index == 10


class TestSyntheticScene:
    def test_default_palette_has_nine_actors(self):
        actors = default_actor_palette()
        assert len(actors) == 9
        assert len({a.identity for a in actors}) == 9

    def test_frames_have_truth_masks(self):
        scene = SyntheticSurveillanceScene(seed=0)
        frames = list(scene.frames(30))
        assert len(frames) == 30
        identities = set()
        for frame in frames:
            assert frame.image.dtype == np.uint8
            for identity, mask in frame.truth_masks.items():
                assert mask.shape == frame.image.shape[:2]
                assert mask.any()
                identities.add(identity)
        assert identities  # at least someone walked through

    def test_determinism(self):
        a = SyntheticSurveillanceScene(seed=42).render_frame(5)
        b = SyntheticSurveillanceScene(seed=42).render_frame(5)
        assert np.array_equal(a.image, b.image)

    def test_masks_do_not_overlap(self):
        """Z-ordering: two actors' ground-truth silhouettes never share pixels."""
        scene = SyntheticSurveillanceScene(seed=3)
        for frame in scene.frames(40):
            masks = list(frame.truth_masks.values())
            for i in range(len(masks)):
                for j in range(i + 1, len(masks)):
                    assert not (masks[i] & masks[j]).any()

    def test_scene_config_validation(self):
        with pytest.raises(ConfigurationError):
            SceneConfig(height=10, width=10)
        with pytest.raises(ConfigurationError):
            SceneConfig(pixel_noise_std=-1)

    def test_requires_actors(self):
        with pytest.raises(ConfigurationError):
            SyntheticSurveillanceScene(actors=[], seed=0)

    def test_background_is_static(self):
        scene = SyntheticSurveillanceScene(seed=0)
        assert np.array_equal(scene.background, scene.background)


class TestBackground:
    def test_first_frame_initialises(self):
        subtractor = BackgroundSubtractor()
        frame = np.full((10, 10, 3), 100, dtype=np.uint8)
        assert not subtractor.apply(frame).any()

    def test_detects_new_object(self):
        subtractor = BackgroundSubtractor(threshold=20)
        background = np.full((20, 20, 3), 100, dtype=np.uint8)
        subtractor.initialise(background)
        frame = background.copy()
        frame[5:10, 5:10] = (220, 30, 30)
        mask = subtractor.apply(frame)
        assert mask[6, 6]
        assert not mask[0, 0]

    def test_adapts_to_lighting_drift(self):
        subtractor = BackgroundSubtractor(threshold=25, learning_rate=0.2)
        base = np.full((10, 10, 3), 100, dtype=np.uint8)
        subtractor.initialise(base)
        for step in range(30):
            drifted = np.clip(base.astype(int) + step, 0, 255).astype(np.uint8)
            mask = subtractor.apply(drifted)
        assert not mask.any()

    def test_model_validation(self):
        with pytest.raises(ConfigurationError):
            BackgroundModel(learning_rate=0.0)
        model = BackgroundModel()
        with pytest.raises(DataError):
            _ = model.estimate
        with pytest.raises(ConfigurationError):
            BackgroundSubtractor(threshold=0)


class TestMorphology:
    def test_erode_removes_single_pixels(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[4, 4] = True
        assert not binary_erode(mask, 1).any()

    def test_dilate_grows_regions(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[4, 4] = True
        assert binary_dilate(mask, 1).sum() == 9

    def test_open_removes_specks_keeps_blocks(self):
        mask = np.zeros((20, 20), dtype=bool)
        mask[1, 1] = True                 # speck
        mask[5:15, 5:15] = True           # block
        opened = binary_open(mask, 1)
        assert not opened[1, 1]
        assert opened[10, 10]

    def test_close_fills_holes(self):
        mask = np.ones((11, 11), dtype=bool)
        mask[5, 5] = False
        assert binary_close(mask, 1)[5, 5]

    def test_radius_zero_is_identity(self):
        mask = np.random.default_rng(0).random((8, 8)) > 0.5
        assert np.array_equal(binary_erode(mask, 0), mask)
        assert np.array_equal(binary_dilate(mask, 0), mask)

    def test_validation(self):
        with pytest.raises(DataError):
            binary_erode(np.zeros((3, 3, 3), dtype=bool))
        with pytest.raises(ConfigurationError):
            binary_dilate(np.zeros((3, 3), dtype=bool), -1)


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(5)]
        uf.union(ids[0], ids[1])
        uf.union(ids[1], ids[2])
        assert uf.find(ids[0]) == uf.find(ids[2])
        assert uf.find(ids[3]) != uf.find(ids[0])
        assert len(uf) == 5


class TestConnectedComponents:
    def test_two_separate_blocks(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[1:3, 1:3] = True
        mask[6:9, 6:9] = True
        labels, count = label_components(mask)
        assert count == 2
        assert labels[1, 1] != labels[7, 7]
        assert labels[0, 0] == 0

    def test_diagonal_connectivity(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        mask[1, 1] = True
        labels8, count8 = label_components(mask, connectivity=8)
        labels4, count4 = label_components(mask, connectivity=4)
        assert count8 == 1
        assert count4 == 2

    def test_u_shape_merges_via_equivalence(self):
        """A U-shape forces the second pass to merge provisional labels."""
        mask = np.zeros((6, 7), dtype=bool)
        mask[0:5, 1] = True
        mask[0:5, 5] = True
        mask[4, 1:6] = True
        labels, count = label_components(mask)
        assert count == 1

    def test_empty_mask(self):
        labels, count = label_components(np.zeros((5, 5), dtype=bool))
        assert count == 0
        assert not labels.any()

    def test_full_mask(self):
        labels, count = label_components(np.ones((5, 5), dtype=bool))
        assert count == 1
        assert np.all(labels == 1)

    def test_labels_are_compact(self):
        rng = np.random.default_rng(0)
        mask = rng.random((20, 20)) > 0.7
        labels, count = label_components(mask)
        present = set(np.unique(labels)) - {0}
        assert present == set(range(1, count + 1))

    def test_invalid_connectivity(self):
        with pytest.raises(ConfigurationError):
            ConnectedComponentLabeller(connectivity=6)


class TestBlobs:
    def test_blob_geometry(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[2:5, 3:7] = True
        labels, count = label_components(mask)
        blobs = extract_blobs(labels, count)
        assert len(blobs) == 1
        blob = blobs[0]
        assert blob.area == 12
        assert blob.bounding_box == (2, 3, 5, 7)
        assert blob.height == 3 and blob.width == 4
        assert blob.centroid == (3.0, 4.5)
        assert blob.crop_mask().shape == (3, 4)

    def test_area_filter(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[0, 0] = True
        mask[4:8, 4:8] = True
        labels, count = label_components(mask)
        blobs = extract_blobs(labels, count)
        kept = filter_blobs_by_area(blobs, min_area=4)
        assert len(blobs) == 2
        assert len(kept) == 1
        assert kept[0].area == 16

    def test_paper_filter_default(self):
        from repro.vision.blobs import PAPER_MIN_BLOB_AREA

        assert PAPER_MIN_BLOB_AREA == 768


class TestTracker:
    @staticmethod
    def _blob_at(row, col, size=4):
        mask = np.zeros((50, 50), dtype=bool)
        mask[row : row + size, col : col + size] = True
        labels, count = label_components(mask)
        return extract_blobs(labels, count)[0]

    def test_track_persists_across_frames(self):
        tracker = ObjectTracker(max_distance=10)
        first = tracker.update(0, [self._blob_at(10, 10)])
        second = tracker.update(1, [self._blob_at(12, 12)])
        assert list(first.keys()) == list(second.keys())

    def test_distant_blob_opens_new_track(self):
        tracker = ObjectTracker(max_distance=5)
        first = tracker.update(0, [self._blob_at(5, 5)])
        second = tracker.update(1, [self._blob_at(40, 40)])
        assert set(first.keys()) != set(second.keys())
        assert len(tracker.tracks) == 2

    def test_track_survives_short_occlusion(self):
        tracker = ObjectTracker(max_distance=10, max_missed_frames=3)
        original = list(tracker.update(0, [self._blob_at(20, 20)]).keys())[0]
        tracker.update(1, [])
        tracker.update(2, [])
        reacquired = list(tracker.update(3, [self._blob_at(22, 22)]).keys())[0]
        assert reacquired == original

    def test_track_closes_after_long_absence(self):
        tracker = ObjectTracker(max_missed_frames=1)
        track_id = list(tracker.update(0, [self._blob_at(20, 20)]).keys())[0]
        tracker.update(1, [])
        tracker.update(2, [])
        assert tracker.track(track_id).state == TrackState.CLOSED

    def test_two_objects_keep_separate_ids(self):
        tracker = ObjectTracker(max_distance=8)
        first = tracker.update(0, [self._blob_at(5, 5), self._blob_at(30, 30)])
        second = tracker.update(1, [self._blob_at(6, 7), self._blob_at(31, 29)])
        assert set(first.keys()) == set(second.keys())
        assert len(first) == 2

    def test_frame_indices_must_increase(self):
        tracker = ObjectTracker()
        tracker.update(3, [])
        with pytest.raises(TrackingError):
            tracker.update(3, [])

    def test_unknown_track_lookup(self):
        with pytest.raises(TrackingError):
            ObjectTracker().track(42)

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            ObjectTracker(max_distance=0)
        with pytest.raises(ConfigurationError):
            ObjectTracker(max_area_ratio=0.5)
