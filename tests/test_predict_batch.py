"""Regression tests: the vectorised batch path matches ``predict_one`` exactly.

``SomClassifier.predict`` now delegates to ``predict_batch`` (one
``pairwise_masked_hamming`` call for the whole batch); these tests pin the
contract that batching is purely an execution strategy -- labels, winning
neurons, distances and rejection decisions are bit-identical to looping
``predict_one``, including the ``UNKNOWN_LABEL`` cases from the rejection
threshold and from unlabelled winning neurons.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BatchPrediction,
    BinarySom,
    LabelledMap,
    SomClassifier,
    UNKNOWN_LABEL,
)
from repro.errors import ConfigurationError, DataError, NotFittedError


def _assert_batch_matches_looped(classifier: SomClassifier, X: np.ndarray) -> None:
    batch = classifier.predict_batch(X)
    assert len(batch) == X.shape[0]
    for row in range(X.shape[0]):
        single = classifier.predict_one(X[row])
        result = batch[row]
        assert result.label == single.label
        assert result.neuron == single.neuron
        assert result.rejected == single.rejected
        # Exact for the bSOM's integer Hamming distances; the cSOM's squared
        # Euclidean accumulates in a different order between the single and
        # matrix paths, so allow float rounding in the last ulps there.
        assert result.distance == pytest.approx(single.distance, rel=1e-12, abs=1e-9)
    np.testing.assert_array_equal(classifier.predict(X), batch.labels)


class TestBatchMatchesLooped:
    def test_bsom_without_rejection(self, trained_bsom_classifier, cluster_data):
        X, _ = cluster_data
        _assert_batch_matches_looped(trained_bsom_classifier, X)

    def test_csom_without_rejection(self, trained_csom_classifier, cluster_data):
        X, _ = cluster_data
        _assert_batch_matches_looped(trained_csom_classifier, X)

    def test_with_rejection_threshold(self, cluster_data, rng):
        X, y = cluster_data
        classifier = SomClassifier(
            BinarySom(16, X.shape[1], seed=3), rejection_percentile=75.0
        ).fit(X, y, epochs=6, seed=4)
        # Mix in-distribution rows with uniform-random ones so both sides of
        # the threshold are exercised.
        noise = rng.integers(0, 2, size=(40, X.shape[1])).astype(np.uint8)
        mixed = np.vstack([X[:40], noise])
        batch = classifier.predict_batch(mixed)
        assert batch.rejected.any(), "expected some rejections from random inputs"
        assert not batch.rejected.all(), "expected some accepted in-cluster inputs"
        assert np.all(batch.labels[batch.rejected] == UNKNOWN_LABEL)
        _assert_batch_matches_looped(classifier, mixed)

    def test_unlabelled_winner_is_rejected(self, cluster_data):
        X, y = cluster_data
        classifier = SomClassifier(BinarySom(16, X.shape[1], seed=5)).fit(
            X, y, epochs=6, seed=6
        )
        # Force the winner of the first row into the unlabelled state.
        winner = classifier.predict_one(X[0]).neuron
        classifier.labelling.node_labels[winner] = LabelledMap.UNLABELLED
        single = classifier.predict_one(X[0])
        assert single.label == UNKNOWN_LABEL and single.rejected
        _assert_batch_matches_looped(classifier, X[:20])


class TestBatchPredictionObject:
    def test_confidences_bounds_and_rejection_zeroing(self, cluster_data, rng):
        X, y = cluster_data
        classifier = SomClassifier(
            BinarySom(16, X.shape[1], seed=7), rejection_percentile=60.0
        ).fit(X, y, epochs=6, seed=8)
        noise = rng.integers(0, 2, size=(30, X.shape[1])).astype(np.uint8)
        batch = classifier.predict_batch(np.vstack([X[:30], noise]))
        assert np.all(batch.confidences >= 0.0) and np.all(batch.confidences <= 1.0)
        assert np.all(batch.confidences[batch.rejected] == 0.0)
        assert np.all(batch.confidences[~batch.rejected] > 0.0)

    def test_iteration_yields_prediction_results(self, trained_bsom_classifier, cluster_data):
        X, _ = cluster_data
        batch = trained_bsom_classifier.predict_batch(X[:5])
        results = list(batch)
        assert len(results) == 5
        assert results[2] == trained_bsom_classifier.predict_one(X[2])

    def test_single_row_promotion(self, trained_bsom_classifier, cluster_data):
        X, _ = cluster_data
        batch = trained_bsom_classifier.predict_batch(X[0])
        assert isinstance(batch, BatchPrediction) and len(batch) == 1

    def test_unfitted_raises(self, cluster_data):
        X, _ = cluster_data
        with pytest.raises(NotFittedError):
            SomClassifier(BinarySom(8, X.shape[1], seed=0)).predict_batch(X)


class TestOnlineLearnerBatchPath:
    def test_observe_many_matches_sequential_observe(self, cluster_data, rng):
        from repro.pipeline import OnlineLearner, OnlineLearnerConfig

        X, y = cluster_data
        config = OnlineLearnerConfig(min_signatures=10, online_epochs=1)

        def build():
            classifier = SomClassifier(BinarySom(16, X.shape[1], seed=9)).fit(
                X, y, epochs=8, seed=10
            )
            return OnlineLearner(classifier, X, y, config=config)

        # A batch of known signatures plus a handful of novel (random) ones,
        # all attributed to one track so the novel evidence accumulates.
        novel = rng.integers(0, 2, size=(6, X.shape[1])).astype(np.uint8)
        batch = np.vstack([X[:12], novel])
        track_ids = np.full(batch.shape[0], 7, dtype=np.int64)

        sequential = build()
        expected = np.array(
            [sequential.observe(7, row) for row in batch], dtype=np.int64
        )
        batched = build()
        labels = batched.observe_many(track_ids, batch)
        np.testing.assert_array_equal(labels, expected)
        assert batched.pending_counts() == sequential.pending_counts()

    def test_observe_many_shape_validation(self, cluster_data):
        from repro.errors import ConfigurationError
        from repro.pipeline import OnlineLearner

        X, y = cluster_data
        classifier = SomClassifier(BinarySom(16, X.shape[1], seed=11)).fit(
            X, y, epochs=6, seed=12
        )
        learner = OnlineLearner(classifier, X, y)
        with pytest.raises(ConfigurationError):
            learner.observe_many(np.array([1, 2]), X[:3])


class TestLabelledMapBatchLookups:
    def test_labels_for_matches_label_of(self, trained_bsom_classifier):
        labelling = trained_bsom_classifier.labelling
        winners = np.arange(labelling.n_neurons)
        vectorised = labelling.labels_for(winners)
        for neuron in winners:
            expected = labelling.label_of(int(neuron))
            assert vectorised[neuron] == (
                LabelledMap.UNLABELLED if expected is None else expected
            )

    def test_confidences_for_agree_with_win_table(self, trained_bsom_classifier):
        labelling = trained_bsom_classifier.labelling
        winners = np.arange(labelling.n_neurons)
        confidences = labelling.confidences_for(winners)
        for neuron in winners:
            total = labelling.win_frequencies[neuron].sum()
            expected = (
                labelling.win_frequencies[neuron].max() / total if total else 0.0
            )
            assert confidences[neuron] == pytest.approx(expected)

    def test_out_of_range_winner_raises(self, trained_bsom_classifier):
        labelling = trained_bsom_classifier.labelling
        with pytest.raises(ConfigurationError):
            labelling.labels_for(np.array([labelling.n_neurons]))

    def test_non_integer_winners_raise(self, trained_bsom_classifier):
        with pytest.raises(DataError):
            trained_bsom_classifier.labelling.confidences_for(np.array([0.5]))
