"""Unit tests for the Hamming distance functions (equation 3)."""

import numpy as np
import pytest

from repro.core.distance import (
    batch_binary_hamming,
    batch_masked_hamming,
    hamming_distance,
    masked_hamming_distance,
    pairwise_masked_hamming,
)
from repro.core.tristate import DONT_CARE
from repro.errors import DataError, DimensionMismatchError


class TestHammingDistance:
    def test_identical_vectors(self):
        x = np.array([0, 1, 1, 0])
        assert hamming_distance(x, x) == 0

    def test_complementary_vectors(self):
        a = np.array([0, 1, 0, 1])
        assert hamming_distance(a, 1 - a) == 4

    def test_symmetry(self):
        a = np.array([0, 1, 1, 0, 1])
        b = np.array([1, 1, 0, 0, 1])
        assert hamming_distance(a, b) == hamming_distance(b, a)

    def test_length_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            hamming_distance(np.array([0, 1]), np.array([0, 1, 1]))

    def test_rejects_non_binary(self):
        with pytest.raises(DataError):
            hamming_distance(np.array([0, 2]), np.array([0, 1]))

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            hamming_distance(np.array([]), np.array([]))


class TestMaskedHammingDistance:
    def test_dont_care_matches_everything(self):
        weights = np.full(8, DONT_CARE, dtype=np.int8)
        x = np.array([1, 0, 1, 0, 1, 0, 1, 0])
        assert masked_hamming_distance(weights, x) == 0

    def test_committed_bits_count(self):
        weights = np.array([0, 1, DONT_CARE, 1], dtype=np.int8)
        x = np.array([1, 1, 1, 0])
        # bit 0 mismatches, bit 1 matches, bit 2 is '#', bit 3 mismatches.
        assert masked_hamming_distance(weights, x) == 2

    def test_equals_plain_hamming_without_wildcards(self):
        rng = np.random.default_rng(0)
        weights = rng.integers(0, 2, 32).astype(np.int8)
        x = rng.integers(0, 2, 32).astype(np.int8)
        assert masked_hamming_distance(weights, x) == hamming_distance(weights, x)

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            masked_hamming_distance(np.zeros(4, dtype=np.int8), np.zeros(5, dtype=np.int8))


class TestBatchMaskedHamming:
    def test_matches_scalar_version(self, rng):
        weights = rng.integers(0, 3, size=(10, 24)).astype(np.int8)
        x = rng.integers(0, 2, 24).astype(np.int8)
        batch = batch_masked_hamming(weights, x)
        scalar = [masked_hamming_distance(row, x) for row in weights]
        assert batch.tolist() == scalar

    def test_all_dont_care_row_has_zero_distance(self, rng):
        weights = rng.integers(0, 2, size=(3, 16)).astype(np.int8)
        weights[1, :] = DONT_CARE
        x = rng.integers(0, 2, 16).astype(np.int8)
        assert batch_masked_hamming(weights, x)[1] == 0

    def test_requires_matrix(self):
        with pytest.raises(DataError):
            batch_masked_hamming(np.zeros(4, dtype=np.int8), np.zeros(4, dtype=np.int8))

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            batch_masked_hamming(np.zeros((2, 4), dtype=np.int8), np.zeros(5, dtype=np.int8))


class TestBatchBinaryHamming:
    def test_matches_plain_hamming(self, rng):
        weights = rng.integers(0, 2, size=(6, 20)).astype(np.int8)
        x = rng.integers(0, 2, 20).astype(np.int8)
        batch = batch_binary_hamming(weights, x)
        assert batch.tolist() == [hamming_distance(row, x) for row in weights]

    def test_rejects_tristate_weights(self):
        weights = np.full((2, 4), DONT_CARE, dtype=np.int8)
        with pytest.raises(DataError):
            batch_binary_hamming(weights, np.zeros(4, dtype=np.int8))


class TestPairwiseMaskedHamming:
    def test_matches_batch_version(self, rng):
        weights = rng.integers(0, 3, size=(7, 32)).astype(np.int8)
        inputs = rng.integers(0, 2, size=(5, 32)).astype(np.int8)
        matrix = pairwise_masked_hamming(weights, inputs)
        assert matrix.shape == (5, 7)
        for i, x in enumerate(inputs):
            assert matrix[i].tolist() == batch_masked_hamming(weights, x).tolist()

    def test_rejects_non_binary_inputs(self, rng):
        weights = rng.integers(0, 3, size=(3, 8)).astype(np.int8)
        inputs = np.full((2, 8), 5)
        with pytest.raises(DataError):
            pairwise_masked_hamming(weights, inputs)

    def test_dimension_mismatch(self, rng):
        weights = rng.integers(0, 3, size=(3, 8)).astype(np.int8)
        inputs = rng.integers(0, 2, size=(2, 9)).astype(np.int8)
        with pytest.raises(DimensionMismatchError):
            pairwise_masked_hamming(weights, inputs)
