"""Shared fixtures for the test suite.

The fixtures keep the expensive artefacts (synthetic surveillance dataset,
trained classifiers) session-scoped so the suite stays fast while many test
modules can exercise realistic data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BinarySom, KohonenSom, SomClassifier
from repro.datasets import make_signature_clusters, make_surveillance_dataset


@pytest.fixture(scope="session")
def cluster_data():
    """Small, well-separated signature clusters (fast, no video rendering)."""
    X, y = make_signature_clusters(
        n_identities=5, samples_per_identity=40, n_bits=128, core_bits=20, shared_bits=15, seed=42
    )
    return X, y


@pytest.fixture(scope="session")
def tiny_surveillance():
    """A miniature surveillance dataset built through the full front end."""
    return make_surveillance_dataset(scale=0.05, seed=123)


@pytest.fixture(scope="session")
def trained_bsom_classifier(cluster_data):
    """A bSOM classifier fitted on the cluster data."""
    X, y = cluster_data
    classifier = SomClassifier(BinarySom(16, X.shape[1], seed=1))
    return classifier.fit(X, y, epochs=8, seed=2)


@pytest.fixture(scope="session")
def trained_csom_classifier(cluster_data):
    """A cSOM classifier fitted on the cluster data."""
    X, y = cluster_data
    classifier = SomClassifier(KohonenSom(16, X.shape[1], seed=1))
    return classifier.fit(X, y, epochs=8, seed=2)


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0)
