"""Unit tests for dataset construction, splits and persistence."""

import numpy as np
import pytest

from repro.datasets import (
    PAPER_IDENTITIES,
    PAPER_TEST_SIGNATURES,
    PAPER_TRAIN_SIGNATURES,
    SegmentationNoiseModel,
    SurveillanceDatasetConfig,
    load_dataset,
    make_signature_clusters,
    make_surveillance_dataset,
    save_dataset,
    stratified_split,
    temporal_split,
)
from repro.errors import ConfigurationError, DataError


class TestSignatureClusters:
    def test_shapes_and_labels(self):
        X, y = make_signature_clusters(n_identities=4, samples_per_identity=10, n_bits=64, seed=0)
        assert X.shape == (40, 64)
        assert set(np.unique(y)) == {0, 1, 2, 3}
        assert set(np.unique(X)).issubset({0, 1})

    def test_clusters_are_separable(self):
        X, y = make_signature_clusters(n_identities=3, samples_per_identity=30, n_bits=96, seed=1)
        # Nearest-centroid classification should be near perfect on this toy data.
        centroids = np.vstack([X[y == label].mean(axis=0) for label in range(3)])
        predictions = np.argmin(
            ((X[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2), axis=1
        )
        assert (predictions == y).mean() > 0.95

    def test_reproducible(self):
        a = make_signature_clusters(seed=5)
        b = make_signature_clusters(seed=5)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_signature_clusters(n_identities=0)
        with pytest.raises(ConfigurationError):
            make_signature_clusters(n_identities=10, core_bits=100, n_bits=500)
        with pytest.raises(ConfigurationError):
            make_signature_clusters(core_on_probability=1.5)


class TestPaperConstants:
    def test_paper_sizes(self):
        assert PAPER_TRAIN_SIGNATURES == 2248
        assert PAPER_TEST_SIGNATURES == 1139
        assert PAPER_IDENTITIES == 9


class TestSurveillanceDataset:
    def test_structure(self, tiny_surveillance):
        data = tiny_surveillance
        assert data.n_bits == 768
        assert data.train_signatures.shape[1] == 768
        assert data.test_signatures.shape[1] == 768
        assert data.train_signatures.shape[0] == data.train_labels.shape[0]
        assert data.test_signatures.shape[0] == data.test_labels.shape[0]
        assert set(np.unique(data.train_signatures)).issubset({0, 1})

    def test_scaled_sizes(self, tiny_surveillance):
        data = tiny_surveillance
        assert data.n_train == pytest.approx(0.05 * PAPER_TRAIN_SIGNATURES, abs=15)
        assert data.n_test == pytest.approx(0.05 * PAPER_TEST_SIGNATURES, abs=15)

    def test_all_identities_present_in_training(self, tiny_surveillance):
        assert set(np.unique(tiny_surveillance.train_labels)) == set(range(PAPER_IDENTITIES))

    def test_temporal_split_order(self, tiny_surveillance):
        data = tiny_surveillance
        assert data.train_frames.max() < data.test_frames.min()

    def test_signatures_for_identity_sorted_by_frame(self, tiny_surveillance):
        matrix = tiny_surveillance.signatures_for_identity(0, "train")
        assert matrix.shape[1] == 768
        assert matrix.shape[0] > 0
        with pytest.raises(ConfigurationError):
            tiny_surveillance.signatures_for_identity(0, "validation")

    def test_summary_keys(self, tiny_surveillance):
        summary = tiny_surveillance.summary()
        assert summary["identities"] == PAPER_IDENTITIES
        assert summary["bits"] == 768

    def test_cache_returns_same_object(self):
        a = make_surveillance_dataset(scale=0.05, seed=123)
        b = make_surveillance_dataset(scale=0.05, seed=123)
        assert a is b

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SurveillanceDatasetConfig(scale=0.0)
        with pytest.raises(ConfigurationError):
            SurveillanceDatasetConfig(n_identities=0)
        with pytest.raises(ConfigurationError):
            SegmentationNoiseModel(merge_probability=1.5)

    def test_noise_model_corrupts_masks(self, rng):
        noise = SegmentationNoiseModel(
            boundary_noise_probability=1.0,
            partial_occlusion_probability=1.0,
            contamination_probability=0.0,
            merge_probability=0.0,
        )
        mask = np.zeros((40, 40), dtype=bool)
        mask[5:35, 10:30] = True
        corrupted = noise.corrupt(mask, [], rng)
        assert corrupted.sum() != mask.sum()

    def test_merge_unions_other_mask(self, rng):
        noise = SegmentationNoiseModel(
            boundary_noise_probability=0.0,
            partial_occlusion_probability=0.0,
            contamination_probability=0.0,
            merge_probability=1.0,
        )
        mask = np.zeros((20, 20), dtype=bool)
        mask[:5, :5] = True
        other = np.zeros((20, 20), dtype=bool)
        other[10:, 10:] = True
        corrupted = noise.corrupt(mask, [other], rng)
        assert corrupted[12, 12]


class TestSplits:
    def test_temporal_split_respects_order(self, rng):
        X = rng.integers(0, 2, size=(100, 8))
        y = rng.integers(0, 3, size=100)
        order = np.arange(100)
        X_train, y_train, X_test, y_test = temporal_split(X, y, order, train_fraction=0.7)
        assert X_train.shape[0] == 70
        assert X_test.shape[0] == 30
        assert np.array_equal(X_train, X[:70])

    def test_temporal_split_validation(self, rng):
        X = rng.integers(0, 2, size=(10, 4))
        y = rng.integers(0, 2, size=10)
        with pytest.raises(ConfigurationError):
            temporal_split(X, y, np.arange(10), train_fraction=1.5)
        with pytest.raises(DataError):
            temporal_split(X, y, np.arange(9))

    def test_stratified_split_keeps_all_classes(self, rng):
        X = rng.integers(0, 2, size=(90, 8))
        y = np.repeat([0, 1, 2], 30)
        X_train, y_train, X_test, y_test = stratified_split(X, y, 0.7, seed=0)
        assert set(np.unique(y_train)) == {0, 1, 2}
        assert set(np.unique(y_test)) == {0, 1, 2}
        assert X_train.shape[0] + X_test.shape[0] == 90

    def test_stratified_split_reproducible(self, rng):
        X = rng.integers(0, 2, size=(40, 4))
        y = np.repeat([0, 1], 20)
        a = stratified_split(X, y, seed=3)
        b = stratified_split(X, y, seed=3)
        assert np.array_equal(a[0], b[0])


class TestLoaders:
    def test_save_load_roundtrip(self, tmp_path, tiny_surveillance):
        path = save_dataset(tiny_surveillance, tmp_path / "data")
        loaded = load_dataset(path)
        assert np.array_equal(loaded.train_signatures, tiny_surveillance.train_signatures)
        assert np.array_equal(loaded.test_labels, tiny_surveillance.test_labels)
        assert loaded.n_bits == tiny_surveillance.n_bits

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_dataset(tmp_path / "nope.npz")

    def test_missing_arrays(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, train_signatures=np.zeros((2, 4)))
        with pytest.raises(DataError):
            load_dataset(bad)
