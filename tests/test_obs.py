"""Unit tests for the observability substrate (repro.obs).

Covers the metric registry (kinds, labels, consistent reads, histogram
quantiles), the tracer (sampling, span model, ring eviction), the event
log (monotonic sequencing, incremental reads) and both exporters
(JSONL round trip, Prometheus render -> parse).
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError, DataError
from repro.obs import Observability
from repro.obs.events import EventLog
from repro.obs.export import (
    JsonlExporter,
    metrics_record,
    parse_prometheus,
    read_jsonl,
    render_prometheus,
    windowed_deltas,
    write_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricRegistry,
    exponential_buckets,
    labels_key,
    read_consistent,
)
from repro.obs.trace import ROOT_SPAN, Tracer


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# --------------------------------------------------------------------- #
# Metric registry
# --------------------------------------------------------------------- #
class TestMetricRegistry:
    def test_counter_monotone(self):
        registry = MetricRegistry()
        counter = registry.counter("x_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_get_or_create_returns_same_instance(self):
        registry = MetricRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")
        assert len(registry) == 1

    def test_labels_distinguish_series(self):
        registry = MetricRegistry()
        a = registry.counter("x_total", labels={"shard": "a"})
        b = registry.counter("x_total", labels={"shard": "b"})
        assert a is not b
        a.inc()
        assert registry.get("x_total", {"shard": "a"}).value == 1.0
        assert registry.get("x_total", {"shard": "b"}).value == 0.0

    def test_labels_key_order_insensitive(self):
        assert labels_key({"b": "2", "a": "1"}) == labels_key({"a": "1", "b": "2"})
        with pytest.raises(ConfigurationError):
            labels_key({"bad name": "x"})

    def test_kind_mismatch_refused(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_invalid_metric_name_refused(self):
        registry = MetricRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("bad name")

    def test_gauge_set_inc_dec(self):
        registry = MetricRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6.0

    def test_callback_gauge(self):
        registry = MetricRegistry()
        value = {"n": 3}
        gauge = registry.gauge("live", fn=lambda: value["n"])
        assert gauge.value == 3.0
        value["n"] = 7
        assert gauge.value == 7.0
        with pytest.raises(ConfigurationError):
            gauge.set(1.0)

    def test_settable_gauge_cannot_become_callback(self):
        registry = MetricRegistry()
        registry.gauge("depth")
        with pytest.raises(ConfigurationError):
            registry.gauge("depth", fn=lambda: 0.0)

    def test_histogram_bucket_mismatch_refused(self):
        registry = MetricRegistry()
        registry.histogram("lat", buckets=(0.1, 1.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("lat", buckets=(0.5, 1.0))

    def test_collect_sorted_and_contains(self):
        registry = MetricRegistry()
        registry.counter("b_total")
        registry.counter("a_total")
        assert [m.name for m in registry.collect()] == ["a_total", "b_total"]
        assert "a_total" in registry
        assert "zzz" not in registry

    def test_read_consistent_matches_individual_reads(self):
        registry = MetricRegistry()
        hits = registry.counter("hits")
        misses = registry.counter("misses")
        hits.inc(3)
        misses.inc(1)
        assert read_consistent(hits, misses) == (3.0, 1.0)
        # Same metric twice must not deadlock (locks are deduplicated).
        assert read_consistent(hits, hits) == (3.0, 3.0)

    def test_read_consistent_under_concurrent_writes(self):
        # hits and misses are always incremented together; a consistent
        # read must never observe the pair mid-update drifting apart by
        # more than the one in-flight increment.
        registry = MetricRegistry()
        hits = registry.counter("hits")
        misses = registry.counter("misses")
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                hits.inc()
                misses.inc()

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            for _ in range(500):
                h, m = read_consistent(hits, misses)
                assert abs(h - m) <= 1.0
        finally:
            stop.set()
            thread.join(5.0)


class TestHistogram:
    def test_quantiles_interpolate(self):
        hist = Histogram("lat", (), buckets=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 1.6, 3.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(6.6)
        # Quantiles are monotone and land in the right buckets.
        p50 = hist.quantile(0.50)
        p99 = hist.quantile(0.99)
        assert 1.0 <= p50 <= 2.0
        assert 2.0 < p99 <= 4.0
        assert hist.quantile(0.0) <= p50 <= p99 <= hist.quantile(1.0)

    def test_empty_histogram_quantile_is_zero(self):
        hist = Histogram("lat", (), buckets=(1.0, 2.0))
        assert hist.quantile(0.5) == 0.0

    def test_overflow_reports_last_finite_bound(self):
        hist = Histogram("lat", (), buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.quantile(0.99) == 2.0
        assert hist.bucket_counts() == (0, 0, 1)

    def test_bucket_validation(self):
        with pytest.raises(ConfigurationError):
            Histogram("lat", (), buckets=())
        with pytest.raises(ConfigurationError):
            Histogram("lat", (), buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("lat", (), buckets=(1.0, float("inf")))
        with pytest.raises(ConfigurationError):
            hist = Histogram("lat", (), buckets=(1.0,))
            hist.quantile(1.5)

    def test_exponential_buckets(self):
        bounds = exponential_buckets(1.0, 2.0, 4)
        assert bounds == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ConfigurationError):
            exponential_buckets(0.0, 2.0, 4)
        assert len(DEFAULT_TIME_BUCKETS) == 35


# --------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------- #
class TestTracer:
    def test_span_model(self):
        clock = ManualClock()
        tracer = Tracer(sample_every=1, clock=clock)
        trace = tracer.start(model="m")
        assert trace is not None and trace.root.name == ROOT_SPAN
        clock.advance(1.0)
        trace.begin("queue", t=clock())
        clock.advance(2.0)
        trace.end("queue", t=clock())
        trace.span("kernel", start=3.0, end=3.5, shard="m/0")
        clock.advance(1.0)
        trace.finish("ok", label=4)
        assert trace.span_names() == (ROOT_SPAN, "queue", "kernel")
        assert trace.find("queue").duration_s == pytest.approx(2.0)
        assert trace.find("kernel").attrs["shard"] == "m/0"
        assert trace.duration_s == pytest.approx(4.0)
        assert trace.status == "ok" and trace.root.attrs["label"] == 4
        assert tracer.get(trace.trace_id) is trace

    def test_finish_is_idempotent_and_closes_open_spans(self):
        tracer = Tracer(sample_every=1, clock=ManualClock())
        trace = tracer.start()
        trace.begin("queue")
        trace.finish("error")
        assert not trace.find("queue").open
        trace.finish("ok")  # second call ignored
        assert trace.status == "error"
        assert tracer.completed_count == 1

    def test_end_unknown_span_is_noop(self):
        tracer = Tracer(sample_every=1, clock=ManualClock())
        trace = tracer.start()
        assert trace.end("never-begun") is None

    def test_sampling_every_nth(self):
        tracer = Tracer(sample_every=4, clock=ManualClock())
        sampled = [tracer.start() is not None for _ in range(12)]
        assert sampled == [True, False, False, False] * 3

    def test_sample_every_zero_disables(self):
        tracer = Tracer(sample_every=0, clock=ManualClock())
        assert not tracer.enabled
        assert tracer.start() is None

    def test_ring_eviction(self):
        tracer = Tracer(capacity=8, sample_every=1, clock=ManualClock())
        ids = []
        for _ in range(20):
            trace = tracer.start()
            ids.append(trace.trace_id)
            trace.finish()
        assert tracer.completed_count == 8
        assert tracer.dropped_traces == 12
        kept = [t.trace_id for t in tracer.completed()]
        assert kept == ids[-8:]  # oldest evicted first
        assert tracer.get(ids[0]) is None

    def test_links_and_to_dict(self):
        tracer = Tracer(sample_every=1, clock=ManualClock())
        primary = tracer.start()
        follower = tracer.start()
        span = follower.span("dedup", start=0.0, end=0.0)
        span.add_link(trace_id=primary.trace_id, span="kernel")
        follower.finish()
        rendered = follower.to_dict()
        assert rendered["spans"][1]["links"] == [
            {"trace_id": primary.trace_id, "span": "kernel"}
        ]

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            Tracer(capacity=0)
        with pytest.raises(ConfigurationError):
            Tracer(sample_every=-1)


# --------------------------------------------------------------------- #
# Event log
# --------------------------------------------------------------------- #
class TestEventLog:
    def test_monotonic_sequence_and_filters(self):
        clock = ManualClock()
        log = EventLog(capacity=4, clock=clock)
        for index in range(6):
            clock.advance(1.0)
            log.emit("model_swap" if index % 2 else "evict", model=f"m{index}")
        # Ring keeps the newest 4, but sequence numbers are never reused.
        assert len(log) == 4
        assert log.total_emitted == 6
        seqs = [event.seq for event in log.events()]
        assert seqs == [2, 3, 4, 5]
        assert [e.kind for e in log.events(kind="evict")] == ["evict", "evict"]
        assert [e.seq for e in log.events(since_seq=3)] == [4, 5]
        assert log.last_seq == 5

    def test_empty_log(self):
        log = EventLog(clock=ManualClock())
        assert log.events() == ()
        assert log.last_seq == -1


# --------------------------------------------------------------------- #
# Exporters
# --------------------------------------------------------------------- #
def _populated_registry() -> MetricRegistry:
    registry = MetricRegistry()
    registry.counter("serve_requests_total", help="Requests accepted").inc(7)
    registry.gauge("serve_pending_requests", fn=lambda: 2.0)
    registry.gauge(
        "serve_shard_queue_depth", labels={"shard": 'm/"0"\\x'}, help="depth"
    ).set(3)
    hist = registry.histogram("serve_request_latency_seconds", buckets=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.002, 0.05, 5.0):
        hist.observe(value)
    return registry


class TestJsonlExporter:
    def test_round_trip_with_incremental_events(self, tmp_path):
        registry = _populated_registry()
        clock = ManualClock()
        events = EventLog(clock=clock)
        events.emit("model_swap", model="m")
        path = tmp_path / "metrics.jsonl"
        exporter = JsonlExporter(path, clock=clock)

        exporter.export(registry, events=events)
        events.emit("evict", model="m")
        exporter.export(registry, events=events, extra={"phase": "after"})

        records = read_jsonl(path)
        assert len(records) == 2
        assert records[0]["metrics"]["serve_requests_total"] == 7.0
        hist = records[0]["metrics"]["serve_request_latency_seconds"]
        assert hist["count"] == 4 and hist["buckets"]["+Inf"] == 4
        assert hist["p50"] <= hist["p99"] <= hist["p999"]
        # Events ship incrementally: the second record only has the evict.
        assert [e["kind"] for e in records[0]["events"]] == ["model_swap"]
        assert [e["kind"] for e in records[1]["events"]] == ["evict"]
        assert records[1]["phase"] == "after"

    def test_read_jsonl_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"metrics": {}}\n')
        with pytest.raises(DataError):
            read_jsonl(path)
        path.write_text("not json\n")
        with pytest.raises(DataError):
            read_jsonl(path)


class TestPrometheus:
    def test_render_parse_round_trip(self):
        registry = _populated_registry()
        text = render_prometheus(registry)
        assert "# TYPE serve_requests_total counter" in text
        assert "# HELP serve_requests_total Requests accepted" in text
        samples = parse_prometheus(text)
        assert samples[("serve_requests_total", ())] == 7.0
        assert samples[("serve_pending_requests", ())] == 2.0
        # Label values survive escaping round trip.
        assert samples[("serve_shard_queue_depth", (("shard", 'm/"0"\\x'),))] == 3.0
        # Histogram series: cumulative buckets, +Inf, sum and count.
        assert samples[
            ("serve_request_latency_seconds_bucket", (("le", "0.001"),))
        ] == 1.0
        assert samples[
            ("serve_request_latency_seconds_bucket", (("le", "+Inf"),))
        ] == 4.0
        assert samples[("serve_request_latency_seconds_count", ())] == 4.0
        assert samples[("serve_request_latency_seconds_sum", ())] == pytest.approx(
            5.0525
        )

    def test_metrics_record_keys(self):
        record = metrics_record(_populated_registry())
        assert 'serve_shard_queue_depth{shard=m/"0"\\x}' in record

    def test_write_prometheus_to_path_and_handle(self, tmp_path):
        registry = _populated_registry()
        path = tmp_path / "metrics.prom"
        write_prometheus(registry, path)
        assert parse_prometheus(path.read_text())[("serve_requests_total", ())] == 7.0

    def test_parse_rejects_garbage(self):
        with pytest.raises(DataError):
            parse_prometheus("metric_without_value\n")
        with pytest.raises(DataError):
            parse_prometheus('metric{unterminated 1.0\n')
        with pytest.raises(DataError):
            parse_prometheus("metric nan-ish\n")


# --------------------------------------------------------------------- #
# Observability bundle
# --------------------------------------------------------------------- #
class TestObservability:
    def test_bundle_shares_clock_and_renders(self):
        clock = ManualClock()
        obs = Observability(sample_every=1, clock=clock)
        obs.registry.counter("x_total").inc()
        trace = obs.tracer.start()
        trace.finish()
        obs.events.emit("shed", model="m")
        assert obs.trace(trace.trace_id) is trace
        assert obs.trace(None) is None
        assert parse_prometheus(obs.render_prometheus())[("x_total", ())] == 1.0
        assert obs.metrics_record()["x_total"] == 1.0

    def test_disabled_keeps_metrics_and_events(self):
        obs = Observability.disabled(clock=ManualClock())
        assert obs.tracer.start() is None
        obs.registry.counter("x_total").inc()
        obs.events.emit("evict", model="m")
        assert len(obs.events) == 1


class TestWindowedDeltas:
    """The loadgen aggregation primitive: consecutive-snapshot diffs."""

    def _registry_snapshots(self):
        registry = MetricRegistry()
        counter = registry.counter("serve_requests_total")
        gauge = registry.gauge("serve_pending_requests")
        histogram = registry.histogram("serve_request_latency_seconds")
        counter.inc(10)
        gauge.set(4)
        histogram.observe(0.001)
        histogram.observe(0.002)
        first = metrics_record(registry)
        counter.inc(25)
        gauge.set(9)
        for _ in range(100):
            histogram.observe(0.004)
        second = metrics_record(registry)
        return registry, first, second

    def test_counters_diff_gauges_carry_latest(self):
        _, first, second = self._registry_snapshots()
        (delta,) = windowed_deltas([first, second])
        assert delta["serve_requests_total"] == 25
        assert delta["serve_pending_requests"] == 9  # gauge: level, not diff

    def test_histogram_window_quantile_ignores_history(self):
        # The first window holds only 1-2ms samples; the second window's
        # 100 samples all land at 4ms.  A lifetime p50 would mix them;
        # the windowed p50 must reflect only the second window.
        _, first, second = self._registry_snapshots()
        (delta,) = windowed_deltas([first, second])
        latency = delta["serve_request_latency_seconds"]
        assert latency["count"] == 100
        assert latency["sum"] == pytest.approx(0.4, rel=1e-6)
        assert 0.003 < latency["p50"] <= 0.0045
        assert 0.003 < latency["p99"] <= 0.0045
        bucket_total = latency["buckets"]["+Inf"]
        assert bucket_total == 100

    def test_window_quantile_matches_fresh_histogram(self):
        # Windowed quantiles over deltas must agree with a histogram that
        # only ever saw the window's samples (same interpolation rule).
        registry = MetricRegistry()
        histogram = registry.histogram("serve_request_latency_seconds")
        first = metrics_record(registry)
        samples = [0.0001, 0.0005, 0.002, 0.002, 0.03, 0.5]
        for sample in samples:
            histogram.observe(sample)
        second = metrics_record(registry)
        (delta,) = windowed_deltas([first, second])
        fresh = Histogram("fresh_seconds", ())
        for sample in samples:
            fresh.observe(sample)
        windowed = delta["serve_request_latency_seconds"]
        assert windowed["p50"] == pytest.approx(fresh.quantile(0.50))
        assert windowed["p99"] == pytest.approx(fresh.quantile(0.99))
        assert windowed["p999"] == pytest.approx(fresh.quantile(0.999))

    def test_accepts_full_jsonl_records(self, tmp_path):
        registry, _, _ = self._registry_snapshots()
        exporter = JsonlExporter(tmp_path / "metrics.jsonl")
        exporter.export(registry)
        registry.counter("serve_requests_total").inc(7)
        exporter.export(registry)
        records = read_jsonl(tmp_path / "metrics.jsonl")
        (delta,) = windowed_deltas(records)
        assert delta["serve_requests_total"] == 7

    def test_series_absent_from_first_snapshot_counts_from_zero(self):
        registry = MetricRegistry()
        first = metrics_record(registry)
        registry.counter("serve_model_swaps_total").inc(3)
        second = metrics_record(registry)
        (delta,) = windowed_deltas([first, second])
        assert delta["serve_model_swaps_total"] == 3

    def test_labelled_counters_keep_their_keys(self):
        registry = MetricRegistry()
        registry.counter("serve_requests_total", labels={"model": "a"}).inc(2)
        first = metrics_record(registry)
        registry.counter("serve_requests_total", labels={"model": "a"}).inc(5)
        second = metrics_record(registry)
        (delta,) = windowed_deltas([first, second])
        assert delta["serve_requests_total{model=a}"] == 5

    def test_needs_two_snapshots(self):
        with pytest.raises(DataError):
            windowed_deltas([{"metrics": {}}])

    def test_rejects_non_dict_snapshots(self):
        with pytest.raises(DataError):
            windowed_deltas([{"metrics": {}}, "not-a-dict"])
