"""Tests of the integrated FPGA design, resources, throughput and equivalence."""

import numpy as np
import pytest

from repro.core import BinarySom, NodeLabeller, SomClassifier
from repro.core.bsom import BsomUpdateRule
from repro.errors import ConfigurationError, DeviceCapacityError, HardwareModelError
from repro.hw import (
    FpgaBsomConfig,
    FpgaBsomDesign,
    PAPER_TABLE4,
    ThroughputModel,
    VIRTEX4_XC4VLX160,
    estimate_resources,
)
from repro.hw.device import VIRTEX4_XC4VLX25
from repro.hw.throughput import CAMERA_FPS, PAPER_PATTERNS_PER_SECOND, paper_throughput_report


@pytest.fixture()
def small_design():
    design = FpgaBsomDesign(FpgaBsomConfig(n_neurons=8, n_bits=64, image_shape=(8, 8), seed=1))
    design.initialise()
    return design


class TestDesignLifecycle:
    def test_specification_matches_table3(self):
        design = FpgaBsomDesign(FpgaBsomConfig(seed=0))
        spec = design.specification()
        assert spec["network_size"] == "40 neurons"
        assert spec["input_vectors"] == "768 bits"
        assert spec["neuron_vectors"] == "768 bits"
        assert spec["initial_weights"] == "Random"
        assert spec["maximum_neighbourhood"] == "4 neurons"
        assert spec["clock_mhz"] == 40.0

    def test_initialisation_cycles(self):
        design = FpgaBsomDesign(FpgaBsomConfig(seed=0))
        assert design.initialise() == 768
        assert design.clock.cycles == 768
        assert design.initialised

    def test_queries_require_initialisation(self):
        design = FpgaBsomDesign(FpgaBsomConfig(n_neurons=4, n_bits=16, image_shape=(4, 4)))
        with pytest.raises(HardwareModelError):
            design.present(np.zeros(16, dtype=np.uint8))
        with pytest.raises(HardwareModelError):
            design.export_weights()

    def test_recognition_trace_cycle_breakdown(self, small_design, rng):
        x = rng.integers(0, 2, 64).astype(np.uint8)
        trace = small_design.present(x)
        assert trace.input_cycles == 64
        assert trace.hamming_cycles == 64
        assert trace.wta_cycles == small_design.wta.cycles_required
        assert trace.update_cycles == 0
        assert trace.total_cycles == 64 + 64 + small_design.wta.cycles_required
        assert trace.elapsed_seconds == pytest.approx(trace.total_cycles / 40e6)

    def test_paper_cycle_counts_for_reference_design(self, rng):
        design = FpgaBsomDesign(FpgaBsomConfig(seed=0))
        design.initialise()
        x = rng.integers(0, 2, 768).astype(np.uint8)
        recognition = design.present(x)
        assert recognition.hamming_cycles == 768
        assert recognition.wta_cycles == 7
        training = design.train_pattern(x, 0, 100)
        assert training.update_cycles == 768
        assert training.total_cycles == 768 + 768 + 7 + 768

    def test_train_accumulates_patterns(self, small_design, rng):
        X = rng.integers(0, 2, size=(20, 64)).astype(np.uint8)
        cycles = small_design.train(X, epochs=2, seed=0)
        assert small_design.patterns_trained == 40
        assert cycles == small_design.clock.cycles - 64  # minus initialisation

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FpgaBsomConfig(n_neurons=0)
        with pytest.raises(ConfigurationError):
            FpgaBsomConfig(n_bits=100, image_shape=(8, 8))
        design = FpgaBsomDesign(FpgaBsomConfig(n_neurons=4, n_bits=16, image_shape=(4, 4)))
        with pytest.raises(ConfigurationError):
            design.train(np.zeros((2, 8), dtype=np.uint8), epochs=1)

    def test_render_display(self, small_design):
        frame = small_design.render_display()
        assert frame.ndim == 2
        assert set(np.unique(frame)).issubset({0, 128, 255})


class TestSoftwareEquivalence:
    def test_recognition_matches_software_exactly(self, rng):
        """With identical weights, hardware and software agree on every distance."""
        software = BinarySom(16, 128, seed=5)
        X = rng.integers(0, 2, size=(40, 128)).astype(np.uint8)
        software.fit(X, epochs=3, seed=7)

        design = FpgaBsomDesign(
            FpgaBsomConfig(n_neurons=16, n_bits=128, image_shape=(8, 16), seed=5)
        )
        design.load_weights(software)
        for x in X[:10]:
            assert np.array_equal(design.distances(x), software.distances(x))
            assert design.winner(x) == software.winner(x)

    def test_bit_serial_mode_equivalence(self, rng):
        software = BinarySom(8, 64, seed=2)
        design = FpgaBsomDesign(
            FpgaBsomConfig(n_neurons=8, n_bits=64, image_shape=(8, 8), seed=2, bit_serial=True)
        )
        design.load_weights(software)
        x = rng.integers(0, 2, 64).astype(np.uint8)
        assert np.array_equal(design.distances(x), software.distances(x))

    def test_training_matches_software_with_full_rule(self, rng):
        """Deterministic (full) neighbour rule: hardware training == software training."""
        rule = BsomUpdateRule(neighbour_rule="full")
        software = BinarySom(8, 64, seed=3, update_rule=rule)
        design = FpgaBsomDesign(
            FpgaBsomConfig(n_neurons=8, n_bits=64, image_shape=(8, 8), seed=3, update_rule=rule)
        )
        design.load_weights(software)  # same starting weights
        X = rng.integers(0, 2, size=(30, 64)).astype(np.uint8)
        for i, x in enumerate(X):
            software.partial_fit(x, 0, 1)
            design.train_pattern(x, 0, 1)
        assert design.export_weights() == software.weights

    def test_roundtrip_to_software(self, small_design):
        software = small_design.to_software()
        assert software.weights == small_design.export_weights()

    def test_node_labelling_works_on_hardware_model(self, cluster_data):
        X, y = cluster_data
        design = FpgaBsomDesign(
            FpgaBsomConfig(n_neurons=16, n_bits=128, image_shape=(8, 16), seed=1)
        )
        design.initialise()
        design.train(X, epochs=3, seed=2)
        labelling = NodeLabeller().label(design, X, y)
        predictions = labelling.node_labels[design.winners(X)]
        assert (predictions == y).mean() > 0.7

    def test_classifier_on_exported_weights(self, cluster_data):
        """The paper's deployment flow: train on hardware, classify via labels."""
        X, y = cluster_data
        design = FpgaBsomDesign(
            FpgaBsomConfig(n_neurons=16, n_bits=128, image_shape=(8, 16), seed=1)
        )
        design.initialise()
        design.train(X, epochs=3, seed=2)
        classifier = SomClassifier(design.to_software())
        classifier.label_nodes(X, y)
        assert classifier.score(X, y) > 0.7

    def test_load_weights_shape_check(self, small_design):
        with pytest.raises(ConfigurationError):
            small_design.load_weights(BinarySom(4, 64, seed=0))


class TestResources:
    def test_reference_design_close_to_table4(self):
        report = estimate_resources()
        utilisation = report.utilisation()
        for resource, paper_row in PAPER_TABLE4.items():
            estimated = utilisation[resource]["used"]
            expected = paper_row["used"]
            assert estimated == pytest.approx(expected, rel=0.10), resource
            assert utilisation[resource]["total"] == paper_row["total"]

    def test_iob_count_exact(self):
        report = estimate_resources()
        assert report.total.bonded_iobs == PAPER_TABLE4["bonded_iobs"]["used"]

    def test_design_fits_reference_device(self):
        report = estimate_resources()
        assert report.fits()
        report.check_fits()

    def test_resources_scale_with_neurons(self):
        small = estimate_resources(FpgaBsomConfig(n_neurons=10)).total
        large = estimate_resources(FpgaBsomConfig(n_neurons=100)).total
        assert large.luts > small.luts
        assert large.flip_flops > small.flip_flops
        assert large.ram16s >= small.ram16s

    def test_resources_scale_with_bits(self):
        small = estimate_resources(FpgaBsomConfig(n_bits=192, image_shape=(12, 16))).total
        large = estimate_resources(FpgaBsomConfig(n_bits=1536, image_shape=(32, 48))).total
        assert large.flip_flops > small.flip_flops
        assert large.ram16s > small.ram16s

    def test_too_small_device_rejects_design(self):
        report = estimate_resources(device=VIRTEX4_XC4VLX25)
        assert not report.fits()
        with pytest.raises(DeviceCapacityError):
            report.check_fits()

    def test_per_block_breakdown_present(self):
        report = estimate_resources()
        assert {"hamming_unit", "winner_take_all", "weight_storage"} <= set(report.per_block)


class TestThroughput:
    def test_paper_training_throughput(self):
        report = paper_throughput_report()
        # The paper claims up to 25,000 patterns/second at 40 MHz.
        assert report.training_patterns_per_second >= PAPER_PATTERNS_PER_SECOND
        assert report.training_patterns_per_second == pytest.approx(
            PAPER_PATTERNS_PER_SECOND, rel=0.08
        )

    def test_recognition_outpaces_camera(self):
        report = paper_throughput_report()
        assert report.realtime_margin > 100  # far above 30 fps
        assert report.recognitions_per_second > CAMERA_FPS

    def test_training_set_fits_in_under_a_second(self):
        report = paper_throughput_report()
        # "training with several thousand patterns in less than a second"
        assert report.seconds_to_train[2_248] < 1.0
        assert report.seconds_to_train[25_000] <= 1.05

    def test_cycle_breakdown(self):
        model = ThroughputModel()
        assert model.cycles_per_recognition() == 768 + 768 + 7
        assert model.cycles_per_training_pattern() == 768 + 768 + 7 + 768
        assert model.cycles_per_pattern_pipelined() == 768 + 7

    def test_initialisation_time(self):
        report = paper_throughput_report()
        assert report.initialisation_seconds == pytest.approx(768 / 40e6)

    def test_throughput_scales_with_clock(self):
        slow = ThroughputModel(FpgaBsomConfig(clock_mhz=20.0)).report()
        fast = ThroughputModel(FpgaBsomConfig(clock_mhz=40.0)).report()
        assert fast.training_patterns_per_second == pytest.approx(
            2 * slow.training_patterns_per_second
        )

    def test_consistency_with_cycle_accurate_simulation(self, rng):
        """The analytic model and the simulated design agree on per-pattern cycles."""
        design = FpgaBsomDesign(FpgaBsomConfig(seed=0))
        design.initialise()
        x = rng.integers(0, 2, 768).astype(np.uint8)
        trace = design.train_pattern(x, 0, 10)
        assert trace.total_cycles == ThroughputModel().cycles_per_training_pattern()
