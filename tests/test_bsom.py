"""Unit tests for the tri-state binary SOM."""

import numpy as np
import pytest

from repro.core.bsom import BinarySom, BsomUpdateRule
from repro.core.topology import ConstantNeighbourhoodSchedule, RingTopology
from repro.core.tristate import DONT_CARE, TriStateWeights
from repro.errors import ConfigurationError, DataError, DimensionMismatchError


@pytest.fixture()
def small_bsom():
    return BinarySom(n_neurons=8, n_bits=32, seed=0)


class TestConstruction:
    def test_initial_weights_are_binary(self, small_bsom):
        assert small_bsom.weights.dont_care_fraction() == 0.0

    def test_dont_care_initialisation(self):
        som = BinarySom(8, 64, dont_care_probability=0.5, seed=1)
        assert 0.3 < som.weights.dont_care_fraction() < 0.7

    def test_seed_reproducibility(self):
        a = BinarySom(8, 32, seed=5)
        b = BinarySom(8, 32, seed=5)
        assert a.weights == b.weights

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            BinarySom(0, 32)
        with pytest.raises(ConfigurationError):
            BinarySom(8, 0)

    def test_topology_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            BinarySom(8, 32, topology=RingTopology(10))

    def test_invalid_update_rule(self):
        with pytest.raises(ConfigurationError):
            BsomUpdateRule(winner_rule="bogus")
        with pytest.raises(ConfigurationError):
            BsomUpdateRule(neighbour_rule="bogus")
        with pytest.raises(ConfigurationError):
            BsomUpdateRule(neighbour_strength=0.0)


class TestQueries:
    def test_distances_shape(self, small_bsom, rng):
        x = rng.integers(0, 2, 32)
        assert small_bsom.distances(x).shape == (8,)

    def test_winner_is_argmin(self, small_bsom, rng):
        x = rng.integers(0, 2, 32)
        distances = small_bsom.distances(x)
        assert small_bsom.winner(x) == int(np.argmin(distances))

    def test_winner_tie_break_prefers_lower_index(self):
        som = BinarySom(3, 4, seed=0)
        weights = TriStateWeights(np.array(
            [[0, 0, 0, 0], [0, 0, 0, 0], [1, 1, 1, 1]], dtype=np.int8
        ))
        som.set_weights(weights)
        assert som.winner(np.array([0, 0, 0, 0])) == 0

    def test_input_validation(self, small_bsom):
        with pytest.raises(DimensionMismatchError):
            small_bsom.distances(np.zeros(16, dtype=np.int8))
        with pytest.raises(DataError):
            small_bsom.distances(np.full(32, 2))

    def test_distance_matrix_matches_distances(self, small_bsom, rng):
        X = rng.integers(0, 2, size=(10, 32))
        matrix = small_bsom.distance_matrix(X)
        for i, x in enumerate(X):
            assert matrix[i].tolist() == small_bsom.distances(x).tolist()

    def test_all_dont_care_neuron_wins_everything(self):
        som = BinarySom(2, 8, seed=0)
        values = np.ones((2, 8), dtype=np.int8)
        values[1, :] = DONT_CARE
        som.set_weights(TriStateWeights(values))
        x = np.zeros(8, dtype=np.int8)
        # The paper notes a neuron with all '#' has Hamming distance 0.
        assert som.distances(x)[1] == 0
        assert som.winner(x) == 1


class TestWeightManagement:
    def test_set_weights_roundtrip(self, small_bsom):
        weights = small_bsom.weights
        other = BinarySom(8, 32, seed=99)
        other.set_weights(weights)
        assert other.weights == weights

    def test_set_weights_shape_check(self, small_bsom):
        with pytest.raises(ConfigurationError):
            small_bsom.set_weights(np.zeros((4, 32), dtype=np.int8))


class TestTraining:
    def test_partial_fit_returns_winner(self, small_bsom, rng):
        x = rng.integers(0, 2, 32)
        winner = small_bsom.partial_fit(x, 0, 10)
        assert 0 <= winner < 8

    def test_winner_update_full_rule(self):
        """After a full-rule update the winner has no mismatching committed bits."""
        som = BinarySom(4, 16, seed=0)
        x = np.random.default_rng(1).integers(0, 2, 16).astype(np.int8)
        winner = som.partial_fit(x, 0, 10)
        row = som.weights.values[winner]
        committed = row != DONT_CARE
        assert np.all(row[committed] == x[committed])

    def test_winner_update_resolves_dont_cares(self):
        som = BinarySom(2, 8, seed=0, schedule=ConstantNeighbourhoodSchedule(0))
        values = np.full((2, 8), DONT_CARE, dtype=np.int8)
        values[1] = 1  # make neuron 0 the sure winner (distance 0)
        som.set_weights(TriStateWeights(values))
        x = np.array([0, 1, 0, 1, 0, 1, 0, 1], dtype=np.int8)
        som.partial_fit(x, 0, 10)
        assert som.weights.values[0].tolist() == x.tolist()

    def test_mismatches_become_dont_care(self):
        som = BinarySom(2, 4, seed=0, schedule=ConstantNeighbourhoodSchedule(0))
        values = np.array([[1, 1, 0, 0], [1, 1, 1, 1]], dtype=np.int8)
        som.set_weights(TriStateWeights(values))
        x = np.array([0, 1, 0, 0], dtype=np.int8)
        # Neuron 0 has distance 1, neuron 1 distance 3: neuron 0 wins.
        som.partial_fit(x, 0, 10)
        assert som.weights.values[0].tolist() == [DONT_CARE, 1, 0, 0]

    def test_commit_rule_never_erodes(self):
        rule = BsomUpdateRule(winner_rule="commit", neighbour_rule="commit")
        som = BinarySom(4, 32, seed=0, update_rule=rule)
        before = som.weights.dont_care_fraction()
        X = np.random.default_rng(2).integers(0, 2, size=(50, 32))
        som.fit(X, epochs=2, seed=3)
        assert som.weights.dont_care_fraction() <= before

    def test_fit_validates_epochs(self, small_bsom, rng):
        X = rng.integers(0, 2, size=(10, 32))
        with pytest.raises(ConfigurationError):
            small_bsom.fit(X, epochs=0)

    def test_fit_validates_data(self, small_bsom):
        with pytest.raises(DataError):
            small_bsom.fit(np.full((4, 32), 3), epochs=1)

    def test_fit_records_history(self, rng):
        som = BinarySom(8, 32, seed=0)
        X = rng.integers(0, 2, size=(30, 32))
        som.fit(X, epochs=3, seed=1, record_history=True)
        assert som.history.epochs == 3
        assert len(som.history.neighbourhood_radii) == 3
        assert som.trained_epochs == 3

    def test_training_reduces_quantisation_error(self, cluster_data):
        X, _ = cluster_data
        som = BinarySom(16, X.shape[1], seed=0)
        before = som.quantisation_error(X)
        som.fit(X, epochs=5, seed=1)
        after = som.quantisation_error(X)
        assert after < before

    def test_training_is_reproducible(self, cluster_data):
        X, _ = cluster_data
        a = BinarySom(8, X.shape[1], seed=4).fit(X, epochs=3, seed=9)
        b = BinarySom(8, X.shape[1], seed=4).fit(X, epochs=3, seed=9)
        assert a.weights == b.weights

    def test_neuron_usage_sums_to_samples(self, cluster_data):
        X, _ = cluster_data
        som = BinarySom(8, X.shape[1], seed=0).fit(X, epochs=2, seed=1)
        assert som.neuron_usage(X).sum() == X.shape[0]

    def test_stochastic_neighbour_rule_spreads_usage(self, cluster_data):
        """The default rule must not collapse onto a single winning neuron."""
        X, _ = cluster_data
        som = BinarySom(16, X.shape[1], seed=0).fit(X, epochs=5, seed=1)
        assert (som.neuron_usage(X) > 0).sum() >= 5
