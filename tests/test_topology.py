"""Unit tests for neuron topologies and neighbourhood schedules."""

import numpy as np
import pytest

from repro.core.topology import (
    ConstantNeighbourhoodSchedule,
    Grid2DTopology,
    LinearTopology,
    RingTopology,
    StepwiseNeighbourhoodSchedule,
)
from repro.errors import ConfigurationError


class TestLinearTopology:
    def test_distance_is_absolute_difference(self):
        topo = LinearTopology(10)
        assert topo.grid_distance(2, 7) == 5
        assert topo.grid_distance(7, 2) == 5

    def test_neighbourhood_includes_winner(self):
        topo = LinearTopology(10)
        assert 4 in topo.neighbourhood(4, 0).tolist()

    def test_neighbourhood_clipped_at_edges(self):
        topo = LinearTopology(10)
        assert topo.neighbourhood(0, 2).tolist() == [0, 1, 2]
        assert topo.neighbourhood(9, 2).tolist() == [7, 8, 9]

    def test_neighbourhood_interior(self):
        topo = LinearTopology(10)
        assert topo.neighbourhood(5, 2).tolist() == [3, 4, 5, 6, 7]

    def test_paper_window_size(self):
        # 40 neurons with radius 4: the interior window has 9 members.
        topo = LinearTopology(40)
        assert topo.neighbourhood(20, 4).size == 9

    def test_invalid_index(self):
        with pytest.raises(ConfigurationError):
            LinearTopology(5).grid_distance(0, 5)

    def test_negative_radius(self):
        with pytest.raises(ConfigurationError):
            LinearTopology(5).neighbourhood(0, -1)


class TestRingTopology:
    def test_wraps_around(self):
        topo = RingTopology(10)
        assert topo.grid_distance(0, 9) == 1
        assert topo.grid_distance(1, 8) == 3

    def test_neighbourhood_wraps(self):
        topo = RingTopology(6)
        assert topo.neighbourhood(0, 1).tolist() == [0, 1, 5]


class TestGrid2DTopology:
    def test_total_neurons(self):
        topo = Grid2DTopology(4, 5)
        assert topo.n_neurons == 20

    def test_chebyshev_distance(self):
        topo = Grid2DTopology(4, 4)
        assert topo.grid_distance(0, 5) == 1  # diagonal neighbour
        assert topo.grid_distance(0, 15) == 3

    def test_coordinates_row_major(self):
        topo = Grid2DTopology(3, 4)
        assert topo.coordinates(7) == (1, 3)

    def test_invalid_shape(self):
        with pytest.raises(ConfigurationError):
            Grid2DTopology(0, 5)

    def test_distance_matrix_symmetric(self):
        topo = Grid2DTopology(3, 3)
        matrix = topo.distance_matrix()
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)


class TestStepwiseSchedule:
    def test_paper_example_100_iterations(self):
        """Section V-D: with 100 iterations the radius is 4/3/2/1 by quarter."""
        schedule = StepwiseNeighbourhoodSchedule(max_radius=4)
        assert schedule.radius(0, 100) == 4
        assert schedule.radius(24, 100) == 4
        assert schedule.radius(25, 100) == 3
        assert schedule.radius(49, 100) == 3
        assert schedule.radius(50, 100) == 2
        assert schedule.radius(74, 100) == 2
        assert schedule.radius(75, 100) == 1
        assert schedule.radius(99, 100) == 1

    def test_never_below_min_radius(self):
        schedule = StepwiseNeighbourhoodSchedule(max_radius=4, min_radius=2)
        radii = {schedule.radius(i, 100) for i in range(100)}
        assert min(radii) == 2
        assert max(radii) == 4

    def test_monotonically_non_increasing(self):
        schedule = StepwiseNeighbourhoodSchedule(max_radius=4)
        for total in (7, 10, 40, 100, 500):
            radii = [schedule.radius(i, total) for i in range(total)]
            assert all(a >= b for a, b in zip(radii, radii[1:]))

    def test_short_runs_still_valid(self):
        schedule = StepwiseNeighbourhoodSchedule(max_radius=4)
        assert schedule.radius(0, 1) == 4
        assert schedule.radius(1, 2) in (1, 2, 3, 4)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            StepwiseNeighbourhoodSchedule(max_radius=2, min_radius=3)
        with pytest.raises(ConfigurationError):
            StepwiseNeighbourhoodSchedule(max_radius=-1)

    def test_iteration_out_of_range(self):
        schedule = StepwiseNeighbourhoodSchedule()
        with pytest.raises(ConfigurationError):
            schedule.radius(10, 10)
        with pytest.raises(ConfigurationError):
            schedule.radius(0, 0)


class TestConstantSchedule:
    def test_constant_radius(self):
        schedule = ConstantNeighbourhoodSchedule(radius=2)
        assert {schedule.radius(i, 50) for i in range(50)} == {2}

    def test_negative_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantNeighbourhoodSchedule(radius=-1)
