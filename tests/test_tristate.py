"""Unit tests for the tri-state weight representation."""

import numpy as np
import pytest

from repro.core.tristate import (
    DONT_CARE,
    TriStateWeights,
    random_tristate,
    tristate_from_binary,
)
from repro.errors import ConfigurationError, DataError


class TestTriStateWeights:
    def test_promotes_vector_to_matrix(self):
        weights = TriStateWeights(np.array([0, 1, DONT_CARE], dtype=np.int8))
        assert weights.n_neurons == 1
        assert weights.n_bits == 3

    def test_rejects_invalid_states(self):
        with pytest.raises(DataError):
            TriStateWeights(np.array([[0, 1, 3]], dtype=np.int8))

    def test_rejects_empty_rows(self):
        with pytest.raises(DataError):
            TriStateWeights(np.zeros((2, 0), dtype=np.int8))

    def test_rejects_three_dimensional_input(self):
        with pytest.raises(DataError):
            TriStateWeights(np.zeros((2, 2, 2), dtype=np.int8))

    def test_dont_care_counts(self):
        weights = TriStateWeights(
            np.array([[0, DONT_CARE, 1], [DONT_CARE, DONT_CARE, 0]], dtype=np.int8)
        )
        assert weights.dont_care_counts().tolist() == [1, 2]
        assert weights.dont_care_fraction() == pytest.approx(3 / 6)

    def test_committed_bits_mask(self):
        weights = TriStateWeights(np.array([[0, DONT_CARE, 1]], dtype=np.int8))
        assert weights.committed_bits().tolist() == [[True, False, True]]

    def test_copy_is_independent(self):
        weights = TriStateWeights(np.zeros((2, 4), dtype=np.int8))
        clone = weights.copy()
        clone.values[0, 0] = 1
        assert weights.values[0, 0] == 0

    def test_equality(self):
        a = TriStateWeights(np.array([[0, 1, DONT_CARE]], dtype=np.int8))
        b = TriStateWeights(np.array([[0, 1, DONT_CARE]], dtype=np.int8))
        c = TriStateWeights(np.array([[1, 1, DONT_CARE]], dtype=np.int8))
        assert a == b
        assert a != c

    def test_bitplane_roundtrip(self):
        original = random_tristate(6, 32, dont_care_probability=0.3, seed=3)
        value, care = original.to_bitplanes()
        rebuilt = TriStateWeights.from_bitplanes(value, care)
        assert rebuilt == original

    def test_bitplanes_are_binary(self):
        weights = random_tristate(4, 16, dont_care_probability=0.5, seed=1)
        value, care = weights.to_bitplanes()
        assert set(np.unique(value)).issubset({0, 1})
        assert set(np.unique(care)).issubset({0, 1})
        # Value plane is forced to zero wherever the care bit is clear.
        assert np.all(value[care == 0] == 0)

    def test_from_bitplanes_shape_mismatch(self):
        with pytest.raises(DataError):
            TriStateWeights.from_bitplanes(np.zeros((2, 4)), np.zeros((2, 5)))

    def test_from_bitplanes_rejects_non_binary(self):
        with pytest.raises(DataError):
            TriStateWeights.from_bitplanes(np.full((1, 4), 2), np.ones((1, 4)))

    def test_string_roundtrip(self):
        weights = TriStateWeights.from_strings(["01#", "#10"])
        assert weights.to_strings() == ["01#", "#10"]

    def test_from_strings_requires_equal_lengths(self):
        with pytest.raises(DataError):
            TriStateWeights.from_strings(["01", "011"])

    def test_from_strings_requires_content(self):
        with pytest.raises(DataError):
            TriStateWeights.from_strings([])


class TestRandomTriState:
    def test_shape_and_values(self):
        weights = random_tristate(5, 20, seed=0)
        assert weights.values.shape == (5, 20)
        assert set(np.unique(weights.values)).issubset({0, 1})

    def test_dont_care_probability_zero_gives_binary(self):
        weights = random_tristate(10, 100, dont_care_probability=0.0, seed=0)
        assert weights.dont_care_fraction() == 0.0

    def test_dont_care_probability_one_gives_all_wildcards(self):
        weights = random_tristate(3, 50, dont_care_probability=1.0, seed=0)
        assert weights.dont_care_fraction() == 1.0

    def test_seed_reproducibility(self):
        a = random_tristate(4, 64, seed=7)
        b = random_tristate(4, 64, seed=7)
        assert a == b

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            random_tristate(0, 10)
        with pytest.raises(ConfigurationError):
            random_tristate(10, 0)
        with pytest.raises(ConfigurationError):
            random_tristate(1, 1, dont_care_probability=1.5)


class TestTriStateFromBinary:
    def test_accepts_binary(self):
        weights = tristate_from_binary(np.array([[0, 1], [1, 0]]))
        assert weights.dont_care_fraction() == 0.0

    def test_rejects_non_binary(self):
        with pytest.raises(DataError):
            tristate_from_binary(np.array([[0, 2]]))
