"""Tests of the end-to-end recognition pipeline and the on-line extension."""

import numpy as np
import pytest

from repro.core import BinarySom, SomClassifier, UNKNOWN_LABEL
from repro.datasets import make_signature_clusters
from repro.errors import ConfigurationError, NotFittedError
from repro.pipeline import (
    OnlineLearner,
    OnlineLearnerConfig,
    RecognitionSystem,
    RecognitionSystemConfig,
)
from repro.vision import ActorSpec, SceneConfig, SyntheticSurveillanceScene


def _two_actor_scene(seed=0):
    """A small scene with two strongly coloured actors always on screen."""
    actors = [
        ActorSpec(identity=0, torso_colour=(220, 30, 30), legs_colour=(40, 40, 60),
                  height=40, width=18, speed=1.5, entry_row=25, colour_jitter=3.0),
        ActorSpec(identity=1, torso_colour=(30, 60, 220), legs_colour=(90, 90, 100),
                  height=44, width=20, speed=-1.8, entry_row=30, colour_jitter=3.0),
    ]
    config = SceneConfig(
        height=96, width=128, lighting_amplitude=3.0, camera_jitter_pixels=0,
        pixel_noise_std=2.0, furniture_occluders=0, initial_pause_max_frames=0,
    )
    return SyntheticSurveillanceScene(actors=actors, config=config, seed=seed)


def _signatures_from_truth(scene, n_frames, bins=256):
    """Ground-truth signatures per identity, bypassing segmentation."""
    from repro.signatures import extract_signature

    signatures, labels = [], []
    for frame in scene.frames(n_frames):
        for identity, mask in frame.truth_masks.items():
            if mask.sum() < 100:
                continue
            signature = extract_signature(frame.image, mask, bins_per_channel=bins)
            signatures.append(signature.bits)
            labels.append(identity)
    return np.array(signatures, dtype=np.uint8), np.array(labels, dtype=np.int64)


class TestRecognitionSystem:
    @pytest.fixture(scope="class")
    def fitted_system(self):
        scene = _two_actor_scene(seed=1)
        X, y = _signatures_from_truth(scene, 60)
        classifier = SomClassifier(BinarySom(12, 768, seed=0)).fit(X, y, epochs=8, seed=1)
        system = RecognitionSystem(classifier, RecognitionSystemConfig(min_blob_area=120))
        # Prime the background with the clean plate (no people).
        test_scene = _two_actor_scene(seed=2)
        system.initialise_background(test_scene.background)
        return system, test_scene

    def test_requires_fitted_classifier(self):
        with pytest.raises(NotFittedError):
            RecognitionSystem(SomClassifier(BinarySom(4, 768, seed=0)))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RecognitionSystemConfig(vote_window=0)
        with pytest.raises(ConfigurationError):
            RecognitionSystemConfig(min_blob_area=-1)

    def test_segmentation_finds_moving_objects(self, fitted_system):
        system, scene = fitted_system
        found_any = False
        for frame in scene.frames(15):
            blobs = system.segment(frame.image)
            if blobs:
                found_any = True
                for blob in blobs:
                    assert blob.area >= 120
        assert found_any

    def test_process_frames_produces_consistent_tracks(self, fitted_system):
        system, scene = fitted_system
        observations = system.process_sequence(scene.frames(25, start=100))
        assert observations, "expected at least one identified object"
        track_ids = {obs.track_id for obs in observations}
        assert len(track_ids) >= 1
        identities = system.track_identities()
        assert set(identities) >= track_ids
        for obs in observations:
            assert len(obs.signature) == 768
        assert system.frames_processed == 25

    def test_track_identity_unknown_for_missing_track(self, fitted_system):
        system, _ = fitted_system
        assert system.track_identity(99_999) == UNKNOWN_LABEL

    def test_majority_vote_matches_ground_truth_for_clean_track(self):
        """Full pipeline accuracy on an easy two-person scene."""
        train_scene = _two_actor_scene(seed=5)
        X, y = _signatures_from_truth(train_scene, 80)
        classifier = SomClassifier(BinarySom(12, 768, seed=3)).fit(X, y, epochs=8, seed=4)
        system = RecognitionSystem(classifier, RecognitionSystemConfig(min_blob_area=120))

        eval_scene = _two_actor_scene(seed=6)
        system.initialise_background(eval_scene.background)
        frames = list(eval_scene.frames(30))
        observations = system.process_sequence(frames)
        assert observations
        # Compare each observation's label with the ground-truth identity whose
        # silhouette overlaps the detected blob the most.
        correct, total = 0, 0
        frame_by_index = {frame.index: frame for frame in frames}
        for obs in observations:
            frame = frame_by_index[obs.frame_index]
            overlaps = {
                identity: (mask & obs.blob.mask).sum()
                for identity, mask in frame.truth_masks.items()
            }
            if not overlaps:
                continue
            truth = max(overlaps, key=overlaps.get)
            if overlaps[truth] == 0:
                continue
            total += 1
            if obs.label == truth:
                correct += 1
        assert total > 0
        assert correct / total > 0.6


class TestOnlineLearner:
    @pytest.fixture()
    def learner_setup(self):
        # Four identities drawn from one model; the fourth is held out as the
        # "previously unseen" object the on-line loop must discover.
        X_all, y_all = make_signature_clusters(
            n_identities=4, samples_per_identity=60, n_bits=128, core_bits=24, seed=0
        )
        known = y_all < 3
        X, y = X_all[known], y_all[known]
        X_new = X_all[y_all == 3]
        classifier = SomClassifier(
            BinarySom(20, 128, seed=1), rejection_percentile=99.0, rejection_margin=1.1
        ).fit(X, y, epochs=6, seed=2)
        return classifier, X, y, X_new

    def test_known_objects_still_recognised(self, learner_setup):
        classifier, X, y, _ = learner_setup
        learner = OnlineLearner(classifier, X, y, OnlineLearnerConfig(min_signatures=10))
        decisions = [learner.observe(track_id=1, signature=x) for x in X[:20]]
        known = [d for d in decisions if d != UNKNOWN_LABEL]
        assert len(known) >= 15

    def test_novel_object_gets_new_label(self, learner_setup):
        classifier, X, y, X_new = learner_setup
        learner = OnlineLearner(
            classifier, X, y, OnlineLearnerConfig(min_signatures=12, online_epochs=2)
        )
        decisions = [learner.observe(track_id=7, signature=x) for x in X_new[:30]]
        new_labels = {d for d in decisions if d not in (UNKNOWN_LABEL, 0, 1, 2)}
        assert new_labels, "the unseen identity should eventually receive a new label"
        assert learner.updates
        report = learner.updates[0]
        assert report.new_label == 3
        assert report.signatures_used >= 12
        assert 3 in learner.known_labels.tolist()

    def test_new_object_recognised_after_update(self, learner_setup):
        classifier, X, y, X_new = learner_setup
        learner = OnlineLearner(
            classifier, X, y, OnlineLearnerConfig(min_signatures=12, online_epochs=2)
        )
        for x in X_new[:20]:
            learner.observe(track_id=3, signature=x)
        # After the on-line update, fresh signatures of the new object should
        # mostly be assigned its new label.
        post = [learner.observe(track_id=3, signature=x) for x in X_new[20:35]]
        new_label = learner.updates[0].new_label
        assert sum(1 for d in post if d == new_label) >= len(post) // 2

    def test_pending_counts(self, learner_setup):
        classifier, X, y, X_new = learner_setup
        learner = OnlineLearner(classifier, X, y, OnlineLearnerConfig(min_signatures=50))
        for x in X_new[:5]:
            learner.observe(track_id=2, signature=x)
        assert learner.pending_counts().get(2, 0) == 5

    def test_requires_fitted_classifier(self, learner_setup):
        _, X, y, _ = learner_setup
        with pytest.raises(NotFittedError):
            OnlineLearner(SomClassifier(BinarySom(4, 128, seed=0)), X, y)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            OnlineLearnerConfig(min_signatures=0)
        with pytest.raises(ConfigurationError):
            OnlineLearnerConfig(online_epochs=0)
