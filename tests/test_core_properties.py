"""Property-based tests (hypothesis) for the core data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bsom import BinarySom
from repro.core.distance import (
    batch_masked_hamming,
    hamming_distance,
    masked_hamming_distance,
)
from repro.core.topology import LinearTopology, RingTopology, StepwiseNeighbourhoodSchedule
from repro.core.tristate import DONT_CARE, TriStateWeights
from repro.eval.stats import _rank_with_ties


binary_vectors = arrays(np.int8, st.integers(4, 64), elements=st.integers(0, 1))
tristate_vectors = arrays(np.int8, st.integers(4, 64), elements=st.sampled_from([0, 1, DONT_CARE]))


@given(binary_vectors)
def test_hamming_distance_to_self_is_zero(x):
    assert hamming_distance(x, x) == 0


@given(st.data())
def test_hamming_distance_symmetry_and_bounds(data):
    n = data.draw(st.integers(4, 64))
    a = data.draw(arrays(np.int8, n, elements=st.integers(0, 1)))
    b = data.draw(arrays(np.int8, n, elements=st.integers(0, 1)))
    d = hamming_distance(a, b)
    assert d == hamming_distance(b, a)
    assert 0 <= d <= n
    assert d == int(np.abs(a.astype(int) - b.astype(int)).sum())


@given(st.data())
def test_triangle_inequality(data):
    n = data.draw(st.integers(4, 32))
    vectors = [data.draw(arrays(np.int8, n, elements=st.integers(0, 1))) for _ in range(3)]
    a, b, c = vectors
    assert hamming_distance(a, c) <= hamming_distance(a, b) + hamming_distance(b, c)


@given(st.data())
def test_masked_distance_never_exceeds_committed_bits(data):
    n = data.draw(st.integers(4, 64))
    weights = data.draw(arrays(np.int8, n, elements=st.sampled_from([0, 1, DONT_CARE])))
    x = data.draw(arrays(np.int8, n, elements=st.integers(0, 1)))
    distance = masked_hamming_distance(weights, x)
    committed = int(np.count_nonzero(weights != DONT_CARE))
    assert 0 <= distance <= committed


@given(st.data())
def test_masked_distance_monotone_in_wildcards(data):
    """Turning a committed bit into '#' can never increase the distance."""
    n = data.draw(st.integers(4, 32))
    weights = data.draw(arrays(np.int8, n, elements=st.integers(0, 1)))
    x = data.draw(arrays(np.int8, n, elements=st.integers(0, 1)))
    index = data.draw(st.integers(0, n - 1))
    before = masked_hamming_distance(weights, x)
    relaxed = weights.copy()
    relaxed[index] = DONT_CARE
    after = masked_hamming_distance(relaxed, x)
    assert after <= before


@given(st.data())
@settings(max_examples=25)
def test_batch_masked_matches_scalar(data):
    n_neurons = data.draw(st.integers(1, 8))
    n_bits = data.draw(st.integers(4, 32))
    weights = data.draw(
        arrays(np.int8, (n_neurons, n_bits), elements=st.sampled_from([0, 1, DONT_CARE]))
    )
    x = data.draw(arrays(np.int8, n_bits, elements=st.integers(0, 1)))
    batch = batch_masked_hamming(weights, x)
    assert batch.tolist() == [masked_hamming_distance(row, x) for row in weights]


@given(st.data())
@settings(max_examples=25)
def test_tristate_bitplane_roundtrip(data):
    n_neurons = data.draw(st.integers(1, 6))
    n_bits = data.draw(st.integers(1, 48))
    values = data.draw(
        arrays(np.int8, (n_neurons, n_bits), elements=st.sampled_from([0, 1, DONT_CARE]))
    )
    weights = TriStateWeights(values)
    assert TriStateWeights.from_bitplanes(*weights.to_bitplanes()) == weights


@given(st.data())
@settings(max_examples=25)
def test_tristate_string_roundtrip(data):
    n_neurons = data.draw(st.integers(1, 5))
    n_bits = data.draw(st.integers(1, 40))
    values = data.draw(
        arrays(np.int8, (n_neurons, n_bits), elements=st.sampled_from([0, 1, DONT_CARE]))
    )
    weights = TriStateWeights(values)
    assert TriStateWeights.from_strings(weights.to_strings()) == weights


@given(st.integers(2, 60), st.integers(0, 10))
def test_linear_neighbourhood_is_window(n_neurons, radius):
    topology = LinearTopology(n_neurons)
    winner = n_neurons // 2
    members = topology.neighbourhood(winner, radius)
    expected = [j for j in range(n_neurons) if abs(j - winner) <= radius]
    assert members.tolist() == expected


@given(st.integers(3, 40), st.integers(0, 8))
def test_ring_neighbourhood_size(n_neurons, radius):
    topology = RingTopology(n_neurons)
    members = topology.neighbourhood(0, radius)
    assert members.size == min(2 * radius + 1, n_neurons)


@given(st.integers(1, 500), st.integers(1, 6))
def test_stepwise_schedule_always_in_range(total, max_radius):
    schedule = StepwiseNeighbourhoodSchedule(max_radius=max_radius)
    radii = [schedule.radius(i, total) for i in range(total)]
    assert all(min(1, max_radius) <= r <= max_radius for r in radii)
    assert radii[0] == max_radius


@given(st.data())
@settings(max_examples=20, deadline=None)
def test_bsom_winner_committed_bits_match_input_after_update(data):
    """Invariant of the full rule: after a winner update every committed bit
    of the winner equals the corresponding input bit."""
    n_bits = data.draw(st.integers(8, 48))
    n_neurons = data.draw(st.integers(2, 8))
    som = BinarySom(n_neurons, n_bits, seed=data.draw(st.integers(0, 1000)))
    x = data.draw(arrays(np.int8, n_bits, elements=st.integers(0, 1)))
    winner = som.partial_fit(x, 0, 10)
    row = som.weights.values[winner]
    committed = row != DONT_CARE
    assert np.all(row[committed] == x[committed])


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1, max_size=30))
def test_rank_with_ties_properties(values):
    ranks = _rank_with_ties(np.array(values, dtype=np.float64))
    n = len(values)
    # Ranks always sum to n(n+1)/2 regardless of ties.
    assert float(ranks.sum()) == n * (n + 1) / 2
    assert ranks.min() >= 1.0
    assert ranks.max() <= n
