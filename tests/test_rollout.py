"""Guarded rollouts: versioned routing, shadow evaluation, rollback ring.

The contract under test, per pillar:

* routing -- seeded traffic splits are deterministic (the Kth resolve is a
  pure function of seed, name and K) and are dropped with the models they
  reference,
* shadow -- mirrored candidates never alter or delay what the primary
  serves, however badly they disagree,
* policy -- regressed candidates are demoted automatically, even mid-load,
  with every already-admitted future terminal; healthy candidates promote
  through the zero-drop swap,
* rollback -- promotion banks the replaced snapshot in a bounded ring, and
  a manual or breaker-triggered rollback restores it.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np
import pytest

from repro.core import BinarySom, ModelSnapshot, SomClassifier
from repro.core.snapshot import SnapshotLabelling
from repro.errors import ConfigurationError, DataError, UnknownModelError
from repro.serve import (
    PROMOTE_FAILURE,
    ROLLOUT_STAGE_CODES,
    FaultInjector,
    FaultSpec,
    ModelRegistry,
    RolloutConfig,
    RolloutManager,
    RolloutPolicy,
    ServiceConfig,
    ShadowStats,
    StreamingInferenceService,
)


def _fit(X, y, *, n_neurons=16, seed=1, epochs=6):
    return SomClassifier(BinarySom(n_neurons, X.shape[1], seed=seed)).fit(
        X, y, epochs=epochs, seed=seed
    )


def _snap(service, name):
    """The snapshot currently serving ``name``."""
    return ModelSnapshot.of(service.registry.classifier(name))


def _scrambled(snapshot: ModelSnapshot) -> ModelSnapshot:
    """A behaviourally regressed candidate: same map, labels rotated."""
    labelling = snapshot.labelling
    rotated = np.where(
        labelling.node_labels >= 0,
        (labelling.node_labels + 1) % max(int(labelling.labels.max()) + 1, 1),
        labelling.node_labels,
    )
    return dataclasses.replace(
        snapshot,
        labelling=SnapshotLabelling(
            node_labels=rotated,
            win_frequencies=labelling.win_frequencies,
            labels=labelling.labels,
        ),
    )


def _identical(snapshot: ModelSnapshot) -> ModelSnapshot:
    """A candidate that behaves exactly like the active version."""
    return dataclasses.replace(snapshot, metadata={"candidate": "twin"})


@pytest.fixture()
def service(cluster_data):
    X, y = cluster_data
    classifier = _fit(X, y)
    service = StreamingInferenceService(
        config=ServiceConfig(batch_size=8, max_delay_ms=2.0, cache_capacity=0)
    )
    service.register_model("hall", ModelSnapshot.of(classifier))
    service.start()
    yield service
    service.stop()


# --------------------------------------------------------------------- #
# Versioned routing
# --------------------------------------------------------------------- #
class TestTrafficRouting:
    def _registry(self, classifier, seed):
        registry = ModelRegistry()
        snapshot = ModelSnapshot.of(classifier)
        registry.register("hall", snapshot)
        registry.register("hall@v1", snapshot)
        registry.set_route("hall", {"hall": 0.8, "hall@v1": 0.2}, seed=seed)
        return registry

    def test_resolve_sequence_is_deterministic(self, trained_bsom_classifier):
        a = self._registry(trained_bsom_classifier, seed=7)
        b = self._registry(trained_bsom_classifier, seed=7)
        seq_a = [a.resolve("hall") for _ in range(500)]
        seq_b = [b.resolve("hall") for _ in range(500)]
        assert seq_a == seq_b

    def test_split_fraction_honours_weights(self, trained_bsom_classifier):
        registry = self._registry(trained_bsom_classifier, seed=3)
        draws = [registry.resolve("hall") for _ in range(2000)]
        fraction = draws.count("hall@v1") / len(draws)
        assert 0.15 < fraction < 0.25

    def test_different_seeds_differ(self, trained_bsom_classifier):
        a = self._registry(trained_bsom_classifier, seed=1)
        b = self._registry(trained_bsom_classifier, seed=2)
        assert [a.resolve("hall") for _ in range(200)] != [
            b.resolve("hall") for _ in range(200)
        ]

    def test_unrouted_names_pass_through(self, trained_bsom_classifier):
        registry = ModelRegistry()
        registry.register("hall", ModelSnapshot.of(trained_bsom_classifier))
        assert registry.resolve("hall") == "hall"
        assert registry.route("hall") is None

    def test_route_targets_must_be_registered(self, trained_bsom_classifier):
        registry = ModelRegistry()
        registry.register("hall", ModelSnapshot.of(trained_bsom_classifier))
        with pytest.raises(UnknownModelError):
            registry.set_route("hall", {"hall": 0.5, "ghost": 0.5})

    def test_clear_route_restores_direct_lookup(self, trained_bsom_classifier):
        registry = self._registry(trained_bsom_classifier, seed=0)
        assert registry.clear_route("hall") is True
        assert registry.clear_route("hall") is False
        assert all(registry.resolve("hall") == "hall" for _ in range(50))

    def test_evicting_a_target_drops_the_route(self, trained_bsom_classifier):
        registry = self._registry(trained_bsom_classifier, seed=0)
        registry.evict("hall@v1")
        assert registry.route("hall") is None
        assert registry.resolve("hall") == "hall"


# --------------------------------------------------------------------- #
# Policy decisions
# --------------------------------------------------------------------- #
class TestRolloutPolicy:
    def _stats(self, samples, agreements, shadow_seconds=0.0):
        return ShadowStats(
            samples=samples,
            agreements=agreements,
            disagreements=samples - agreements,
            shadow_seconds=shadow_seconds,
        )

    def test_holds_below_min_samples(self):
        policy = RolloutPolicy(min_samples=100)
        assert policy.decide(self._stats(99, 0)) == "hold"

    def test_promotes_on_agreement(self):
        policy = RolloutPolicy(min_samples=10, promote_agreement=0.9)
        assert policy.decide(self._stats(20, 19)) == "promote"

    def test_demotes_on_regression(self):
        policy = RolloutPolicy(
            min_samples=10, promote_agreement=0.95, demote_agreement=0.8
        )
        assert policy.decide(self._stats(20, 10)) == "demote"

    def test_inconclusive_candidate_fails_closed_at_max_samples(self):
        policy = RolloutPolicy(
            min_samples=10,
            promote_agreement=0.95,
            demote_agreement=0.5,
            max_samples=50,
        )
        assert policy.decide(self._stats(30, 25)) == "hold"
        assert policy.decide(self._stats(50, 42)) == "demote"

    def test_slow_candidate_is_held_not_promoted(self):
        policy = RolloutPolicy(
            min_samples=10, promote_agreement=0.9, max_shadow_latency_ms=1.0
        )
        slow = self._stats(20, 20, shadow_seconds=1.0)  # 50 ms / sample
        assert policy.decide(slow) == "hold"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RolloutPolicy(min_samples=0)
        with pytest.raises(ConfigurationError):
            RolloutPolicy(promote_agreement=1.5)
        with pytest.raises(ConfigurationError):
            RolloutPolicy(promote_agreement=0.8, demote_agreement=0.9)
        with pytest.raises(ConfigurationError):
            RolloutPolicy(min_samples=100, max_samples=50)
        with pytest.raises(ConfigurationError):
            RolloutConfig(canary_fraction=0.9)
        with pytest.raises(ConfigurationError):
            RolloutConfig(ring_size=0)


# --------------------------------------------------------------------- #
# Shadow evaluation never touches the primary
# --------------------------------------------------------------------- #
class TestShadowNonInterference:
    def test_primary_responses_unchanged_by_disagreeing_shadow(
        self, service, cluster_data
    ):
        X, y = cluster_data
        active = service.registry.classifier("hall")
        expected = active.predict_batch(X[:64])

        manager = service.enable_rollouts(
            RolloutConfig(policy=RolloutPolicy(min_samples=10_000), auto=False)
        )
        manager.begin("hall", _scrambled(_snap(service, "hall")))

        responses = service.classify("hall", X[:64])
        np.testing.assert_array_equal(
            [r.label for r in responses], expected.labels
        )
        assert all(r.model == "hall" for r in responses)

        # The shadow really scored traffic, and really disagreed.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            stats = manager.stats("hall")
            if stats is not None and stats.samples >= 64:
                break
            time.sleep(0.01)
        stats = manager.stats("hall")
        assert stats.samples >= 64
        assert stats.disagreements > 0
        assert manager.status("hall").stage == "shadow"
        manager.demote("hall")

    def test_begin_rejects_unfitted_and_mismatched_candidates(self, service):
        with pytest.raises(DataError):
            service.enable_rollouts().begin(
                "hall", ModelSnapshot.of(BinarySom(4, 128, seed=0))
            )
        wrong_width = SomClassifier(BinarySom(8, 16, seed=0)).fit(
            np.random.default_rng(0).integers(0, 2, (40, 16)).astype(np.uint8),
            np.arange(40) % 2,
            epochs=2,
        )
        with pytest.raises(ConfigurationError):
            service.enable_rollouts().begin("hall", wrong_width)

    def test_one_rollout_per_model(self, service):
        manager = service.enable_rollouts(
            RolloutConfig(policy=RolloutPolicy(min_samples=10_000), auto=False)
        )
        snapshot = _snap(service, "hall")
        manager.begin("hall", snapshot)
        with pytest.raises(ConfigurationError):
            manager.begin("hall", snapshot)
        manager.demote("hall")
        assert manager.status("hall") is None


# --------------------------------------------------------------------- #
# Automatic demotion under load: every future terminal
# --------------------------------------------------------------------- #
class TestAutoDemotionMidLoad:
    def test_regressed_candidate_demoted_with_zero_drops(self, service, cluster_data):
        X, y = cluster_data
        manager = service.enable_rollouts(
            RolloutConfig(
                policy=RolloutPolicy(
                    min_samples=40, promote_agreement=0.99, demote_agreement=0.9
                ),
                canary_fraction=0.25,
            )
        )
        manager.begin("hall", _scrambled(_snap(service, "hall")))

        failures: list[BaseException] = []
        demoted = threading.Event()
        stop = threading.Event()

        def pump(worker: int) -> None:
            rng = np.random.default_rng(worker)
            while not stop.is_set():
                rows = X[rng.integers(0, len(X), size=8)]
                try:
                    futures = [
                        service.submit(row, model="hall", stream_id=f"cam-{worker}")
                        for row in rows
                    ]
                    for future in futures:
                        future.result(timeout=10.0)
                except BaseException as error:  # noqa: BLE001 - recorded
                    failures.append(error)
                    return

        threads = [threading.Thread(target=pump, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if manager.status("hall") is None:
                demoted.set()
                break
            time.sleep(0.01)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)

        assert demoted.is_set(), "regressed candidate was never demoted"
        assert not failures, f"request failed during demotion: {failures[:3]}"
        # The canary's version and route are gone; the primary still serves.
        assert service.registry.route("hall") is None
        with pytest.raises(UnknownModelError):
            service.registry.group("hall@v1")
        response = service.classify("hall", X[:4])
        assert len(response) == 4
        gauge = service.obs.registry.get(
            "serve_rollout_stage", {"model": "hall"}
        )
        assert gauge is not None and gauge.value == ROLLOUT_STAGE_CODES["demoted"]


# --------------------------------------------------------------------- #
# Promotion, the ring, and rollback
# --------------------------------------------------------------------- #
class TestPromotionAndRollback:
    def _promote_twin(self, service, X, fraction=0.0):
        manager = service.enable_rollouts(
            RolloutConfig(
                policy=RolloutPolicy(min_samples=30, promote_agreement=0.95),
                canary_fraction=fraction,
                rollback_on_breaker=False,
            )
        )
        manager.begin("hall", _identical(_snap(service, "hall")))
        rng = np.random.default_rng(0)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            service.classify("hall", X[rng.integers(0, len(X), size=8)])
            status = manager.status("hall")
            if status is None:
                return manager
        raise AssertionError(f"candidate never promoted: {manager.status('hall')}")

    def test_identical_candidate_promotes_and_banks_previous(
        self, service, cluster_data
    ):
        X, y = cluster_data
        before = _snap(service, "hall")
        manager = self._promote_twin(service, X)
        ring = manager.ring("hall")
        assert len(ring) == 1
        assert ring[-1].weights_version == before.weights_version
        counter = service.obs.registry.get("serve_rollout_promotions_total")
        assert counter is not None and counter.value == 1

    def test_rollback_restores_previous_version(self, service, cluster_data):
        X, y = cluster_data
        before = _snap(service, "hall")
        manager = self._promote_twin(service, X)
        assert manager.rollback("hall") is True
        restored = _snap(service, "hall")
        assert restored.weights_version == before.weights_version
        np.testing.assert_array_equal(restored.weights, before.weights)
        # The ring entry was consumed; a second rollback has nothing left.
        assert manager.rollback("hall") is False
        # The service still answers after two zero-drop transitions.
        assert len(service.classify("hall", X[:8])) == 8

    def test_canary_path_promotes_through_routed_stage(self, service, cluster_data):
        X, y = cluster_data
        manager = self._promote_twin(service, X, fraction=0.2)
        # Promotion cleared the split and evicted the version.
        assert service.registry.route("hall") is None
        with pytest.raises(UnknownModelError):
            service.registry.group("hall@v1")

    def test_breaker_hook_rolls_back_once(self, service, cluster_data):
        X, y = cluster_data
        before = _snap(service, "hall")
        manager = service.enable_rollouts(
            RolloutConfig(
                policy=RolloutPolicy(min_samples=30, promote_agreement=0.95),
                rollback_on_breaker=True,
            )
        )
        manager.begin("hall", _identical(before))
        rng = np.random.default_rng(1)
        deadline = time.monotonic() + 30.0
        while manager.status("hall") is not None and time.monotonic() < deadline:
            service.classify("hall", X[rng.integers(0, len(X), size=8)])
        assert manager.status("hall") is None

        manager.on_breaker_open("hall", "hall:0")
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not manager.ring("hall"):
                break
            time.sleep(0.01)
        restored = _snap(service, "hall")
        assert restored.weights_version == before.weights_version
        # Disarmed: a second breaker event does not fire another rollback.
        manager.on_breaker_open("hall", "hall:0")
        time.sleep(0.1)
        assert _snap(service, "hall").weights_version == before.weights_version


# --------------------------------------------------------------------- #
# Promote-failure injection: fail closed
# --------------------------------------------------------------------- #
class TestPromoteFailureInjection:
    def test_failed_promotion_leaves_active_serving(self, cluster_data):
        X, y = cluster_data
        classifier = _fit(X, y)
        injector = FaultInjector(
            seed=5, specs=[FaultSpec(site=PROMOTE_FAILURE, probability=1.0)]
        )
        service = StreamingInferenceService(
            config=ServiceConfig(
                batch_size=8, max_delay_ms=2.0, cache_capacity=0,
                fault_injector=injector,
            )
        )
        service.register_model("hall", ModelSnapshot.of(classifier))
        service.start()
        try:
            before = _snap(service, "hall")
            manager = service.enable_rollouts(
                RolloutConfig(policy=RolloutPolicy(min_samples=10_000), auto=False)
            )
            manager.begin("hall", _identical(before))
            assert manager.promote("hall") is False
            # Candidate demoted, active untouched, nothing banked.
            assert manager.status("hall") is None
            assert manager.ring("hall") == ()
            assert (
                _snap(service, "hall").weights_version
                == before.weights_version
            )
            assert len(service.classify("hall", X[:8])) == 8
        finally:
            service.stop()
