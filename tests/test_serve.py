"""Tests of the streaming inference service subsystem (:mod:`repro.serve`).

Covers the acceptance surface named in the issue: scheduler deadline/size
flush behaviour, registry load/route/evict, LRU cache correctness under
eviction, backpressure rejection paths, and the end-to-end service with
concurrent simulated camera streams (including the pipeline attachment).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import BinarySom, SomClassifier, save_model
from repro.errors import (
    ConfigurationError,
    DataError,
    ServiceError,
    ServiceOverloadedError,
    UnknownModelError,
)
from repro.serve import (
    CachedOutcome,
    MicroBatchScheduler,
    ModelRegistry,
    ServiceConfig,
    SignatureLruCache,
    SimulatedCameraStream,
    StreamingInferenceService,
    StreamReport,
    drive_streams,
)
from repro.serve.request import ClassificationRequest, PendingResult
from repro.serve.shard import ShardGroup
from repro.signatures import signature_key


class FakeClock:
    """Manually stepped monotonic clock for deterministic deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _request(model: str = "m", bits: int = 16, fill: int = 0) -> ClassificationRequest:
    signature = np.full(bits, fill % 2, dtype=np.uint8)
    return ClassificationRequest(
        signature=signature,
        model=model,
        stream_id="cam",
        request_id=fill,
        cache_key=bytes([fill % 256]),
        enqueued_at=0.0,
    )


# --------------------------------------------------------------------- #
# Micro-batch scheduler
# --------------------------------------------------------------------- #
class TestMicroBatchScheduler:
    def test_size_triggered_flush(self):
        scheduler = MicroBatchScheduler(batch_size=3, max_delay_s=10.0, clock=FakeClock())
        assert scheduler.submit(_request(fill=0)) is None
        assert scheduler.submit(_request(fill=1)) is None
        batch = scheduler.submit(_request(fill=2))
        assert batch is not None
        assert len(batch) == 3 and batch.flushed_by == "size"
        assert batch.fill_fraction == 1.0
        assert scheduler.pending_count() == 0

    def test_deadline_triggered_flush(self):
        clock = FakeClock()
        scheduler = MicroBatchScheduler(batch_size=8, max_delay_s=0.5, clock=clock)
        scheduler.submit(_request(fill=0))
        assert scheduler.due() == []  # not yet due
        clock.advance(0.4)
        assert scheduler.due() == []
        clock.advance(0.2)
        (batch,) = scheduler.due()
        assert batch.flushed_by == "deadline" and len(batch) == 1
        assert batch.fill_fraction == pytest.approx(1 / 8)

    def test_deadline_measured_from_oldest_request(self):
        clock = FakeClock()
        scheduler = MicroBatchScheduler(batch_size=8, max_delay_s=0.5, clock=clock)
        scheduler.submit(_request(fill=0))
        clock.advance(0.4)
        scheduler.submit(_request(fill=1))  # newer request must not reset the clock
        assert scheduler.next_deadline() == pytest.approx(0.5)
        clock.advance(0.1)
        (batch,) = scheduler.due()
        assert len(batch) == 2

    def test_per_model_lanes_are_independent(self):
        clock = FakeClock()
        scheduler = MicroBatchScheduler(batch_size=2, max_delay_s=1.0, clock=clock)
        scheduler.submit(_request(model="a", fill=0))
        batch = scheduler.submit(_request(model="b", fill=1))
        assert batch is None  # two lanes, neither full
        full = scheduler.submit(_request(model="a", fill=2))
        assert full is not None and full.model == "a"
        assert scheduler.pending_count("b") == 1

    def test_drain_cuts_everything(self):
        scheduler = MicroBatchScheduler(batch_size=8, max_delay_s=1.0, clock=FakeClock())
        scheduler.submit(_request(model="a"))
        scheduler.submit(_request(model="b"))
        batches = scheduler.drain()
        assert {batch.model for batch in batches} == {"a", "b"}
        assert all(batch.flushed_by == "drain" for batch in batches)
        assert scheduler.next_deadline() is None

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            MicroBatchScheduler(batch_size=0)
        with pytest.raises(ConfigurationError):
            MicroBatchScheduler(max_delay_s=0.0)


# --------------------------------------------------------------------- #
# Signature LRU cache
# --------------------------------------------------------------------- #
class TestSignatureLruCache:
    def _outcome(self, label: int) -> CachedOutcome:
        return CachedOutcome(
            label=label, neuron=0, distance=1.0, rejected=False, confidence=1.0
        )

    def test_hit_miss_accounting(self):
        cache = SignatureLruCache(capacity=4)
        assert cache.get("m", b"a") is None
        cache.put("m", b"a", self._outcome(1))
        assert cache.get("m", b"a").label == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_eviction_is_least_recently_used(self):
        cache = SignatureLruCache(capacity=2)
        cache.put("m", b"a", self._outcome(1))
        cache.put("m", b"b", self._outcome(2))
        assert cache.get("m", b"a") is not None  # refresh "a"
        cache.put("m", b"c", self._outcome(3))  # evicts "b", not "a"
        assert cache.get("m", b"b") is None
        assert cache.get("m", b"a") is not None
        assert cache.get("m", b"c") is not None
        assert cache.evictions == 1 and len(cache) == 2

    def test_models_do_not_share_entries(self):
        cache = SignatureLruCache(capacity=4)
        cache.put("m1", b"a", self._outcome(1))
        assert cache.get("m2", b"a") is None
        cache.put("m2", b"a", self._outcome(2))
        assert cache.get("m1", b"a").label == 1
        assert cache.invalidate_model("m1") == 1
        assert cache.get("m1", b"a") is None
        assert cache.get("m2", b"a").label == 2

    def test_batch_packing_rows_equal_cache_keys(self, cluster_data):
        from repro.signatures import pack_signature_batch

        X, _ = cluster_data
        packed = pack_signature_batch(X[:16])
        for row in range(16):
            assert packed[row].tobytes() == signature_key(X[row])

    def test_zero_capacity_disables(self):
        cache = SignatureLruCache(capacity=0)
        cache.put("m", b"a", self._outcome(1))
        assert cache.get("m", b"a") is None and len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            SignatureLruCache(capacity=-1)


# --------------------------------------------------------------------- #
# Registry: load / route / evict
# --------------------------------------------------------------------- #
class TestModelRegistry:
    @pytest.fixture()
    def fitted(self, trained_bsom_classifier):
        return trained_bsom_classifier

    def test_register_and_lookup(self, fitted):
        registry = ModelRegistry(n_shards=2)
        registry.register("hall", fitted)
        assert "hall" in registry and len(registry) == 1
        assert registry.classifier("hall") is fitted
        with pytest.raises(ConfigurationError):
            registry.register("hall", fitted)  # duplicate name

    def test_unfitted_classifier_rejected(self, cluster_data):
        X, _ = cluster_data
        registry = ModelRegistry()
        with pytest.raises(DataError):
            registry.register("raw", SomClassifier(BinarySom(8, X.shape[1], seed=0)))

    def test_unknown_model_error_names_available(self, fitted):
        registry = ModelRegistry()
        registry.register("hall", fitted)
        with pytest.raises(UnknownModelError) as excinfo:
            registry.group("lobby")
        assert excinfo.value.available == ("hall",)

    def test_load_snapshot_roundtrip(self, fitted, cluster_data, tmp_path):
        X, _ = cluster_data
        path = save_model(fitted, tmp_path / "hall.npz")
        registry = ModelRegistry()
        loaded = registry.load("hall", path)
        np.testing.assert_array_equal(loaded.predict(X), fitted.predict(X))

    def test_load_rejects_bare_map(self, fitted, tmp_path):
        path = save_model(fitted.som, tmp_path / "bare.npz")
        with pytest.raises(DataError):
            ModelRegistry().load("bare", path)

    def test_round_robin_routing_spreads_batches(self, fitted):
        registry = ModelRegistry(n_shards=2, policy="round_robin", queue_capacity=4)
        registry.register("m", fitted)
        # Shards not started: batches stay queued, exposing the routing.
        from repro.serve.batching import MicroBatch

        for index in range(4):
            registry.submit(
                MicroBatch("m", (_request(fill=index),), capacity=1, flushed_by="size")
            )
        depths = registry.queue_depths()
        assert depths == {"m/0": 2, "m/1": 2}

    def test_least_loaded_routing_picks_emptier_shard(self, fitted):
        registry = ModelRegistry(n_shards=2, policy="least_loaded", queue_capacity=4)
        registry.register("m", fitted)
        group = registry.group("m")
        from repro.serve.batching import MicroBatch

        def batch(i):
            return MicroBatch("m", (_request(fill=i),), capacity=1, flushed_by="size")

        group.shards[0].try_submit(batch(0))
        group.shards[0].try_submit(batch(1))
        chosen = group.submit(batch(2))
        assert chosen is group.shards[1]

    def test_invalid_policy_rejected(self, fitted):
        with pytest.raises(ConfigurationError):
            ShardGroup("m", fitted, lambda *a: None, policy="random")

    def test_evict_stops_and_forgets(self, fitted):
        registry = ModelRegistry(n_shards=1)
        registry.register("hall", fitted)
        registry.start()
        evicted = registry.evict("hall")
        assert evicted is fitted
        assert "hall" not in registry
        with pytest.raises(UnknownModelError):
            registry.evict("hall")


# --------------------------------------------------------------------- #
# Backpressure rejection paths
# --------------------------------------------------------------------- #
class TestBackpressure:
    def test_shard_queues_saturate(self, trained_bsom_classifier):
        group = ShardGroup(
            "m",
            trained_bsom_classifier,
            lambda *a: None,
            n_shards=2,
            queue_capacity=1,
        )
        from repro.serve.batching import MicroBatch

        def batch(i):
            return MicroBatch("m", (_request(fill=i),), capacity=1, flushed_by="size")

        group.submit(batch(0))
        group.submit(batch(1))
        with pytest.raises(ServiceOverloadedError) as excinfo:
            group.submit(batch(2))  # both 1-deep queues full, workers stopped
        assert excinfo.value.pending == 2 and excinfo.value.capacity == 2

    def test_service_pending_budget(self, trained_bsom_classifier, cluster_data):
        X, _ = cluster_data
        config = ServiceConfig(
            batch_size=64, max_delay_ms=60_000.0, max_pending=4, cache_capacity=0
        )
        service = StreamingInferenceService(config=config)
        service.register_model("m", trained_bsom_classifier)
        with service:
            futures = [
                service.submit(X[i], model="m", stream_id="cam") for i in range(4)
            ]
            with pytest.raises(ServiceOverloadedError):
                service.submit(X[4], model="m", stream_id="cam")
            assert service.metrics.backpressure_rejections == 1
            # Shedding load and flushing recovers the budget.
            service.flush()
            responses = [future.result(10.0) for future in futures]
            assert len(responses) == 4
            assert service.pending_requests == 0
            assert service.submit(X[5], model="m").done() is False

    def test_shard_failure_releases_pending_budget(self, cluster_data):
        X, y = cluster_data

        class ExplodingClassifier(SomClassifier):
            def predict_batch(self, batch, *, validate=True):
                raise RuntimeError("boom")

            def predict_batch_packed(self, input_words):
                raise RuntimeError("boom")

        exploding = ExplodingClassifier(BinarySom(16, X.shape[1], seed=0))
        fitted = SomClassifier(BinarySom(16, X.shape[1], seed=0)).fit(
            X, y, epochs=4, seed=1
        )
        exploding.labelling = fitted.labelling
        config = ServiceConfig(batch_size=2, max_delay_ms=2.0, cache_capacity=0)
        service = StreamingInferenceService(config=config)
        service.register_model("m", exploding)
        with service:
            futures = [service.submit(X[i], model="m") for i in range(4)]
            for future in futures:
                with pytest.raises(RuntimeError):
                    future.result(5.0)
            # The failed batches must release their pending-budget slots.
            deadline = time.monotonic() + 5.0
            while service.pending_requests and time.monotonic() < deadline:
                time.sleep(0.01)
            assert service.pending_requests == 0

    def test_submit_requires_running_service(self, trained_bsom_classifier, cluster_data):
        X, _ = cluster_data
        service = StreamingInferenceService()
        service.register_model("m", trained_bsom_classifier)
        with pytest.raises(ServiceError):
            service.submit(X[0], model="m")

    def test_wrong_signature_width_rejected(self, trained_bsom_classifier):
        service = StreamingInferenceService()
        service.register_model("m", trained_bsom_classifier)
        with service:
            with pytest.raises(ConfigurationError):
                service.submit(np.zeros(8, dtype=np.uint8), model="m")


# --------------------------------------------------------------------- #
# End-to-end service behaviour
# --------------------------------------------------------------------- #
class TestServiceEndToEnd:
    @pytest.fixture()
    def service(self, trained_bsom_classifier):
        config = ServiceConfig(
            batch_size=8, max_delay_ms=2.0, n_shards=2, cache_capacity=512
        )
        service = StreamingInferenceService(config=config)
        service.register_model("m", trained_bsom_classifier)
        with service:
            yield service

    def test_matches_direct_prediction(self, service, trained_bsom_classifier, cluster_data):
        X, _ = cluster_data
        responses = service.classify("m", X[:50], stream_id="cam-0")
        served = np.array([response.label for response in responses])
        np.testing.assert_array_equal(served, trained_bsom_classifier.predict(X[:50]))
        assert all(
            response.stream_id == "cam-0" and response.model == "m"
            for response in responses
        )

    def test_cache_hits_skip_the_som(self, service, cluster_data):
        X, _ = cluster_data
        first = service.classify("m", X[:1])[0]
        again = service.classify("m", X[:1])[0]
        assert not first.cached and again.cached
        assert again.label == first.label and again.neuron == first.neuron
        assert service.cache.hits >= 1

    def test_unknown_model(self, service, cluster_data):
        X, _ = cluster_data
        with pytest.raises(UnknownModelError):
            service.submit(X[0], model="nope")

    def test_concurrent_streams_through_the_service(self, service, cluster_data):
        X, y = cluster_data
        # Pre-warm the cache with the whole pool so the stream traffic hits
        # it deterministically (an in-flight repeat would otherwise race the
        # completion of its first occurrence).
        service.classify("m", X)
        warm_hits = service.cache.hits
        streams = [
            SimulatedCameraStream(
                f"cam-{i}", X, y, n_frames=40, repeat_probability=0.5, seed=i
            )
            for i in range(4)
        ]
        reports = drive_streams(service, streams, model="m")
        assert len(reports) == 4
        assert all(len(report.responses) == 40 for report in reports)
        # The well-separated cluster data should be recognised near-perfectly.
        assert all(report.accuracy > 0.9 for report in reports)
        snapshot = service.metrics_snapshot()
        assert snapshot.responses_total >= 160
        # Every stream request is a pool signature, already cached.
        assert service.cache.hits - warm_hits == 160
        assert all(response.cached for report in reports for response in report.responses)
        assert snapshot.batches_total > 0
        assert 0.0 < snapshot.mean_batch_fill <= 1.0

    def test_metrics_percentiles_monotone(self, service, cluster_data):
        X, _ = cluster_data
        service.classify("m", X[:64])
        snapshot = service.metrics_snapshot()
        assert 0.0 <= snapshot.latency_p50_ms <= snapshot.latency_p95_ms
        assert snapshot.latency_p95_ms <= snapshot.latency_p99_ms

    def test_multi_model_routing(self, service, trained_csom_classifier, cluster_data):
        X, _ = cluster_data
        service.register_model("baseline", trained_csom_classifier)
        bsom = service.classify("m", X[:10])
        csom = service.classify("baseline", X[:10])
        np.testing.assert_array_equal(
            [r.label for r in csom], trained_csom_classifier.predict(X[:10])
        )
        assert [r.label for r in bsom] is not None
        evicted = service.evict_model("baseline")
        assert evicted is trained_csom_classifier
        with pytest.raises(UnknownModelError):
            service.classify("baseline", X[:1])


# --------------------------------------------------------------------- #
# Pipeline integration
# --------------------------------------------------------------------- #
class TestPipelineAttachment:
    def test_recognition_system_served_frames_match_local(self, cluster_data):
        from tests.test_pipeline import _signatures_from_truth, _two_actor_scene
        from repro.pipeline import RecognitionSystem, RecognitionSystemConfig

        scene = _two_actor_scene(seed=1)
        X, y = _signatures_from_truth(scene, 40)
        classifier = SomClassifier(BinarySom(12, 768, seed=0)).fit(
            X, y, epochs=8, seed=1
        )

        def build_system():
            system = RecognitionSystem(
                classifier, RecognitionSystemConfig(min_blob_area=120)
            )
            system.initialise_background(_two_actor_scene(seed=2).background)
            return system

        local = build_system()
        served = build_system()
        service = StreamingInferenceService(
            config=ServiceConfig(batch_size=4, max_delay_ms=2.0)
        )
        service.register_model("hall", classifier)
        with service:
            served.attach_service(service, "hall", stream_id="cam-7")
            assert served.service_attached
            frames = list(_two_actor_scene(seed=2).frames(12))
            local_obs = local.process_sequence(frames)
            served_obs = served.process_sequence(frames)
        assert [o.label for o in served_obs] == [o.label for o in local_obs]
        assert [o.track_id for o in served_obs] == [o.track_id for o in local_obs]
        assert service.metrics.responses_total == len(served_obs)
        served.detach_service()
        assert not served.service_attached

    def test_attach_unknown_model_fails_fast(self, trained_bsom_classifier):
        from repro.pipeline import RecognitionSystem

        system = RecognitionSystem(trained_bsom_classifier)
        service = StreamingInferenceService()
        with pytest.raises(UnknownModelError):
            system.attach_service(service, "ghost")


class TestPendingResult:
    def test_timeout_raises_service_error(self):
        pending = PendingResult()
        with pytest.raises(ServiceError):
            pending.result(timeout=0.01)

    def test_exception_propagates(self):
        pending = PendingResult()
        pending.set_exception(ValueError("boom"))
        with pytest.raises(ValueError):
            pending.result(0.1)


class TestStreamReportLatencyAndShed:
    """The drive_streams satellite: per-response latency + shed accounting."""

    def test_latencies_recorded_per_response(self, trained_bsom_classifier, cluster_data):
        X, y = cluster_data
        service = StreamingInferenceService(
            config=ServiceConfig(batch_size=8, max_delay_ms=2.0, n_shards=2)
        )
        service.register_model("m", trained_bsom_classifier)
        with service:
            streams = [
                SimulatedCameraStream(f"cam-{i}", X, y, n_frames=30, seed=i)
                for i in range(3)
            ]
            reports = drive_streams(service, streams, model="m")
        for report in reports:
            assert len(report.latencies_s) == len(report.responses) == 30
            assert all(latency >= 0.0 for latency in report.latencies_s)
            assert report.shed_frames == 0
            assert report.max_latency_s >= report.mean_latency_s > 0.0

    def test_shed_frames_counted_when_retry_budget_exhausts(
        self, trained_bsom_classifier, cluster_data
    ):
        X, y = cluster_data
        # One-slot pending budget and a long batching delay: while the first
        # frame sits in its micro-batch window, every subsequent submit is
        # refused -- and with max_retries=0 each refusal drops the frame.
        service = StreamingInferenceService(
            config=ServiceConfig(
                batch_size=64,
                max_delay_ms=100.0,
                n_shards=1,
                max_pending=1,
                cache_capacity=0,
            )
        )
        service.register_model("m", trained_bsom_classifier)
        with service:
            streams = [
                SimulatedCameraStream("cam-0", X, y, n_frames=20, seed=3)
            ]
            reports = drive_streams(
                service,
                streams,
                model="m",
                backpressure_retry_s=0.0005,
                max_retries=0,
            )
        report = reports[0]
        # Every frame ended exactly once: delivered with a latency or shed.
        assert len(report.responses) + report.shed_frames == 20
        assert report.shed_frames > 0
        assert len(report.latencies_s) == len(report.responses)

    def test_empty_report_latency_properties(self):
        report = StreamReport(stream_id="cam-x")
        assert report.mean_latency_s == 0.0
        assert report.max_latency_s == 0.0
