"""Integration tests spanning several subsystems.

These tests follow the paper's actual workflow end to end: synthetic video
-> signature extraction -> off-line training -> node labelling ->
identification, both in software and on the cycle-accurate hardware model.
"""

import numpy as np
import pytest

from repro.core import BinarySom, KohonenSom, SomClassifier
from repro.eval import accuracy, run_table1, run_table2
from repro.eval.experiments import Table1Config
from repro.hw import FpgaBsomConfig, FpgaBsomDesign, ThroughputModel


class TestSoftwareWorkflow:
    def test_bsom_identifies_people_on_surveillance_data(self, tiny_surveillance):
        data = tiny_surveillance
        classifier = SomClassifier(BinarySom(40, data.n_bits, seed=0))
        classifier.fit(data.train_signatures, data.train_labels, epochs=10, seed=1)
        score = classifier.score(data.test_signatures, data.test_labels)
        # The tiny dataset is noisier than the paper-scale one; the band is wide.
        assert score > 0.55

    def test_csom_identifies_people_on_surveillance_data(self, tiny_surveillance):
        data = tiny_surveillance
        classifier = SomClassifier(KohonenSom(40, data.n_bits, seed=0))
        classifier.fit(data.train_signatures, data.train_labels, epochs=10, seed=1)
        assert classifier.score(data.test_signatures, data.test_labels) > 0.55

    def test_table1_and_table2_pipeline(self, tiny_surveillance):
        config = Table1Config(iterations=(3, 8), repetitions=3, n_neurons=20)
        table1 = run_table1(tiny_surveillance, config)
        table2 = run_table2(table1)
        assert len(table1.rows) == len(table2) == 2
        for row in table1.rows:
            assert 0.3 <= row.bsom_mean <= 1.0


class TestHardwareWorkflow:
    def test_offline_training_then_fpga_deployment(self, tiny_surveillance):
        """Figure 6: train off-line, load the weights into the FPGA and recognise."""
        data = tiny_surveillance
        software = SomClassifier(BinarySom(40, data.n_bits, seed=0))
        software.fit(data.train_signatures, data.train_labels, epochs=8, seed=1)

        design = FpgaBsomDesign(FpgaBsomConfig(seed=0))
        design.load_weights(software.som)

        software_predictions = software.predict(data.test_signatures[:40])
        node_labels = software.labelling.node_labels
        hardware_predictions = []
        total_cycles = 0
        for signature in data.test_signatures[:40]:
            trace = design.present(signature)
            hardware_predictions.append(node_labels[trace.winner])
            total_cycles += trace.total_cycles
        hardware_predictions = np.array(hardware_predictions)

        # The FPGA path must agree with the software path signature by signature.
        assert np.array_equal(hardware_predictions, software_predictions)
        # And its cycle budget must match the analytic throughput model.
        expected = 40 * ThroughputModel().cycles_per_recognition()
        assert total_cycles == expected

    def test_hardware_training_reaches_useful_accuracy(self, tiny_surveillance):
        data = tiny_surveillance
        design = FpgaBsomDesign(FpgaBsomConfig(seed=3))
        design.initialise()
        design.train(data.train_signatures[:150], epochs=2, seed=4)
        classifier = SomClassifier(design.to_software())
        classifier.label_nodes(data.train_signatures[:150], data.train_labels[:150])
        predictions = classifier.predict(data.test_signatures)
        assert accuracy(data.test_labels, predictions) > 0.4

    def test_realtime_budget_for_camera_rate(self, tiny_surveillance):
        """At 30 fps with a handful of objects per frame, the FPGA is mostly idle."""
        report = ThroughputModel().report()
        signatures_per_second = 30 * 5  # five tracked objects per frame
        assert report.recognitions_per_second > 100 * signatures_per_second
