"""Tests for the project-native static-analysis package.

Each rule is proven against a known-bad fixture (the finding fires) and a
known-good fixture (it does not), fixtures being tiny package trees
written to ``tmp_path`` and parsed with :func:`load_project` exactly the
way ``scripts/check_static.py`` parses the real tree.  The suite ends
with the meta-test the whole PR hangs on: the live ``src/repro`` tree has
zero findings outside the committed baseline, inside the CI time budget.
"""

import textwrap
import time
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_BASELINE_PATH,
    DEFAULT_RULES,
    DeterminismRule,
    ErrorTaxonomyRule,
    EventVocabularyRule,
    ExportSurfaceRule,
    Finding,
    ImportCycleRule,
    LockOrderRule,
    MetricVocabularyRule,
    ThreadHygieneRule,
    UnguardedSharedStateRule,
    diff_against_baseline,
    load_baseline,
    load_project,
    render_report,
    run_rules,
    save_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_project(tmp_path, files, readme=None, scripts=None, package="pkg"):
    """Write a fixture package tree and parse it like the CI gate does."""
    src = tmp_path / "src"
    for rel, content in files.items():
        path = src / package / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    init = src / package / "__init__.py"
    if not init.exists():
        init.write_text("", encoding="utf-8")
    repo_root = None
    if readme is not None:
        (tmp_path / "README.md").write_text(
            textwrap.dedent(readme), encoding="utf-8"
        )
        repo_root = tmp_path
    if scripts:
        scripts_dir = tmp_path / "scripts"
        scripts_dir.mkdir(exist_ok=True)
        for name, content in scripts.items():
            (scripts_dir / name).write_text(
                textwrap.dedent(content), encoding="utf-8"
            )
        repo_root = tmp_path
    return load_project(src, package=package, repo_root=repo_root)


def findings_for(rule, project):
    return run_rules(project, [rule])


# --------------------------------------------------------------------- #
# lock-order
# --------------------------------------------------------------------- #


class TestLockOrder:
    def test_self_deadlock_via_helper_call(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "box.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def outer(self):
                        with self._lock:
                            self._helper()

                    def _helper(self):
                        with self._lock:
                            pass
                """
            },
        )
        findings = findings_for(LockOrderRule(), project)
        assert len(findings) == 1
        assert "immediate deadlock" in findings[0].message
        assert "self._lock" in findings[0].message

    def test_rlock_reacquire_is_legal(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "box.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.RLock()

                    def outer(self):
                        with self._lock:
                            self._helper()

                    def _helper(self):
                        with self._lock:
                            pass
                """
            },
        )
        assert findings_for(LockOrderRule(), project) == []

    def test_two_lock_cycle(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "box.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def forward(self):
                        with self._a:
                            with self._b:
                                pass

                    def backward(self):
                        with self._b:
                            with self._a:
                                pass
                """
            },
        )
        findings = findings_for(LockOrderRule(), project)
        assert len(findings) == 1
        assert "lock-order cycle" in findings[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "box.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def one(self):
                        with self._a:
                            with self._b:
                                pass

                    def two(self):
                        with self._a:
                            with self._b:
                                pass
                """
            },
        )
        assert findings_for(LockOrderRule(), project) == []


# --------------------------------------------------------------------- #
# unguarded-shared-state
# --------------------------------------------------------------------- #


_WORKER_TEMPLATE = """
import threading

class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._thread = None

    def start(self):
        self._thread = threading.Thread(
            target=self._run, name="worker", daemon=True
        )
        self._thread.start()

    def _run(self):
        {thread_write}

    def {reset_name}(self):
        with self._lock:
            self._count = 0

    def bump(self):
        {public_write}
"""


class TestUnguardedSharedState:
    def test_bare_cross_thread_write_flagged(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "worker.py": _WORKER_TEMPLATE.format(
                    thread_write="self._count += 1",
                    public_write="self._count += 1",
                    reset_name="reset",
                )
            },
        )
        findings = findings_for(UnguardedSharedStateRule(), project)
        assert len(findings) == 1
        assert "Worker._count" in findings[0].message
        assert "self._lock" in findings[0].message

    def test_all_writes_locked_is_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "worker.py": _WORKER_TEMPLATE.format(
                    thread_write="with self._lock:\n            self._count += 1",
                    public_write="with self._lock:\n            self._count += 1",
                    reset_name="reset",
                )
            },
        )
        assert findings_for(UnguardedSharedStateRule(), project) == []

    def test_single_sided_bare_write_is_clean(self, tmp_path):
        # Written bare only on the thread side, with no write from the
        # public surface at all: no cross-thread contention to flag.
        project = make_project(
            tmp_path,
            {
                "worker.py": _WORKER_TEMPLATE.format(
                    thread_write="self._count += 1",
                    public_write="pass",
                    reset_name="_reset",
                )
            },
        )
        assert findings_for(UnguardedSharedStateRule(), project) == []


# --------------------------------------------------------------------- #
# thread-hygiene
# --------------------------------------------------------------------- #


class TestThreadHygiene:
    def test_anonymous_nondaemon_thread_and_bare_join(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "runner.py": """
                import threading

                def run(fn):
                    thread = threading.Thread(target=fn)
                    thread.start()
                    thread.join()
                """
            },
        )
        messages = [f.message for f in findings_for(ThreadHygieneRule(), project)]
        assert len(messages) == 3
        assert any("without name=" in m for m in messages)
        assert any("no daemon=" in m for m in messages)
        assert any("join() without a timeout" in m for m in messages)

    def test_named_daemon_thread_with_bounded_join(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "runner.py": """
                import threading

                def run(fn):
                    thread = threading.Thread(target=fn, name="r", daemon=True)
                    thread.start()
                    thread.join(timeout=5.0)
                """
            },
        )
        assert findings_for(ThreadHygieneRule(), project) == []


# --------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------- #


class TestDeterminism:
    def test_global_rng_flagged_everywhere(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "core/noise.py": """
                import random
                import numpy as np

                def jitter():
                    return random.random() + np.random.rand()
                """
            },
        )
        messages = [f.message for f in findings_for(DeterminismRule(), project)]
        assert len(messages) == 2
        assert any("random.random()" in m for m in messages)
        assert any("np.random.rand()" in m for m in messages)

    def test_seeded_generators_sanctioned(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "core/noise.py": """
                import random
                import numpy as np

                def jitter(seed):
                    rng = np.random.default_rng(seed)
                    r = random.Random(seed)
                    return rng.random() + r.random()
                """
            },
        )
        assert findings_for(DeterminismRule(), project) == []

    def test_wall_clock_banned_only_in_serve_and_obs(self, tmp_path):
        source = """
        import time

        def stamp():
            return time.time()
        """
        project = make_project(
            tmp_path,
            {"serve/handler.py": source, "core/handler.py": source},
        )
        findings = findings_for(DeterminismRule(), project)
        assert len(findings) == 1
        assert findings[0].path.endswith("serve/handler.py")
        assert "wall-clock read" in findings[0].message

    def test_monotonic_clock_is_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "serve/handler.py": """
                import time

                def stamp():
                    return time.monotonic(), time.perf_counter()
                """
            },
        )
        assert findings_for(DeterminismRule(), project) == []


# --------------------------------------------------------------------- #
# metric-vocabulary
# --------------------------------------------------------------------- #


class TestMetricVocabulary:
    def test_grammar_and_suffix_violations(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "metrics.py": """
                def build(reg):
                    reg.counter("serve_hits")
                    reg.counter("serveBad_total")
                    reg.histogram("serve_latency_ms")
                    reg.gauge("serve_depth_total")
                """
            },
        )
        messages = [
            f.message for f in findings_for(MetricVocabularyRule(), project)
        ]
        assert any(
            "'serve_hits'" in m and "_total" in m for m in messages
        )
        assert any("naming grammar" in m for m in messages)
        assert any("_seconds" in m for m in messages)
        assert any("must not use the cumulative" in m for m in messages)

    def test_duplicate_registration_sites(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "a.py": 'def b(reg):\n    reg.counter("serve_x_total")\n',
                "b.py": 'def b(reg):\n    reg.counter("serve_x_total")\n',
            },
        )
        messages = [
            f.message for f in findings_for(MetricVocabularyRule(), project)
        ]
        assert any("2 call sites" in m for m in messages)

    def test_doc_sync_both_directions(self, tmp_path):
        project = make_project(
            tmp_path,
            {"m.py": 'def b(reg):\n    reg.counter("serve_real_total")\n'},
            readme="""
            | metric | meaning |
            |---|---|
            | `serve_ghost_total` | renamed away |
            """,
        )
        messages = [
            f.message for f in findings_for(MetricVocabularyRule(), project)
        ]
        assert any(
            "'serve_ghost_total'" in m and "no registration" in m
            for m in messages
        )
        assert any(
            "'serve_real_total'" in m and "absent from the README" in m
            for m in messages
        )

    def test_synced_vocabulary_is_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "m.py": (
                    "def b(reg):\n"
                    '    reg.counter("serve_real_total")\n'
                    '    reg.histogram("serve_wait_seconds")\n'
                )
            },
            readme="""
            Metrics: `serve_real_total` and `serve_wait_seconds` (the
            exporter also renders `serve_wait_seconds_bucket`).
            """,
        )
        assert findings_for(MetricVocabularyRule(), project) == []

    def test_wrapper_helper_registrations_are_seen(self, tmp_path):
        # Registration through a kind-named wrapper helper counts: the
        # literal name at the wrapper call site is the registration.
        project = make_project(
            tmp_path,
            {
                "m.py": (
                    "class M:\n"
                    "    def build(self):\n"
                    '        self._shadow_counter("serve_mirrors_total")\n'
                )
            },
            readme="Documented: `serve_mirrors_total`.\n",
        )
        assert findings_for(MetricVocabularyRule(), project) == []


# --------------------------------------------------------------------- #
# event-vocabulary
# --------------------------------------------------------------------- #


class TestEventVocabulary:
    def test_bad_case_and_undocumented_kinds(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "events.py": """
                def fire(obs):
                    obs.emit("BadKind")
                    obs.emit("quiet_event")
                """
            },
            readme="No events documented here.\n",
        )
        messages = [
            f.message for f in findings_for(EventVocabularyRule(), project)
        ]
        assert any("not lower_snake_case" in m for m in messages)
        assert any(
            "'quiet_event'" in m and "not documented" in m for m in messages
        )

    def test_documented_snake_case_kind_is_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {"events.py": 'def fire(obs):\n    obs.emit("model_swap")\n'},
            readme="Emits a `model_swap` event on every flip.\n",
        )
        assert findings_for(EventVocabularyRule(), project) == []


# --------------------------------------------------------------------- #
# error-taxonomy
# --------------------------------------------------------------------- #


class TestErrorTaxonomy:
    def test_builtin_raise_flagged(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "mod.py": """
                def check(x):
                    if x < 0:
                        raise ValueError("negative")
                """
            },
        )
        findings = findings_for(ErrorTaxonomyRule(), project)
        assert len(findings) == 1
        assert "builtin ValueError" in findings[0].message

    def test_protocol_exemptions(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "mod.py": """
                class Bag:
                    def __getitem__(self, key):
                        raise KeyError(key)

                    def __getattr__(self, name):
                        raise AttributeError(name)

                def todo():
                    raise NotImplementedError
                """
            },
        )
        assert findings_for(ErrorTaxonomyRule(), project) == []

    def test_project_exceptions_pass(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "mod.py": """
                from pkg.errors import ConfigurationError

                def check(x):
                    if x < 0:
                        raise ConfigurationError("negative")
                """,
                "errors.py": "class ConfigurationError(Exception):\n    pass\n",
            },
        )
        assert findings_for(ErrorTaxonomyRule(), project) == []


# --------------------------------------------------------------------- #
# export-surface
# --------------------------------------------------------------------- #


class TestExportSurface:
    def test_phantom_and_duplicate_entries(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "mod.py": """
                __all__ = ["real", "ghost", "real"]

                def real():
                    pass
                """
            },
        )
        messages = [
            f.message for f in findings_for(ExportSurfaceRule(), project)
        ]
        assert any("'ghost'" in m and "binds no such name" in m for m in messages)
        assert any("more than once" in m for m in messages)

    def test_package_init_must_list_public_reexports(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "sub/__init__.py": """
                from pkg.sub.impl import exported, forgotten

                __all__ = ["exported"]
                """,
                "sub/impl.py": (
                    "def exported():\n    pass\n\n"
                    "def forgotten():\n    pass\n"
                ),
            },
        )
        findings = findings_for(ExportSurfaceRule(), project)
        assert len(findings) == 1
        assert "'forgotten'" in findings[0].message
        assert "missing from __all__" in findings[0].message

    def test_lazy_export_table_keys_resolve(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "sub/__init__.py": """
                _LAZY_EXPORTS = {"deferred": "pkg.sub.impl"}

                __all__ = ["deferred"]

                def __getattr__(name):
                    raise AttributeError(name)
                """,
                "sub/impl.py": "def deferred():\n    pass\n",
            },
        )
        assert findings_for(ExportSurfaceRule(), project) == []

    def test_stdlib_imports_are_not_forced_into_all(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "sub/__init__.py": """
                from typing import Optional

                from pkg.sub.impl import exported

                __all__ = ["exported"]
                """,
                "sub/impl.py": "def exported():\n    pass\n",
            },
        )
        assert findings_for(ExportSurfaceRule(), project) == []


# --------------------------------------------------------------------- #
# import-cycle
# --------------------------------------------------------------------- #


class TestImportCycle:
    def test_two_module_cycle_detected(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "a.py": "from pkg import b\n",
                "b.py": "from pkg import a\n",
            },
        )
        findings = findings_for(ImportCycleRule(), project)
        assert len(findings) == 1
        assert "circular imports among" in findings[0].message
        assert "pkg.a" in findings[0].message
        assert "pkg.b" in findings[0].message

    def test_type_checking_guard_breaks_cycle(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "a.py": """
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from pkg import b
                """,
                "b.py": "from pkg import a\n",
            },
        )
        assert findings_for(ImportCycleRule(), project) == []

    def test_function_local_import_breaks_cycle(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "a.py": """
                def late():
                    from pkg import b
                    return b
                """,
                "b.py": "from pkg import a\n",
            },
        )
        assert findings_for(ImportCycleRule(), project) == []


# --------------------------------------------------------------------- #
# pragma suppression
# --------------------------------------------------------------------- #


class TestPragmaSuppression:
    def test_inline_pragma_silences_named_rule(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "mod.py": """
                import random

                def jitter():
                    return random.random()  # repro: allow[determinism]
                """
            },
        )
        assert findings_for(DeterminismRule(), project) == []

    def test_standalone_pragma_line_above(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "mod.py": """
                import random

                def jitter():
                    # repro: allow[determinism]
                    return random.random()
                """
            },
        )
        assert findings_for(DeterminismRule(), project) == []

    def test_pragma_for_other_rule_does_not_silence(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "mod.py": """
                import random

                def jitter():
                    return random.random()  # repro: allow[thread-hygiene]
                """
            },
        )
        assert len(findings_for(DeterminismRule(), project)) == 1


# --------------------------------------------------------------------- #
# baseline semantics
# --------------------------------------------------------------------- #


class TestBaseline:
    def _finding(self, message, line=3):
        return Finding(
            rule="determinism", path="src/pkg/mod.py", line=line, message=message
        )

    def test_round_trip_and_line_independence(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline([self._finding("old issue", line=3)], path)
        baseline = load_baseline(path)
        # Same finding on a different line is still baselined: identity
        # excludes the line number on purpose.
        diff = diff_against_baseline(
            [self._finding("old issue", line=99)], baseline
        )
        assert diff.new == ()
        assert len(diff.known) == 1
        assert diff.stale == ()

    def test_new_finding_fails_and_fixed_goes_stale(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline([self._finding("old issue")], path)
        diff = diff_against_baseline(
            [self._finding("brand new issue")], load_baseline(path)
        )
        assert len(diff.new) == 1
        assert diff.new[0].message == "brand new issue"
        assert len(diff.stale) == 1
        assert "old issue" in diff.stale[0]

    def test_missing_baseline_file_means_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()


# --------------------------------------------------------------------- #
# the live tree
# --------------------------------------------------------------------- #


class TestLiveTree:
    def test_no_unbaselined_findings_within_budget(self):
        started = time.perf_counter()
        project = load_project(
            REPO_ROOT / "src", package="repro", repo_root=REPO_ROOT
        )
        findings = run_rules(project, DEFAULT_RULES)
        elapsed = time.perf_counter() - started
        diff = diff_against_baseline(findings, load_baseline())
        assert not diff.new, "unbaselined findings:\n" + render_report(diff.new)
        assert elapsed < 5.0, f"static analysis took {elapsed:.2f}s (budget 5s)"

    def test_committed_baseline_has_no_stale_entries(self):
        project = load_project(
            REPO_ROOT / "src", package="repro", repo_root=REPO_ROOT
        )
        findings = run_rules(project, DEFAULT_RULES)
        diff = diff_against_baseline(findings, load_baseline())
        assert diff.stale == (), (
            "stale baseline entries (run scripts/check_static.py "
            f"--update-baseline): {diff.stale}"
        )

    def test_baseline_file_is_committed(self):
        assert DEFAULT_BASELINE_PATH.exists()
