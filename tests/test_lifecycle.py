"""Tests of the unified model lifecycle: api facade, hot-swap, dedup, evict.

Covers the acceptance surface of the lifecycle redesign:

* ``repro.api`` train / snapshot / save / load / serve / swap end to end,
* ``ModelRegistry.swap`` hot-reload with zero dropped requests, including
  a swap issued while >= 100 requests are queued,
* cross-request deduplication of identical in-flight packed signatures
  (one kernel execution fans out to all waiting futures, visible in the
  ``dedup_hits`` counter and per-response ``deduplicated`` flag),
* eviction failing still-queued futures with ``ModelEvictedError`` instead
  of leaving them unresolved, and
* the pipeline layer speaking snapshots (RecognitionSystem construction,
  OnlineLearner.snapshot publishing).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import api
from repro.core import BinarySom, ModelSnapshot, SomClassifier
from repro.errors import (
    ConfigurationError,
    DataError,
    ModelEvictedError,
    ResultTimeoutError,
    ServiceError,
    ServiceOverloadedError,
    UnknownModelError,
)
from repro.serve import (
    ModelRegistry,
    ServiceConfig,
    StreamingInferenceService,
)
from repro.serve.batching import MicroBatch
from repro.serve.request import ClassificationRequest


def _fit(X, y, *, n_neurons=16, seed=1, epochs=6, **kwargs):
    return SomClassifier(BinarySom(n_neurons, X.shape[1], seed=seed, **kwargs)).fit(
        X, y, epochs=epochs, seed=seed
    )


def _direct_batch(model, signature, request_id=0):
    request = ClassificationRequest(
        signature=np.asarray(signature, dtype=np.uint8),
        model=model,
        stream_id="cam",
        request_id=request_id,
        cache_key=bytes([request_id % 256]),
        enqueued_at=0.0,
    )
    return request, MicroBatch(model, (request,), capacity=1, flushed_by="size")


# --------------------------------------------------------------------- #
# Registry hot-swap
# --------------------------------------------------------------------- #
class TestRegistrySwap:
    def test_swap_returns_previous_and_reroutes(self, cluster_data):
        X, y = cluster_data
        old = _fit(X, y, seed=1)
        new = _fit(X, y, seed=9, n_neurons=24, epochs=10)
        registry = ModelRegistry(n_shards=1)
        registry.register("m", old)
        previous = registry.swap("m", new)
        assert previous is old
        assert registry.classifier("m") is new

    def test_swap_accepts_snapshots(self, cluster_data):
        X, y = cluster_data
        registry = ModelRegistry(n_shards=1)
        registry.register("m", _fit(X, y, seed=1))
        snapshot = ModelSnapshot.of(_fit(X, y, seed=2))
        registry.swap("m", snapshot)
        served = registry.classifier("m")
        assert isinstance(served, SomClassifier)
        np.testing.assert_array_equal(
            served.predict(X[:8]), snapshot.to_classifier().predict(X[:8])
        )

    def test_register_accepts_snapshots(self, cluster_data):
        X, y = cluster_data
        snapshot = ModelSnapshot.of(_fit(X, y, seed=1))
        registry = ModelRegistry(n_shards=1)
        registry.register("m", snapshot)
        assert isinstance(registry.classifier("m"), SomClassifier)

    def test_swap_unknown_name_raises(self, cluster_data):
        X, y = cluster_data
        with pytest.raises(UnknownModelError):
            ModelRegistry().swap("ghost", _fit(X, y))

    def test_swap_rejects_width_mismatch(self, cluster_data):
        X, y = cluster_data
        registry = ModelRegistry(n_shards=1)
        registry.register("m", _fit(X, y))
        narrow = SomClassifier(BinarySom(8, 32, seed=0))
        rng = np.random.default_rng(0)
        narrow.fit(rng.integers(0, 2, (40, 32)), np.repeat([0, 1], 20), epochs=2, seed=1)
        with pytest.raises(ConfigurationError, match="bit"):
            registry.swap("m", narrow)

    def test_swap_rejects_unfitted(self, cluster_data):
        X, y = cluster_data
        registry = ModelRegistry(n_shards=1)
        registry.register("m", _fit(X, y))
        with pytest.raises(DataError):
            registry.swap("m", SomClassifier(BinarySom(8, X.shape[1], seed=0)))

    def test_queued_batches_resolve_on_the_new_model(self, cluster_data):
        # Batches queued before the swap (shards not yet started) must all
        # resolve -- scored by the new model once the workers run.
        X, y = cluster_data
        old = _fit(X, y, seed=1)
        new = _fit(X, y, seed=9, n_neurons=24, epochs=10)
        registry = ModelRegistry(n_shards=1, queue_capacity=16)
        registry.register("m", old)
        requests = []
        for index in range(8):
            request, batch = _direct_batch("m", X[index], index)
            requests.append(request)
            registry.submit(batch)
        registry.swap("m", new)
        registry.start()
        try:
            labels = [request.pending.result(10.0).label for request in requests]
        finally:
            registry.stop()
        np.testing.assert_array_equal(labels, new.predict(X[:8]))


# --------------------------------------------------------------------- #
# Service hot-swap under load (the acceptance criterion)
# --------------------------------------------------------------------- #
class TestServiceSwapUnderLoad:
    def test_swap_with_hundred_queued_requests_drops_nothing(self, cluster_data):
        X, y = cluster_data
        old = _fit(X, y, seed=1)
        new = _fit(X, y, seed=9, n_neurons=24, epochs=10)
        config = ServiceConfig(
            batch_size=256,
            max_delay_ms=60_000.0,
            max_pending=1024,
            cache_capacity=0,
        )
        service = StreamingInferenceService(config=config)
        service.register_model("m", old)
        rows = [X[i % X.shape[0]] for i in range(120)]
        with service:
            futures = [service.submit(row, model="m") for row in rows]
            assert service.pending_requests >= 100
            service.swap_model("m", ModelSnapshot.of(new))
            service.flush()
            responses = [future.result(10.0) for future in futures]
        # Zero drops, zero errors, and the queued work was answered by the
        # post-swap map (the batch was cut after the shards flipped).
        assert len(responses) == 120
        np.testing.assert_array_equal(
            [response.label for response in responses], new.predict(np.vstack(rows))
        )
        assert service.metrics_snapshot().model_swaps == 1

    def test_swap_invalidates_cache(self, cluster_data):
        X, y = cluster_data
        old = _fit(X, y, seed=1)
        new = _fit(X, y, seed=9, n_neurons=24, epochs=10)
        service = StreamingInferenceService(
            config=ServiceConfig(batch_size=4, max_delay_ms=2.0, cache_capacity=512)
        )
        service.register_model("m", old)
        with service:
            first = service.classify("m", X[:1])[0]
            assert service.classify("m", X[:1])[0].cached
            service.swap_model("m", new)
            refreshed = service.classify("m", X[:1])[0]
            assert not refreshed.cached  # cache was invalidated by the swap
            assert refreshed.neuron == new.predict_batch(X[:1]).neurons[0]
        assert first.neuron == old.predict_batch(X[:1]).neurons[0]

    def test_swap_on_bound_registry_still_invalidates_service_cache(self, cluster_data):
        # Going through service.registry.swap (or api.swap on the registry)
        # must not leave the service's cache serving the old map: the
        # registry's retired hook carries the invalidation either way.
        X, y = cluster_data
        old = _fit(X, y, seed=1)
        new = _fit(X, y, seed=9, n_neurons=24, epochs=10)
        service = StreamingInferenceService(
            config=ServiceConfig(batch_size=4, max_delay_ms=2.0, cache_capacity=512)
        )
        service.register_model("m", old)
        with service:
            service.classify("m", X[:1])
            assert service.classify("m", X[:1])[0].cached
            service.registry.swap("m", new)  # bypasses service.swap_model
            refreshed = service.classify("m", X[:1])[0]
            assert not refreshed.cached
            assert refreshed.neuron == new.predict_batch(X[:1]).neurons[0]

    def test_concurrent_submitters_across_swap_see_no_failures(self, cluster_data):
        X, y = cluster_data
        old = _fit(X, y, seed=1)
        new = _fit(X, y, seed=9, n_neurons=24, epochs=10)
        service = StreamingInferenceService(
            config=ServiceConfig(
                batch_size=8, max_delay_ms=1.0, cache_capacity=0, max_pending=4096
            )
        )
        service.register_model("m", old)
        failures: list[BaseException] = []
        answered = []

        def run(worker):
            rng = np.random.default_rng(worker)
            try:
                futures = [
                    service.submit(
                        X[int(rng.integers(0, 30))], model="m", stream_id=f"cam-{worker}"
                    )
                    for _ in range(60)
                ]
                answered.extend(future.result(30.0) for future in futures)
            except BaseException as error:
                failures.append(error)

        with service:
            threads = [threading.Thread(target=run, args=(w,)) for w in range(4)]
            for thread in threads:
                thread.start()
            service.swap_model("m", new)
            for thread in threads:
                thread.join()
        assert not failures
        assert len(answered) == 240


# --------------------------------------------------------------------- #
# Cross-request dedup of identical in-flight signatures
# --------------------------------------------------------------------- #
class TestInFlightDedup:
    def test_identical_queued_signatures_coalesce(self, trained_bsom_classifier, cluster_data):
        X, _ = cluster_data
        config = ServiceConfig(
            batch_size=256, max_delay_ms=60_000.0, cache_capacity=0, max_pending=64
        )
        service = StreamingInferenceService(config=config)
        service.register_model("m", trained_bsom_classifier)
        with service:
            futures = [service.submit(X[i % 5], model="m") for i in range(50)]
            # Only the 5 distinct signatures occupy pending-budget slots.
            assert service.pending_requests == 5
            service.flush()
            responses = [future.result(10.0) for future in futures]
        expected = trained_bsom_classifier.predict(np.vstack([X[i % 5] for i in range(50)]))
        np.testing.assert_array_equal([r.label for r in responses], expected)
        assert sum(1 for r in responses if r.deduplicated) == 45
        snapshot = service.metrics_snapshot()
        assert snapshot.dedup_hits == 45
        assert snapshot.responses_total == 50

    def test_followers_carry_their_own_identity(self, trained_bsom_classifier, cluster_data):
        X, _ = cluster_data
        config = ServiceConfig(batch_size=256, max_delay_ms=60_000.0, cache_capacity=0)
        service = StreamingInferenceService(config=config)
        service.register_model("m", trained_bsom_classifier)
        with service:
            first = service.submit(X[0], model="m", stream_id="cam-a")
            second = service.submit(X[0], model="m", stream_id="cam-b")
            service.flush()
            a, b = first.result(10.0), second.result(10.0)
        assert not a.deduplicated and b.deduplicated
        assert (a.stream_id, b.stream_id) == ("cam-a", "cam-b")
        assert a.request_id != b.request_id
        assert (a.label, a.neuron) == (b.label, b.neuron)

    def test_dedup_respects_model_boundaries(
        self, trained_bsom_classifier, trained_csom_classifier, cluster_data
    ):
        X, _ = cluster_data
        config = ServiceConfig(batch_size=256, max_delay_ms=60_000.0, cache_capacity=0)
        service = StreamingInferenceService(config=config)
        service.register_model("b", trained_bsom_classifier)
        service.register_model("c", trained_csom_classifier)
        with service:
            one = service.submit(X[0], model="b")
            two = service.submit(X[0], model="c")  # same bits, different model
            service.flush()
            one.result(10.0), two.result(10.0)
        assert service.metrics_snapshot().dedup_hits == 0

    def test_failed_dispatch_fails_followers_too(
        self, trained_bsom_classifier, cluster_data
    ):
        # A batch that cannot be dispatched must deliver its error to the
        # deduplicated followers as well, never leave them unresolved.
        X, _ = cluster_data
        config = ServiceConfig(batch_size=256, max_delay_ms=60_000.0, cache_capacity=0)
        service = StreamingInferenceService(config=config)
        service.register_model("m", trained_bsom_classifier)
        with service:
            primary = service.submit(X[0], model="m")
            follower = service.submit(X[0], model="m")
            # Evict behind the service's back: the lane batch is still
            # buffered, so its dispatch at flush() fails with
            # UnknownModelError, which must reach both futures.
            service.registry.evict("m")
            service.flush()
            with pytest.raises(UnknownModelError):
                primary.result(5.0)
            with pytest.raises(UnknownModelError):
                follower.result(5.0)
            assert service.pending_requests == 0

    def test_dedup_vs_cache_accounting(self, trained_bsom_classifier, cluster_data):
        X, _ = cluster_data
        config = ServiceConfig(batch_size=4, max_delay_ms=2.0, cache_capacity=512)
        service = StreamingInferenceService(config=config)
        service.register_model("m", trained_bsom_classifier)
        with service:
            service.classify("m", X[:1])
            repeat = service.classify("m", X[:1])[0]
        assert repeat.cached and not repeat.deduplicated
        snapshot = service.metrics_snapshot()
        assert snapshot.cache_hits == 1 and snapshot.dedup_hits == 0


# --------------------------------------------------------------------- #
# Eviction fails queued futures promptly
# --------------------------------------------------------------------- #
class TestEvictionFailsFutures:
    def test_registry_evict_fails_queued_batches(self, trained_bsom_classifier, cluster_data):
        X, _ = cluster_data
        registry = ModelRegistry(n_shards=2, queue_capacity=8)
        registry.register("m", trained_bsom_classifier)
        requests = []
        for index in range(6):
            request, batch = _direct_batch("m", X[index], index)
            requests.append(request)
            registry.submit(batch)
        # Shards never started: without the eviction fix these futures
        # would hang forever.
        registry.evict("m")
        for request in requests:
            with pytest.raises(ModelEvictedError):
                request.pending.result(1.0)

    def test_service_evict_completes_every_future(self, trained_bsom_classifier, cluster_data):
        X, _ = cluster_data
        config = ServiceConfig(
            batch_size=256, max_delay_ms=60_000.0, cache_capacity=0, max_pending=64
        )
        service = StreamingInferenceService(config=config)
        service.register_model("m", trained_bsom_classifier)
        with service:
            futures = [service.submit(X[i % 4], model="m") for i in range(12)]
            service.evict_model("m")
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(5.0))
                except ModelEvictedError as error:
                    outcomes.append(error)
            assert len(outcomes) == 12
            # Everything submitted was still lane-buffered, so all fail.
            assert all(isinstance(o, ModelEvictedError) for o in outcomes)
            assert service.pending_requests == 0

    def test_evicted_error_is_unknown_model_error(self):
        error = ModelEvictedError("hall", ("lobby",))
        assert isinstance(error, UnknownModelError)
        assert "evicted" in str(error) and "lobby" in str(error)


# --------------------------------------------------------------------- #
# The repro.api facade
# --------------------------------------------------------------------- #
class TestApiFacade:
    def test_train_save_load_serve_swap_roundtrip(self, tmp_path, cluster_data):
        X, y = cluster_data
        classifier = api.train(X, y, n_neurons=16, epochs=6, seed=0, backend="packed")
        assert classifier.score(X, y) > 0.9
        path = api.save(classifier, tmp_path / "hall.npz")
        snapshot = api.load(path)
        assert snapshot.backend == "packed"

        improved = api.train(X, y, n_neurons=24, epochs=10, seed=0)
        service = api.serve(
            {"hall": snapshot},
            config=ServiceConfig(batch_size=8, max_delay_ms=2.0),
        )
        try:
            before = [r.label for r in service.classify("hall", X[:16])]
            np.testing.assert_array_equal(
                before, snapshot.to_classifier().predict(X[:16])
            )
            previous = api.swap(service, "hall", api.snapshot(improved))
            np.testing.assert_array_equal(previous.predict(X[:16]), before)
            after = [r.label for r in service.classify("hall", X[:16])]
            np.testing.assert_array_equal(after, improved.predict(X[:16]))
        finally:
            service.stop()

    def test_serve_accepts_paths(self, tmp_path, cluster_data):
        X, y = cluster_data
        path = api.save(api.train(X, y, n_neurons=16, epochs=4, seed=0), tmp_path / "m")
        service = api.serve({"m": path}, start=False)
        assert "m" in service.registry
        with service:
            assert service.classify("m", X[:2])

    def test_swap_works_on_bare_registry(self, cluster_data):
        X, y = cluster_data
        registry = ModelRegistry(n_shards=1)
        registry.register("m", api.train(X, y, n_neurons=16, epochs=4, seed=0))
        replacement = api.train(X, y, n_neurons=16, epochs=6, seed=1)
        api.swap(registry, "m", api.snapshot(replacement))
        np.testing.assert_array_equal(
            registry.classifier("m").predict(X[:8]), replacement.predict(X[:8])
        )

    def test_train_kind_validation(self, cluster_data):
        X, y = cluster_data
        with pytest.raises(ConfigurationError):
            api.train(X, y, som="qsom")
        with pytest.raises(ConfigurationError):
            api.train(X, y, som="csom", update_rule=object())

    def test_train_csom(self, cluster_data):
        X, y = cluster_data
        classifier = api.train(X, y, som="csom", n_neurons=16, epochs=6, seed=0)
        from repro.core import KohonenSom

        assert isinstance(classifier.som, KohonenSom)

    def test_top_level_lazy_exports(self):
        import repro

        assert repro.train is api.train
        assert repro.ModelSnapshot is ModelSnapshot
        assert repro.api is api

    def test_deprecated_entry_points_warn_and_forward(self, tmp_path, cluster_data):
        import repro
        from repro.core.serialization import load_model as canonical_load

        X, y = cluster_data
        with pytest.warns(DeprecationWarning, match="repro.api.save"):
            save_model = repro.save_model
        with pytest.warns(DeprecationWarning, match="repro.api.load"):
            load_model = repro.load_model
        assert load_model is canonical_load
        classifier = api.train(X, y, n_neurons=8, epochs=2, seed=0)
        loaded = load_model(save_model(classifier, tmp_path / "d.npz"))
        np.testing.assert_array_equal(loaded.predict(X[:4]), classifier.predict(X[:4]))


# --------------------------------------------------------------------- #
# Pipeline layer speaks snapshots
# --------------------------------------------------------------------- #
class TestPipelineSnapshotAdoption:
    def test_recognition_system_accepts_snapshot(self, trained_bsom_classifier):
        from repro.pipeline import RecognitionSystem

        snapshot = ModelSnapshot.of(trained_bsom_classifier)
        system = RecognitionSystem(snapshot)
        assert isinstance(system.classifier, SomClassifier)
        assert system.classifier is not trained_bsom_classifier  # private copy

    def test_recognition_system_rejects_bare_map_snapshot(self):
        from repro.pipeline import RecognitionSystem

        with pytest.raises(DataError):
            RecognitionSystem(ModelSnapshot.of(BinarySom(4, 8, seed=0)))

    def test_online_learner_snapshot_publishes_updates(self, cluster_data):
        from repro.pipeline import OnlineLearner, OnlineLearnerConfig

        X, y = cluster_data
        classifier = _fit(X, y, epochs=8)
        learner = OnlineLearner(
            classifier,
            X,
            y,
            config=OnlineLearnerConfig(min_signatures=5, online_epochs=1),
        )
        snapshot = learner.snapshot(metadata={"site": "hall"})
        assert snapshot.is_fitted
        assert snapshot.metadata["online_updates"] == "0"
        assert snapshot.metadata["site"] == "hall"
        # Snapshot is decoupled: keep training the live map, snapshot fixed.
        frozen = snapshot.weights.copy()
        rng = np.random.default_rng(3)
        novel = rng.integers(0, 2, size=(6, X.shape[1])).astype(np.uint8)
        for row in novel:
            learner.observe(99, row)
        np.testing.assert_array_equal(snapshot.weights, frozen)
        updated = learner.snapshot()
        assert updated.metadata["online_updates"] == str(len(learner.updates))

    def test_online_snapshot_can_hot_swap_into_service(self, cluster_data):
        from repro.pipeline import OnlineLearner

        X, y = cluster_data
        classifier = _fit(X, y, epochs=8)
        learner = OnlineLearner(classifier, X, y)
        service = api.serve(
            {"hall": ModelSnapshot.of(classifier)},
            config=ServiceConfig(batch_size=4, max_delay_ms=2.0),
        )
        try:
            api.swap(service, "hall", learner.snapshot())
            responses = service.classify("hall", X[:8])
            assert len(responses) == 8
        finally:
            service.stop()

    def test_online_learner_publishes_full_then_deltas(self, cluster_data):
        from repro.core import DeltaSnapshot
        from repro.pipeline import OnlineLearner, OnlineLearnerConfig

        X, y = cluster_data
        classifier = _fit(X, y, epochs=8)
        published = []
        learner = OnlineLearner(
            classifier,
            X,
            y,
            config=OnlineLearnerConfig(
                min_signatures=6, online_epochs=1, publish_every=4
            ),
            publisher=published.append,
        )
        rng = np.random.default_rng(7)
        novel = np.where(
            rng.random((12, X.shape[1])) < 0.05, X[0], 1 - X[0]
        ).astype(np.uint8)
        for row in novel:
            learner.observe(500, row)

        assert learner.observed == 12
        assert len(published) == 3  # at observations 4, 8, 12
        assert isinstance(published[0], ModelSnapshot)
        assert all(isinstance(d, DeltaSnapshot) for d in published[1:])
        # The delta chain materialises bit-exactly, and the result swaps
        # into a live service like any full snapshot.
        snapshot = published[0]
        for delta in published[1:]:
            snapshot = delta.apply(snapshot)
        np.testing.assert_array_equal(
            snapshot.weights, learner.published_base.weights
        )
        service = api.serve(
            {"hall": ModelSnapshot.of(classifier)},
            config=ServiceConfig(batch_size=4, max_delay_ms=2.0),
        )
        try:
            api.swap(service, "hall", snapshot)
            assert len(service.classify("hall", X[:4])) == 4
        finally:
            service.stop()


# --------------------------------------------------------------------- #
# Eviction racing live submission: terminate, never hang
# --------------------------------------------------------------------- #
class TestEvictSubmitRace:
    def test_every_request_terminates_under_concurrent_evict(self, cluster_data):
        """Stress the evict/submit race: four threads submit continuously
        while the model is evicted mid-stream.  Every future must reach a
        terminal state -- a result or a service error -- within its
        timeout; a single :class:`ResultTimeoutError` means a request was
        left hanging and fails the test."""
        X, y = cluster_data
        config = ServiceConfig(
            batch_size=8, max_delay_ms=1.0, cache_capacity=0, max_pending=4096
        )
        service = StreamingInferenceService(config=config)
        service.register_model("m", _fit(X, y))
        stop_submitting = threading.Event()
        futures: list = []
        futures_lock = threading.Lock()

        def submitter(offset: int) -> None:
            index = offset
            while not stop_submitting.is_set():
                try:
                    future = service.submit(X[index % len(X)], model="m")
                except ServiceError:
                    # Evicted (UnknownModelError) or saturated: a refusal
                    # is itself a prompt, terminal outcome.
                    continue
                with futures_lock:
                    futures.append(future)
                index += 1

        with service:
            threads = [
                threading.Thread(target=submitter, args=(k,), daemon=True)
                for k in range(4)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.05)  # let the submitters build up steam
            service.evict_model("m")
            time.sleep(0.02)  # keep racing against the evicted name
            stop_submitting.set()
            for thread in threads:
                thread.join(5.0)
            assert not any(thread.is_alive() for thread in threads)
            resolved = failed = 0
            for future in futures:
                try:
                    future.result(10.0)
                    resolved += 1
                except ResultTimeoutError:
                    pytest.fail("a request neither resolved nor failed")
                except ServiceError:
                    failed += 1
            assert resolved + failed == len(futures)
            # The race genuinely exercised both sides of the eviction.
            assert resolved >= 1 and failed >= 1
            assert service.pending_requests == 0


# --------------------------------------------------------------------- #
# submit_many all-or-nothing drain (dedup followers included)
# --------------------------------------------------------------------- #
class TestSubmitManyDrain:
    def test_overload_drain_reraises_and_releases_budget(
        self, trained_bsom_classifier, cluster_data
    ):
        X, _ = cluster_data
        config = ServiceConfig(
            batch_size=256, max_delay_ms=20.0, cache_capacity=0, max_pending=3
        )
        service = StreamingInferenceService(config=config)
        service.register_model("m", trained_bsom_classifier)
        with service:
            # Rows 0,0,1,2 fit (the duplicate coalesces, consuming no
            # budget slot); row 3 is refused by the 3-slot pending budget.
            rows = np.vstack([X[0], X[0], X[1], X[2], X[3]])
            with pytest.raises(ServiceOverloadedError):
                service.submit_many(rows, model="m")
            assert service.metrics_snapshot().dedup_hits == 1
            # The drain awaited the admitted futures (follower included):
            # the deadline dispatcher cut their lane, so the budget frees
            # without any caller-side flush.
            deadline = time.monotonic() + 5.0
            while service.pending_requests and time.monotonic() < deadline:
                time.sleep(0.005)
            assert service.pending_requests == 0
            # A retried bulk submission now fits cleanly.
            futures = service.submit_many(rows[2:], model="m")
            service.flush()
            assert all(f.result(10.0) is not None for f in futures)


# --------------------------------------------------------------------- #
# stop() racing submit: followers of the doomed primary must fail too
# --------------------------------------------------------------------- #
class TestStopRaceFollowers:
    def test_stop_race_fans_error_to_followers(
        self, trained_bsom_classifier, cluster_data
    ):
        """White-box: a follower that coalesces onto a primary inside the
        stop() race window (after the dedup-table insert, before the
        running check) must receive the primary's terminal error, not hang
        until its timeout."""
        X, _ = cluster_data
        config = ServiceConfig(batch_size=256, max_delay_ms=60_000.0, cache_capacity=0)
        service = StreamingInferenceService(config=config)
        service.register_model("m", trained_bsom_classifier)
        service.start()
        follower_futures: list = []
        real_lock = service._state_lock

        class RaceWindowLock:
            """Proxy for the service's state lock: the first acquisition
            (the doomed primary's) first lets a follower attach and stops
            the service -- the exact interleaving of the race."""

            def __init__(self):
                self.armed = True

            def __enter__(self):
                if self.armed:
                    self.armed = False
                    # The primary is in the dedup table already, so this
                    # coalesces (the follower path never takes this lock).
                    follower_futures.append(service.submit(X[0], model="m"))
                    service.stop()
                return real_lock.__enter__()

            def __exit__(self, *exc_info):
                return real_lock.__exit__(*exc_info)

        service._state_lock = RaceWindowLock()
        with pytest.raises(ServiceError):
            service.submit(X[0], model="m")
        assert len(follower_futures) == 1
        with pytest.raises(ServiceError):
            follower_futures[0].result(1.0)
        assert service.pending_requests == 0
