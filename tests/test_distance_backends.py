"""Property-style tests for the pluggable distance backends.

Randomised tri-state weight matrices times binary inputs, asserting that
the GEMM, packed-uint64, naive and hybrid backends agree *bit-exactly* --
including the all-``#`` neuron edge case the paper calls out (distance 0
to everything) -- plus the weights-version operand cache: incremental
row refresh during training must leave the cached operands identical to a
fresh ``prepare``, and train-then-predict must return the same labels with
and without the cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BinarySom, KohonenSom, SomClassifier
from repro.core.backends import (
    BACKEND_ENV_VAR,
    HAS_BITWISE_COUNT,
    GemmBackend,
    HybridBackend,
    NaiveBackend,
    PackedBackend,
    calibrate_backend,
    make_backend,
    pack_bits_to_words,
    popcount_words,
    resolve_backend,
    unpack_words_to_bits,
    words_per_vector,
)
from repro.core.tristate import DONT_CARE
from repro.errors import ConfigurationError, DataError


def _all_backends():
    return [
        GemmBackend(),
        PackedBackend(),
        PackedBackend(use_native_popcount=False),
        NaiveBackend(),
        HybridBackend(),
    ]


def _random_case(rng, n_neurons, n_samples, n_bits):
    weights = rng.integers(0, 3, size=(n_neurons, n_bits), dtype=np.int8)
    inputs = rng.integers(0, 2, size=(n_samples, n_bits), dtype=np.int8)
    return weights, inputs


class TestBackendParity:
    # Bit widths straddle the word boundary on purpose: sub-word (5, 63),
    # exact words (64, 768) and a padded tail (100, 300).
    @pytest.mark.parametrize("n_bits", [5, 63, 64, 100, 300, 768])
    def test_randomized_parity_with_oracle(self, n_bits):
        rng = np.random.default_rng(n_bits)
        oracle = NaiveBackend()
        for trial in range(3):
            n_neurons = int(rng.integers(1, 70))
            n_samples = int(rng.integers(1, 130))
            weights, inputs = _random_case(rng, n_neurons, n_samples, n_bits)
            expected = oracle.pairwise(oracle.prepare(weights), inputs)
            for backend in _all_backends():
                prepared = backend.prepare(weights)
                assert np.array_equal(backend.pairwise(prepared, inputs), expected)
                assert np.array_equal(
                    backend.batch_one(prepared, inputs[0]), expected[0]
                )

    def test_all_dont_care_neuron_has_distance_zero_to_everything(self):
        # The paper's edge case: a neuron whose weight vector is all '#'
        # matches every input with distance 0.
        rng = np.random.default_rng(7)
        weights, inputs = _random_case(rng, 12, 40, 768)
        weights[3] = DONT_CARE
        for backend in _all_backends():
            distances = backend.pairwise(backend.prepare(weights), inputs)
            assert not distances[:, 3].any()

    def test_fully_committed_weights_match_plain_hamming(self):
        rng = np.random.default_rng(11)
        weights = rng.integers(0, 2, size=(9, 129), dtype=np.int8)  # no '#'
        inputs = rng.integers(0, 2, size=(17, 129), dtype=np.int8)
        expected = (inputs[:, None, :] != weights[None, :, :]).sum(axis=2)
        for backend in _all_backends():
            distances = backend.pairwise(backend.prepare(weights), inputs)
            assert np.array_equal(distances, expected)

    # (33, 65): the hybrid routes packed words through the GEMM (unpack
    # path); (512, 2): through the packed kernel -- both must be exact.
    @pytest.mark.parametrize("n_neurons,n_samples", [(33, 65), (512, 2)])
    def test_pairwise_packed_matches_unpacked(self, n_neurons, n_samples):
        rng = np.random.default_rng(3)
        weights, inputs = _random_case(rng, n_neurons, n_samples, 200)
        words = pack_bits_to_words(inputs.astype(np.uint8))
        for backend in (PackedBackend(), HybridBackend()):
            prepared = backend.prepare(weights)
            assert np.array_equal(
                backend.pairwise_packed(prepared, words),
                backend.pairwise(prepared, inputs),
            )


class TestPackingHelpers:
    @pytest.mark.parametrize("n_bits", [1, 64, 100, 768])
    def test_words_roundtrip(self, n_bits):
        rng = np.random.default_rng(n_bits)
        bits = rng.integers(0, 2, size=(5, n_bits), dtype=np.uint8)
        words = pack_bits_to_words(bits)
        assert words.shape == (5, words_per_vector(n_bits))
        assert np.array_equal(unpack_words_to_bits(words, n_bits), bits)

    def test_word_bytes_match_signature_key_for_768_bits(self):
        # 768 bits are exactly 12 words, so the serving layer's word-bytes
        # cache key is byte-identical to the historical packbits key.
        from repro.signatures.packing import signature_key

        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=768, dtype=np.uint8)
        assert pack_bits_to_words(bits).tobytes() == signature_key(bits)

    @pytest.mark.skipif(not HAS_BITWISE_COUNT, reason="numpy < 2.0")
    def test_lut_popcount_matches_native(self):
        rng = np.random.default_rng(1)
        words = rng.integers(0, 2**63, size=(31, 7), dtype=np.uint64)
        assert np.array_equal(
            popcount_words(words, use_native=False),
            popcount_words(words, use_native=True),
        )


class TestSelection:
    def test_make_backend_names(self):
        for name in ("gemm", "packed", "naive", "hybrid"):
            assert make_backend(name).name == name
        with pytest.raises(ConfigurationError):
            make_backend("simd")

    def test_resolve_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "gemm")
        assert resolve_backend(None).name == "gemm"
        monkeypatch.setenv(BACKEND_ENV_VAR, "auto")
        assert isinstance(resolve_backend(None), HybridBackend)
        monkeypatch.delenv(BACKEND_ENV_VAR)
        assert isinstance(resolve_backend(None), HybridBackend)

    def test_explicit_instance_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "gemm")
        backend = PackedBackend()
        assert resolve_backend(backend) is backend

    def test_som_constructor_and_set_backend(self):
        som = BinarySom(8, 32, seed=0, backend="gemm")
        assert som.backend.name == "gemm"
        som.set_backend("packed")
        assert som.backend.name == "packed"

    def test_classifier_forwards_backend(self):
        som = BinarySom(8, 32, seed=0)
        SomClassifier(som, backend="naive")
        assert som.backend.name == "naive"

    def test_calibrate_backend_returns_candidate(self):
        backend = calibrate_backend(16, 64, batch_size=8, repeats=1)
        assert backend.name in ("gemm", "packed")


class TestOperandCache:
    def test_training_bumps_weights_version(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(20, 48), dtype=np.int8)
        som = BinarySom(6, 48, seed=1)
        before = som.weights_version
        som.fit(X, epochs=1, seed=2, record_history=False)
        assert som.weights_version == before + X.shape[0]
        som.set_weights(som.weights)
        assert som.weights_version == before + X.shape[0] + 1
        csom = KohonenSom(6, 48, seed=1)
        csom.partial_fit(X[0], 0, 1)
        assert csom.weights_version == 1

    @pytest.mark.parametrize("backend", ["gemm", "packed", "hybrid"])
    def test_incremental_refresh_equals_fresh_prepare(self, backend):
        # Train step by step; the cache migrates its operands by patching
        # only the touched rows.  Distances from the (incrementally
        # maintained) cache must equal a from-scratch prepare on the
        # current weights at every step.
        rng = np.random.default_rng(5)
        X = rng.integers(0, 2, size=(30, 96), dtype=np.int8)
        som = BinarySom(10, 96, seed=3, backend=backend)
        oracle = NaiveBackend()
        for step, row in enumerate(X):
            som.partial_fit(row, 0, 1)
            expected = oracle.pairwise(oracle.prepare(som.weights.values), X)
            assert np.array_equal(som.distance_matrix(X), expected), step

    def test_cache_entry_reused_across_queries(self):
        rng = np.random.default_rng(9)
        X = rng.integers(0, 2, size=(16, 64), dtype=np.int8)
        som = BinarySom(8, 64, seed=0, backend="packed")
        som.distance_matrix(X)
        first = som._operands()
        assert som._operands() is first  # same version -> same object
        som.partial_fit(X[0], 0, 1)
        som.distance_matrix(X)
        # Migrated in place by update_rows, not re-prepared.
        assert som._operands() is first

    def test_set_weights_invalidates_cache(self):
        rng = np.random.default_rng(2)
        X = rng.integers(0, 2, size=(8, 64), dtype=np.int8)
        som = BinarySom(4, 64, seed=0, backend="packed")
        som.distance_matrix(X)
        stale = som._operands()
        new_weights = rng.integers(0, 3, size=(4, 64), dtype=np.int8)
        som.set_weights(new_weights)
        fresh = som._operands()
        assert fresh is not stale
        oracle = NaiveBackend()
        assert np.array_equal(
            som.distance_matrix(X), oracle.pairwise(oracle.prepare(new_weights), X)
        )

    def test_train_then_predict_same_labels_with_and_without_cache(self):
        # Acceptance check: the operand cache must be semantically
        # invisible.  Train (which exercises the incremental refresh),
        # predict through the warm cache, then drop the cache and predict
        # again -- identical labels, distances and neurons.
        rng = np.random.default_rng(17)
        X = rng.integers(0, 2, size=(120, 96), dtype=np.int8)
        y = np.repeat(np.arange(4), 30)
        clf = SomClassifier(
            BinarySom(12, 96, seed=4), rejection_percentile=99.0
        ).fit(X, y, epochs=3, seed=5)
        warm = clf.predict_batch(X)
        clf.som._operand_cache.invalidate()  # cold: re-prepare from weights
        cold = clf.predict_batch(X)
        assert np.array_equal(warm.labels, cold.labels)
        assert np.array_equal(warm.neurons, cold.neurons)
        assert np.array_equal(warm.distances, cold.distances)
        assert np.array_equal(warm.rejected, cold.rejected)


class TestClassifierPackedPath:
    def test_predict_batch_packed_matches_unpacked_bsom(self):
        rng = np.random.default_rng(21)
        X = rng.integers(0, 2, size=(80, 128), dtype=np.int8)
        y = np.repeat(np.arange(4), 20)
        clf = SomClassifier(BinarySom(8, 128, seed=1)).fit(X, y, epochs=2, seed=2)
        words = pack_bits_to_words(X.astype(np.uint8))
        plain = clf.predict_batch(X)
        packed = clf.predict_batch_packed(words)
        assert np.array_equal(plain.labels, packed.labels)
        assert np.array_equal(plain.distances, packed.distances)

    def test_predict_batch_packed_falls_back_for_csom(self):
        rng = np.random.default_rng(22)
        X = rng.integers(0, 2, size=(60, 64), dtype=np.int8)
        y = np.repeat(np.arange(3), 20)
        clf = SomClassifier(KohonenSom(6, 64, seed=1)).fit(X, y, epochs=2, seed=2)
        words = pack_bits_to_words(X.astype(np.uint8))
        assert np.array_equal(
            clf.predict_batch(X).labels, clf.predict_batch_packed(words).labels
        )


class TestValidationFastPath:
    def test_boundary_still_rejects_garbage(self):
        from repro.core.distance import pairwise_masked_hamming
        from repro.signatures.packing import pack_bits

        weights = np.zeros((2, 8), dtype=np.int8)
        bad = np.full((1, 8), 7)
        with pytest.raises(DataError):
            pairwise_masked_hamming(weights, bad)
        with pytest.raises(DataError):
            pack_bits(np.full(8, 9))

    def test_fast_path_skips_the_scan(self):
        from repro.core.distance import pairwise_masked_hamming

        rng = np.random.default_rng(1)
        weights = rng.integers(0, 3, size=(4, 16), dtype=np.int8)
        inputs = rng.integers(0, 2, size=(6, 16), dtype=np.int8)
        assert np.array_equal(
            pairwise_masked_hamming(weights, inputs),
            pairwise_masked_hamming(weights, inputs, validate=False),
        )
