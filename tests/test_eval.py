"""Unit tests for metrics, the Wilcoxon test and the experiment runners."""

import numpy as np
import pytest

from repro.core import BinarySom, SomClassifier
from repro.datasets import make_signature_clusters
from repro.errors import ConfigurationError, DataError
from repro.eval import (
    Table1Config,
    accuracy,
    classification_report,
    confusion_matrix,
    format_markdown_table,
    format_table,
    per_class_accuracy,
    rank_sum_statistic,
    run_figure3,
    run_neuron_sweep,
    run_table1,
    run_table2,
    wilcoxon_rank_sum,
)
from repro.eval.experiments import NeuronSweepConfig, PAPER_ITERATIONS
from repro.eval.reporting import format_percentage
from repro.eval.stats import normal_sf

scipy_stats = pytest.importorskip("scipy.stats")


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 4])) == pytest.approx(2 / 3)

    def test_per_class_accuracy(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        per_class = per_class_accuracy(y_true, y_pred)
        assert per_class[0] == pytest.approx(0.5)
        assert per_class[1] == pytest.approx(1.0)

    def test_confusion_matrix(self):
        matrix, labels = confusion_matrix(np.array([0, 0, 1]), np.array([0, 1, 1]))
        assert labels.tolist() == [0, 1]
        assert matrix.tolist() == [[1, 1], [0, 1]]
        assert matrix.sum() == 3

    def test_confusion_matrix_with_unknown_prediction(self):
        matrix, labels = confusion_matrix(np.array([0, 1]), np.array([-1, 1]))
        assert -1 in labels.tolist()

    def test_classification_report(self):
        report = classification_report(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]))
        assert report.accuracy == pytest.approx(0.75)
        assert report.error_rate == pytest.approx(0.25)
        assert report.n_samples == 4
        assert report.rejected_fraction == 0.0

    def test_validation(self):
        with pytest.raises(DataError):
            accuracy(np.array([1, 2]), np.array([1]))
        with pytest.raises(DataError):
            accuracy(np.array([]), np.array([]))


class TestWilcoxon:
    def test_z_matches_scipy_ranksums(self, rng):
        a = rng.normal(0.85, 0.01, 10)
        b = rng.normal(0.84, 0.01, 10)
        _, _, z = rank_sum_statistic(a, b)
        scipy_z, scipy_p = scipy_stats.ranksums(a, b)
        assert z == pytest.approx(scipy_z, abs=1e-9)

    def test_two_sided_p_matches_scipy(self, rng):
        for seed in range(5):
            local = np.random.default_rng(seed)
            a = local.normal(0.0, 1.0, 12)
            b = local.normal(0.4, 1.0, 9)
            result = wilcoxon_rank_sum(a, b, alternative="two-sided")
            _, scipy_p = scipy_stats.ranksums(a, b)
            assert result.p_value == pytest.approx(scipy_p, abs=1e-9)

    def test_one_sided_p_matches_scipy(self, rng):
        a = rng.normal(1.0, 1.0, 10)
        b = rng.normal(0.0, 1.0, 10)
        result = wilcoxon_rank_sum(a, b, alternative="greater")
        _, scipy_p = scipy_stats.ranksums(a, b, alternative="greater")
        assert result.p_value == pytest.approx(scipy_p, abs=1e-9)

    def test_clear_separation_gives_paper_mean_ranks(self):
        """Ten values all smaller than ten others: mean ranks 5.5 and 15.5, |z| = 4
        appears repeatedly in the paper's Table II."""
        low = np.linspace(0.80, 0.81, 10)
        high = np.linspace(0.85, 0.86, 10)
        mean_low, mean_high, z = rank_sum_statistic(low, high)
        assert mean_low == pytest.approx(5.5)
        assert mean_high == pytest.approx(15.5)
        assert z == pytest.approx(-3.78, abs=0.3)
        result = wilcoxon_rank_sum(low, high, alternative="less")
        assert result.significant

    def test_identical_samples_not_significant(self):
        values = np.full(10, 0.5)
        result = wilcoxon_rank_sum(values, values)
        assert result.z == 0.0
        assert not result.significant
        assert result.verdict() == "no significant difference"

    def test_verdict_direction(self):
        high = np.linspace(0.9, 0.95, 8)
        low = np.linspace(0.1, 0.15, 8)
        result = wilcoxon_rank_sum(high, low, alternative="greater")
        assert result.verdict("cSOM", "bSOM") == "cSOM better"

    def test_normal_sf(self):
        assert normal_sf(0.0) == pytest.approx(0.5)
        assert normal_sf(1.6449) == pytest.approx(0.05, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilcoxon_rank_sum(np.ones(3), np.ones(3), alternative="bigger")
        with pytest.raises(ConfigurationError):
            wilcoxon_rank_sum(np.ones(3), np.ones(3), alpha=2.0)
        with pytest.raises(DataError):
            rank_sum_statistic(np.array([]), np.ones(3))


class TestExperimentRunners:
    @pytest.fixture(scope="class")
    def toy_dataset(self):
        """A cluster-based stand-in with the SurveillanceDataset interface."""
        from repro.datasets.surveillance import SurveillanceDataset

        X_train, y_train = make_signature_clusters(
            n_identities=4, samples_per_identity=30, n_bits=96, seed=0
        )
        X_test, y_test = make_signature_clusters(
            n_identities=4, samples_per_identity=15, n_bits=96, seed=1
        )
        return SurveillanceDataset(
            train_signatures=X_train,
            train_labels=y_train,
            test_signatures=X_test,
            test_labels=y_test,
            train_frames=np.arange(y_train.size),
            test_frames=np.arange(y_test.size),
            n_bits=96,
        )

    def test_paper_iteration_grid(self):
        assert PAPER_ITERATIONS == (10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 200, 300, 400, 500)
        assert Table1Config().iterations == PAPER_ITERATIONS
        assert Table1Config().repetitions == 10

    def test_run_table1_structure(self, toy_dataset):
        config = Table1Config(iterations=(2, 5), repetitions=3, n_neurons=12)
        result = run_table1(toy_dataset, config)
        assert len(result.rows) == 2
        for row in result.rows:
            assert len(row.csom_scores) == 3
            assert len(row.bsom_scores) == 3
            assert 0.0 <= row.bsom_mean <= 1.0
            assert 0.0 <= row.csom_mean <= 1.0
        assert result.row(5).iterations == 5
        with pytest.raises(ConfigurationError):
            result.row(99)

    def test_run_table2_symbols(self, toy_dataset):
        config = Table1Config(iterations=(2, 5), repetitions=3, n_neurons=12)
        table1 = run_table1(toy_dataset, config)
        table2 = run_table2(table1)
        assert len(table2) == 2
        for row in table2:
            assert row.symbol in {">", "<", "-"}
            assert 0.0 <= row.p_value <= 1.0
            # Mean ranks of two samples of 3 always sum to 2 * 3.5.
            assert row.csom_mean_rank + row.bsom_mean_rank == pytest.approx(7.0)

    def test_table1_config_validation(self):
        with pytest.raises(ConfigurationError):
            Table1Config(iterations=())
        with pytest.raises(ConfigurationError):
            Table1Config(iterations=(0,))
        with pytest.raises(ConfigurationError):
            Table1Config(repetitions=0)

    def test_neuron_sweep(self, toy_dataset):
        rows = run_neuron_sweep(
            toy_dataset,
            NeuronSweepConfig(neuron_counts=(4, 16), repetitions=2, epochs=3),
        )
        assert [row.n_neurons for row in rows] == [4, 16]
        for row in rows:
            assert 0.0 <= row.bsom_accuracy <= 1.0
            assert row.bsom_used_neurons <= row.n_neurons
        # More neurons never hurts much on separable clusters.
        assert rows[1].bsom_accuracy >= rows[0].bsom_accuracy - 0.1

    def test_neuron_sweep_validation(self):
        with pytest.raises(ConfigurationError):
            NeuronSweepConfig(neuron_counts=())

    def test_run_figure3(self, tiny_surveillance):
        result = run_figure3(tiny_surveillance, identities=[0, 1, 2])
        assert result.identities == [0, 1, 2]
        for matrix in result.signature_matrices.values():
            assert matrix.shape[1] == 768
        # Signatures of the same person must be more alike than across people.
        assert result.within_identity_distance < result.between_identity_distance

    def test_run_figure3_unknown_identity(self, tiny_surveillance):
        with pytest.raises(ConfigurationError):
            run_figure3(tiny_surveillance, identities=[99])


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2], [30, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_markdown_table(self):
        text = format_markdown_table(["x", "y"], [["1", "2"]])
        assert text.splitlines()[1] == "|---|---|"
        assert "| 1 | 2 |" in text

    def test_row_width_checked(self):
        with pytest.raises(DataError):
            format_table(["a"], [[1, 2]])
        with pytest.raises(DataError):
            format_table([], [])

    def test_format_percentage(self):
        assert format_percentage(0.8532) == "85.32%"
        assert format_percentage(1.0, 1) == "100.0%"
