"""Parity and property tests for the vectorized vision front-end.

Every fast-path implementation added by the vectorization PR is checked
against its retained scalar oracle on randomized inputs:

* run-based CCL vs the two-pass union-find labeller (both connectivities),
* separable morphology vs the full-kernel shift oracle,
* single-pass blob extraction vs the per-label full-frame rescan,
* the batched offset-``bincount`` histogram vs per-blob ``rgb_histogram``,
* the float32 in-place background model vs the seed's float64 semantics,
* the end-to-end ``RecognitionSystem`` with ``vectorized=True`` vs
  ``vectorized=False``.

Plus the erosion border-semantics regression (edge-touching silhouettes
survive ``binary_open``) and the per-stage pipeline telemetry.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.pipeline import PIPELINE_STAGES, PipelineMetrics
from repro.signatures import (
    MeanThreshold,
    MedianThreshold,
    rgb_histogram,
    rgb_histogram_batch,
)
from repro.vision import (
    BackgroundModel,
    BackgroundSubtractor,
    binary_close,
    binary_close_oracle,
    binary_dilate,
    binary_dilate_oracle,
    binary_erode,
    binary_erode_oracle,
    binary_open,
    binary_open_oracle,
    extract_blobs,
    extract_blobs_oracle,
    label_components,
)


def _canonical(labels: np.ndarray) -> np.ndarray:
    """Renumber a label image by first raster appearance of each label."""
    flat = labels.ravel()
    seen: dict[int, int] = {}
    out = np.zeros_like(flat)
    for i, value in enumerate(flat):
        if value == 0:
            continue
        out[i] = seen.setdefault(int(value), len(seen) + 1)
    return out.reshape(labels.shape)


def _random_masks(seed: int, n: int):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        height = int(rng.integers(1, 48))
        width = int(rng.integers(1, 48))
        yield rng.random((height, width)) < rng.random()


class TestConnectedComponentsParity:
    @pytest.mark.parametrize("connectivity", [4, 8])
    def test_random_masks_match_oracle(self, connectivity):
        for mask in _random_masks(seed=connectivity, n=60):
            fast, n_fast = label_components(mask, connectivity)
            oracle, n_oracle = label_components(
                mask, connectivity, vectorized=False
            )
            assert n_fast == n_oracle
            # Bit-exact, not merely equal up to renumbering: both paths
            # number components by first-pixel raster order.
            assert np.array_equal(fast, oracle)
            # Belt and braces: canonical renumbering also agrees.
            assert np.array_equal(_canonical(fast), _canonical(oracle))

    @pytest.mark.parametrize("connectivity", [4, 8])
    def test_spiral_equivalence_chains(self, connectivity):
        """A spiral maximises label-equivalence chain depth."""
        mask = np.zeros((41, 41), dtype=bool)
        top, left, bottom, right = 0, 0, 40, 40
        while top <= bottom and left <= right:
            mask[top, left : right + 1] = True
            mask[top : bottom + 1, right] = True
            top += 2
            right -= 2
        fast, n_fast = label_components(mask, connectivity)
        oracle, n_oracle = label_components(mask, connectivity, vectorized=False)
        assert n_fast == n_oracle
        assert np.array_equal(fast, oracle)

    def test_single_row_and_column(self):
        row = np.array([[1, 1, 0, 1, 0, 1, 1, 1]], dtype=bool)
        for shaped in (row, row.T):
            for connectivity in (4, 8):
                fast, n = label_components(shaped, connectivity)
                oracle, m = label_components(shaped, connectivity, vectorized=False)
                assert n == m == 3
                assert np.array_equal(fast, oracle)

    def test_vectorized_labels_are_compact_int(self):
        rng = np.random.default_rng(7)
        mask = rng.random((30, 30)) > 0.6
        labels, count = label_components(mask)
        present = set(np.unique(labels).tolist()) - {0}
        assert present == set(range(1, count + 1))
        assert np.issubdtype(labels.dtype, np.integer)


class TestMorphologyParity:
    @pytest.mark.parametrize("radius", [0, 1, 2, 3])
    def test_separable_matches_full_kernel(self, radius):
        pairs = (
            (binary_erode, binary_erode_oracle),
            (binary_dilate, binary_dilate_oracle),
            (binary_open, binary_open_oracle),
            (binary_close, binary_close_oracle),
        )
        for mask in _random_masks(seed=100 + radius, n=40):
            for fast, oracle in pairs:
                assert np.array_equal(fast(mask, radius), oracle(mask, radius))

    def test_out_buffer_reuse(self):
        rng = np.random.default_rng(3)
        mask = rng.random((20, 25)) > 0.5
        out = np.empty_like(mask)
        result = binary_dilate(mask, 1, out=out)
        assert result is out
        assert np.array_equal(out, binary_dilate_oracle(mask, 1))
        with pytest.raises(DataError):
            binary_erode(mask, 1, out=np.empty((3, 3), dtype=bool))

    def test_edge_touching_silhouette_survives_open(self):
        """Erosion border regression: out-of-frame counts as foreground.

        The seed eroded objects flush against the frame edge as if the
        world outside the image were background, so a person entering the
        scene lost an edge ring of silhouette pixels to ``binary_open``.
        """
        mask = np.zeros((24, 32), dtype=bool)
        mask[0:12, 0:9] = True  # silhouette touching the top-left corner
        opened = binary_open(mask, 1)
        assert np.array_equal(opened, mask)
        assert np.array_equal(binary_open_oracle(mask, 1), mask)
        # Same object away from the border still loses its outline ring
        # under plain erosion -- only the frame edge behaves differently.
        interior = np.zeros((24, 32), dtype=bool)
        interior[6:18, 10:19] = True
        assert binary_erode(interior, 1).sum() < interior.sum()

    def test_erosion_treats_frame_edge_as_foreground(self):
        mask = np.ones((5, 7), dtype=bool)
        assert binary_erode(mask, 1).all()
        assert binary_erode_oracle(mask, 1).all()


class TestBlobParity:
    def test_random_label_images_match_oracle(self):
        for i, mask in enumerate(_random_masks(seed=200, n=40)):
            labels, count = label_components(mask)
            fast = extract_blobs(labels, count)
            oracle = extract_blobs_oracle(labels, count)
            assert len(fast) == len(oracle)
            for a, b in zip(fast, oracle):
                assert a.label == b.label
                assert a.area == b.area
                assert a.bounding_box == b.bounding_box
                assert a.centroid == b.centroid
                assert a.frame_shape == b.frame_shape
                assert np.array_equal(a.crop_mask(), b.crop_mask())
                assert np.array_equal(a.mask, b.mask)

    def test_count_caps_labels_like_oracle(self):
        labels = np.zeros((6, 6), dtype=np.int64)
        labels[0, 0] = 1
        labels[2, 2] = 2
        labels[4, 4] = 5  # above count: both paths must ignore it
        fast = extract_blobs(labels, count=2)
        oracle = extract_blobs_oracle(labels, count=2)
        assert [b.label for b in fast] == [b.label for b in oracle] == [1, 2]
        # The dropped label's pixels must not leak into the kept blobs'
        # geometry (regression: reduceat segments span start-to-next-start,
        # so filtering starts before reducing corrupted the last kept blob).
        for a, b in zip(fast, oracle):
            assert a.area == b.area
            assert a.bounding_box == b.bounding_box
            assert a.centroid == b.centroid
            assert np.array_equal(a.mask, b.mask)
        single = extract_blobs(np.array([[1, 0, 3], [0, 0, 0]]), count=1)
        assert len(single) == 1
        assert single[0].bounding_box == (0, 0, 1, 1)
        assert single[0].centroid == (0.0, 0.0)

    def test_lazy_mask_materialisation(self):
        mask = np.zeros((10, 12), dtype=bool)
        mask[2:5, 3:7] = True
        labels, count = label_components(mask)
        blob = extract_blobs(labels, count)[0]
        assert "mask" not in blob.__dict__  # not materialised yet
        full = blob.mask
        assert full.shape == (10, 12)
        assert np.array_equal(full, mask)
        assert blob.mask is full  # cached after first access


class TestBatchedHistogramParity:
    def test_full_masks_match_single_histograms(self):
        rng = np.random.default_rng(5)
        image = rng.integers(0, 256, size=(24, 31, 3), dtype=np.uint8)
        masks = [rng.random((24, 31)) < 0.3 for _ in range(5)]
        masks.append(np.zeros((24, 31), dtype=bool))  # empty silhouette
        for bins in (256, 64, 16):
            batch = rgb_histogram_batch(image, masks, bins)
            assert batch.shape == (len(masks), 3 * bins)
            for i, mask in enumerate(masks):
                assert np.array_equal(batch[i], rgb_histogram(image, mask, bins))

    def test_cropped_regions_match_full_masks(self):
        rng = np.random.default_rng(6)
        image = rng.integers(0, 256, size=(32, 40, 3), dtype=np.uint8)
        mask = rng.random((32, 40)) < 0.4
        labels, count = label_components(mask)
        blobs = extract_blobs(labels, count)
        regions = [(blob.bounding_box, blob.crop_mask()) for blob in blobs]
        batch = rgb_histogram_batch(image, regions)
        for i, blob in enumerate(blobs):
            assert np.array_equal(batch[i], rgb_histogram(image, blob.mask))

    def test_empty_batch_and_validation(self):
        image = np.zeros((8, 8, 3), dtype=np.uint8)
        assert rgb_histogram_batch(image, []).shape == (0, 768)
        with pytest.raises(DataError):
            rgb_histogram_batch(image, [np.zeros((4, 4), dtype=bool)])
        with pytest.raises(DataError):
            rgb_histogram_batch(
                image, [((0, 0, 4, 4), np.zeros((3, 3), dtype=bool))]
            )

    def test_binarize_batch_matches_per_row(self):
        rng = np.random.default_rng(8)
        histograms = rng.integers(0, 50, size=(6, 96)).astype(np.int64)
        for strategy in (MeanThreshold(), MedianThreshold()):
            batch = strategy.binarize_batch(histograms)
            for i in range(histograms.shape[0]):
                assert np.array_equal(batch[i], strategy.binarize(histograms[i]))


class TestBackgroundFloatPath:
    def test_estimate_float_view_is_read_only(self):
        model = BackgroundModel()
        with pytest.raises(DataError):
            _ = model.estimate_float
        model.initialise(np.full((6, 6, 3), 10, dtype=np.uint8))
        view = model.estimate_float
        assert view.dtype == np.float32
        with pytest.raises(ValueError):
            view[0, 0, 0] = 1.0
        assert model.estimate.dtype == np.uint8

    def test_vectorized_update_tracks_seed_semantics(self):
        rng = np.random.default_rng(9)
        fast = BackgroundModel(learning_rate=0.1, vectorized=True)
        seed = BackgroundModel(learning_rate=0.1, vectorized=False)
        plate = rng.integers(0, 256, size=(12, 14, 3), dtype=np.uint8)
        fast.initialise(plate)
        seed.initialise(plate)
        for _ in range(25):
            frame = rng.integers(0, 256, size=(12, 14, 3), dtype=np.uint8)
            foreground = rng.random((12, 14)) < 0.2
            fast.update(frame, foreground)
            seed.update(frame, foreground)
        np.testing.assert_allclose(
            fast.estimate_float, seed.estimate_float, rtol=0, atol=0.05
        )

    def test_subtractor_paths_agree_on_clear_scenes(self):
        """Far from the threshold boundary, both paths segment identically."""
        background = np.full((20, 24, 3), 90, dtype=np.uint8)
        frame = background.copy()
        frame[4:12, 6:14] = (220, 40, 40)
        for vectorized in (True, False):
            subtractor = BackgroundSubtractor(threshold=25, vectorized=vectorized)
            subtractor.initialise(background)
            mask = subtractor.apply(frame)
            expected = np.zeros((20, 24), dtype=bool)
            expected[4:12, 6:14] = True
            assert np.array_equal(mask, expected)


class TestPipelineParityAndTelemetry:
    @pytest.fixture(scope="class")
    def pipeline_setup(self):
        from repro.core import BinarySom, SomClassifier
        from repro.signatures import extract_signature
        from repro.vision import ActorSpec, SceneConfig, SyntheticSurveillanceScene

        actors = [
            ActorSpec(0, torso_colour=(220, 30, 30), legs_colour=(40, 40, 60),
                      height=40, width=18, speed=1.5, entry_row=25,
                      colour_jitter=3.0),
            ActorSpec(1, torso_colour=(30, 60, 220), legs_colour=(90, 90, 100),
                      height=44, width=20, speed=-1.8, entry_row=30,
                      colour_jitter=3.0),
        ]
        config = SceneConfig(
            height=96, width=128, lighting_amplitude=3.0, camera_jitter_pixels=0,
            pixel_noise_std=2.0, furniture_occluders=0, initial_pause_max_frames=0,
        )
        scene = SyntheticSurveillanceScene(actors=actors, config=config, seed=1)
        signatures, labels = [], []
        for frame in scene.frames(50):
            for identity, mask in frame.truth_masks.items():
                if mask.sum() < 100:
                    continue
                signatures.append(extract_signature(frame.image, mask).bits)
                labels.append(identity)
        classifier = SomClassifier(BinarySom(12, 768, seed=0)).fit(
            np.array(signatures, dtype=np.uint8),
            np.array(labels, dtype=np.int64),
            epochs=6,
            seed=1,
        )
        live = SyntheticSurveillanceScene(actors=actors, config=config, seed=2)
        return classifier, live

    def test_vectorized_system_matches_oracle_system(self, pipeline_setup):
        from repro.pipeline import RecognitionSystem, RecognitionSystemConfig

        classifier, live = pipeline_setup
        frames = list(live.frames(12))
        observations = {}
        for vectorized in (True, False):
            system = RecognitionSystem(
                classifier,
                RecognitionSystemConfig(min_blob_area=120, vectorized=vectorized),
            )
            # The background satellite fix intentionally changes threshold
            # quantisation (float difference vs the seed's uint8 round
            # trip), so pin both systems to the same subtractor semantics:
            # this test asserts the morphology/CCL/blob/signature stages
            # are bit-exact given identical foreground masks.
            system.subtractor = BackgroundSubtractor(
                threshold=system.config.difference_threshold, vectorized=True
            )
            system.initialise_background(live.background)
            observations[vectorized] = system.process_sequence(frames)
        fast, oracle = observations[True], observations[False]
        assert len(fast) > 0
        assert len(fast) == len(oracle)
        for a, b in zip(fast, oracle):
            assert a.frame_index == b.frame_index
            assert a.track_id == b.track_id
            assert a.label == b.label
            assert a.blob.bounding_box == b.blob.bounding_box
            assert np.array_equal(a.signature.bits, b.signature.bits)

    def test_per_stage_telemetry_recorded(self, pipeline_setup):
        from repro.pipeline import RecognitionSystem, RecognitionSystemConfig

        classifier, live = pipeline_setup
        system = RecognitionSystem(
            classifier, RecognitionSystemConfig(min_blob_area=120)
        )
        system.initialise_background(live.background)
        frames = list(live.frames(6))
        system.process_sequence(frames)
        snapshot = system.metrics.snapshot()
        assert snapshot.frames_total == len(frames)
        assert snapshot.mean_frame_ms > 0
        assert snapshot.frames_per_second > 0
        for stage in ("background", "morphology", "label", "blobs", "track"):
            assert snapshot.stages[stage].calls == len(frames)
            assert snapshot.stages[stage].total_ms >= 0
        # Stage ordering in the snapshot follows the pipeline order.
        listed = [s for s in snapshot.stages if s in PIPELINE_STAGES]
        assert listed == [s for s in PIPELINE_STAGES if s in snapshot.stages]


class TestPipelineMetricsUnit:
    def test_accumulation_and_reset(self):
        metrics = PipelineMetrics()
        metrics.record_stage("label", 0.002)
        metrics.record_stage("label", 0.004)
        metrics.record_frame(0.01)
        snapshot = metrics.snapshot()
        assert snapshot.stages["label"].calls == 2
        assert snapshot.stages["label"].mean_ms == pytest.approx(3.0)
        assert snapshot.stages["label"].last_ms == pytest.approx(4.0)
        assert snapshot.frames_total == 1
        assert snapshot.frames_per_second == pytest.approx(100.0)
        metrics.reset()
        empty = metrics.snapshot()
        assert empty.frames_total == 0
        assert empty.stages == {}
        assert empty.frames_per_second == 0.0

    def test_negative_durations_rejected(self):
        metrics = PipelineMetrics()
        with pytest.raises(ConfigurationError):
            metrics.record_stage("label", -1.0)
        with pytest.raises(ConfigurationError):
            metrics.record_frame(-0.1)
