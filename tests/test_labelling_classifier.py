"""Unit tests for node labelling, the classifier and novelty detection."""

import numpy as np
import pytest

from repro.core import (
    BinarySom,
    KohonenSom,
    NodeLabeller,
    NoveltyDetector,
    SomClassifier,
    UNKNOWN_LABEL,
    calibrate_rejection_threshold,
)
from repro.core.labelling import LabelledMap
from repro.errors import ConfigurationError, DataError, NotFittedError


class TestNodeLabeller:
    def test_labels_assigned_by_majority(self, cluster_data):
        X, y = cluster_data
        som = BinarySom(16, X.shape[1], seed=0).fit(X, epochs=5, seed=1)
        labelling = NodeLabeller().label(som, X, y)
        assert labelling.n_neurons == 16
        assert labelling.win_frequencies.sum() == X.shape[0]
        used = labelling.node_labels != LabelledMap.UNLABELLED
        assert set(labelling.node_labels[used]).issubset(set(np.unique(y)))

    def test_unused_neurons_are_unlabelled(self, cluster_data):
        X, y = cluster_data
        # An untrained map with far more neurons than clusters leaves many unused.
        som = BinarySom(64, X.shape[1], seed=0)
        labelling = NodeLabeller().label(som, X, y)
        assert labelling.unused_neurons.size + labelling.used_neuron_count == 64

    def test_purity_bounds(self, cluster_data):
        X, y = cluster_data
        som = BinarySom(16, X.shape[1], seed=0).fit(X, epochs=5, seed=1)
        purity = NodeLabeller().label(som, X, y).purity()
        assert 0.0 < purity <= 1.0

    def test_label_of_out_of_range(self, cluster_data):
        X, y = cluster_data
        som = BinarySom(8, X.shape[1], seed=0)
        labelling = NodeLabeller().label(som, X, y)
        with pytest.raises(ConfigurationError):
            labelling.label_of(99)

    def test_requires_integer_labels(self, cluster_data):
        X, _ = cluster_data
        som = BinarySom(8, X.shape[1], seed=0)
        with pytest.raises(DataError):
            NodeLabeller().label(som, X, np.full(X.shape[0], 0.5))

    def test_label_count_mismatch(self, cluster_data):
        X, y = cluster_data
        som = BinarySom(8, X.shape[1], seed=0)
        with pytest.raises(DataError):
            NodeLabeller().label(som, X, y[:-1])

    def test_result_requires_label_call(self):
        with pytest.raises(NotFittedError):
            _ = NodeLabeller().result


class TestSomClassifier:
    def test_fit_and_score(self, trained_bsom_classifier, cluster_data):
        X, y = cluster_data
        assert trained_bsom_classifier.score(X, y) > 0.8

    def test_generalises_to_new_samples(self, trained_bsom_classifier):
        from repro.datasets import make_signature_clusters

        X_new, y_new = make_signature_clusters(
            n_identities=5, samples_per_identity=20, n_bits=128, core_bits=20, shared_bits=15, seed=777
        )
        assert trained_bsom_classifier.score(X_new, y_new) > 0.7

    def test_csom_classifier_works_too(self, trained_csom_classifier, cluster_data):
        X, y = cluster_data
        assert trained_csom_classifier.score(X, y) > 0.8

    def test_predict_one_matches_predict(self, trained_bsom_classifier, cluster_data):
        X, _ = cluster_data
        batch = trained_bsom_classifier.predict(X[:10])
        singles = [trained_bsom_classifier.predict_one(x).label for x in X[:10]]
        assert batch.tolist() == singles

    def test_predict_before_fit_raises(self, cluster_data):
        X, _ = cluster_data
        classifier = SomClassifier(BinarySom(8, X.shape[1], seed=0))
        with pytest.raises(NotFittedError):
            classifier.predict(X)

    def test_rejection_threshold_flags_far_inputs(self, cluster_data):
        X, y = cluster_data
        classifier = SomClassifier(
            BinarySom(16, X.shape[1], seed=0), rejection_percentile=99.0
        ).fit(X, y, epochs=5, seed=1)
        assert classifier.rejection_threshold is not None
        # A signature with every bit set is unlike anything in training.
        weird = np.ones(X.shape[1], dtype=np.uint8)
        assert classifier.predict_one(weird).label == UNKNOWN_LABEL

    def test_no_rejection_by_default(self, trained_bsom_classifier):
        assert trained_bsom_classifier.rejection_threshold is None

    def test_invalid_rejection_percentile(self, cluster_data):
        X, _ = cluster_data
        with pytest.raises(ConfigurationError):
            SomClassifier(BinarySom(8, X.shape[1]), rejection_percentile=0.0)

    def test_label_mismatch_raises(self, cluster_data):
        X, y = cluster_data
        classifier = SomClassifier(BinarySom(8, X.shape[1], seed=0))
        with pytest.raises(DataError):
            classifier.fit(X, y[:-1], epochs=1)

    def test_label_nodes_without_retraining(self, cluster_data):
        X, y = cluster_data
        som = BinarySom(16, X.shape[1], seed=0).fit(X, epochs=5, seed=1)
        classifier = SomClassifier(som)
        labelling = classifier.label_nodes(X, y)
        assert labelling is classifier.labelling
        assert classifier.score(X, y) > 0.8

    def test_unlabelled_winner_maps_to_unknown(self, cluster_data):
        X, y = cluster_data
        classifier = SomClassifier(BinarySom(8, X.shape[1], seed=0)).fit(X, y, epochs=3, seed=1)
        # Force every node label to 'unlabelled' and check predictions become unknown.
        classifier.labelling.node_labels[:] = LabelledMap.UNLABELLED
        assert np.all(classifier.predict(X[:5]) == UNKNOWN_LABEL)


class TestNovelty:
    def test_calibrated_threshold_accepts_training_data(self, cluster_data):
        X, y = cluster_data
        som = BinarySom(16, X.shape[1], seed=0).fit(X, epochs=5, seed=1)
        threshold = calibrate_rejection_threshold(som, X, percentile=100.0)
        detector = NoveltyDetector(som, threshold)
        assert not detector.novel_mask(X).any()

    def test_far_signature_is_novel(self, cluster_data):
        X, y = cluster_data
        som = BinarySom(16, X.shape[1], seed=0).fit(X, epochs=5, seed=1)
        threshold = calibrate_rejection_threshold(som, X, percentile=99.0)
        detector = NoveltyDetector(som, threshold)
        assert detector.is_novel(np.ones(X.shape[1], dtype=np.uint8))
        assert len(detector.buffered_events) == 1
        assert detector.drain()[0].best_distance > threshold
        assert detector.buffered_events == []

    def test_invalid_threshold(self, cluster_data):
        X, _ = cluster_data
        som = BinarySom(8, X.shape[1], seed=0)
        with pytest.raises(ConfigurationError):
            NoveltyDetector(som, -1.0)

    def test_invalid_percentile(self, cluster_data):
        X, _ = cluster_data
        som = BinarySom(8, X.shape[1], seed=0)
        with pytest.raises(ConfigurationError):
            calibrate_rejection_threshold(som, X, percentile=0.0)
