"""Tests for the fleet-scale load harness (:mod:`repro.loadgen`).

Covers the determinism contract (same seed => bit-identical submit
schedule and Zipf key sequence; distinct phases draw from independently
spawned RNG streams), arrival-process shapes and validation, workload
spec validation, aggregation over synthetic snapshot records, report
rendering, and a small end-to-end run against a live service with a
mid-load hot-swap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.loadgen import (
    BurstTrain,
    ConstantRate,
    DiurnalRamp,
    Phase,
    PoissonProcess,
    WorkloadSpec,
    ZipfKeySampler,
    aggregate_records,
    aggregate_run,
    build_schedule,
    built_in_specs,
    phase_named,
    render_report,
    run_workload,
)
from repro.serve import ServiceConfig, StreamingInferenceService


# --------------------------------------------------------------------- #
# Arrival processes
# --------------------------------------------------------------------- #
class TestArrivalProcesses:
    @pytest.mark.parametrize(
        "process",
        [
            ConstantRate(100.0),
            PoissonProcess(100.0),
            BurstTrain(
                base_rate_hz=50.0,
                burst_rate_hz=400.0,
                period_s=0.5,
                burst_fraction=0.3,
            ),
            DiurnalRamp(20.0, 200.0, period_s=1.0),
        ],
        ids=["constant", "poisson", "burst", "diurnal"],
    )
    def test_offsets_sorted_and_in_range(self, process):
        rng = np.random.default_rng(42)
        offsets = process.times(2.0, rng)
        assert offsets.size > 0
        assert np.all(offsets >= 0.0) and np.all(offsets < 2.0)
        assert np.all(np.diff(offsets) >= 0.0)
        assert process.mean_rate_hz() > 0

    @pytest.mark.parametrize(
        "process",
        [
            PoissonProcess(500.0),
            BurstTrain(
                base_rate_hz=100.0,
                burst_rate_hz=1000.0,
                period_s=0.4,
                burst_fraction=0.5,
            ),
            DiurnalRamp(50.0, 500.0, period_s=0.8),
        ],
        ids=["poisson", "burst", "diurnal"],
    )
    def test_same_generator_state_is_bit_identical(self, process):
        a = process.times(1.5, np.random.default_rng(7))
        b = process.times(1.5, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_constant_rate_spacing(self):
        offsets = ConstantRate(100.0).times(1.0, np.random.default_rng(0))
        assert offsets.size == 100
        np.testing.assert_allclose(np.diff(offsets), 0.01)

    def test_poisson_rate_roughly_respected(self):
        offsets = PoissonProcess(1000.0).times(4.0, np.random.default_rng(3))
        assert offsets.size == pytest.approx(4000, rel=0.15)

    def test_burst_concentrates_arrivals(self):
        process = BurstTrain(
            base_rate_hz=50.0,
            burst_rate_hz=2000.0,
            period_s=1.0,
            burst_fraction=0.25,
        )
        offsets = process.times(1.0, np.random.default_rng(5))
        in_burst = np.count_nonzero(offsets < 0.25)
        assert in_burst > 0.8 * offsets.size

    def test_diurnal_peaks_mid_period(self):
        process = DiurnalRamp(10.0, 1000.0, period_s=2.0)
        offsets = process.times(2.0, np.random.default_rng(9))
        mid = np.count_nonzero((offsets > 0.5) & (offsets < 1.5))
        assert mid > 0.6 * offsets.size

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantRate(-1.0)
        with pytest.raises(ConfigurationError):
            BurstTrain(
                base_rate_hz=1.0,
                burst_rate_hz=2.0,
                period_s=0.0,
                burst_fraction=0.5,
            )
        with pytest.raises(ConfigurationError):
            BurstTrain(
                base_rate_hz=1.0,
                burst_rate_hz=2.0,
                period_s=1.0,
                burst_fraction=1.5,
            )
        with pytest.raises(ConfigurationError):
            DiurnalRamp(10.0, 5.0, period_s=1.0)
        with pytest.raises(ConfigurationError):
            PoissonProcess(10.0).times(0.0, np.random.default_rng(0))


class TestZipfKeySampler:
    def test_same_seed_identical_sequence(self):
        a = ZipfKeySampler(100, 1.1, seed=5).draw(500)
        b = ZipfKeySampler(100, 1.1, seed=5).draw(500)
        np.testing.assert_array_equal(a, b)

    def test_hot_keys_dominate(self):
        sampler = ZipfKeySampler(200, 1.2, seed=1)
        draws = sampler.draw(4000)
        hot = set(sampler.hot_keys(5).tolist())
        hot_fraction = sum(1 for key in draws if int(key) in hot) / draws.size
        assert hot_fraction > 0.25  # 5/200 = 2.5% of keys take >25% of traffic

    def test_seed_permutes_which_keys_are_hot(self):
        hot_a = ZipfKeySampler(500, 1.1, seed=1).hot_keys(3).tolist()
        hot_b = ZipfKeySampler(500, 1.1, seed=2).hot_keys(3).tolist()
        assert hot_a != hot_b

    def test_draws_stay_in_pool(self):
        draws = ZipfKeySampler(7, 1.0, seed=0).draw(200)
        assert draws.min() >= 0 and draws.max() < 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfKeySampler(0)
        with pytest.raises(ConfigurationError):
            ZipfKeySampler(10, exponent=0.0)
        with pytest.raises(ConfigurationError):
            ZipfKeySampler(10).draw(-1)


# --------------------------------------------------------------------- #
# Workload specs and schedules
# --------------------------------------------------------------------- #
def _two_phase_spec(seed: int = 11) -> WorkloadSpec:
    return WorkloadSpec(
        name="t",
        seed=seed,
        n_streams=16,
        phases=(
            Phase("steady", duration_s=0.5, arrival=PoissonProcess(400.0)),
            Phase(
                "soak",
                duration_s=0.5,
                arrival=PoissonProcess(400.0),
                hot_swaps=2,
                evictions=1,
                rollouts=1,
            ),
        ),
    )


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Phase("", 1.0, ConstantRate(1.0))
        with pytest.raises(ConfigurationError):
            Phase("p", -1.0, ConstantRate(1.0))
        with pytest.raises(ConfigurationError):
            Phase("p", 1.0, "not-a-process")
        with pytest.raises(ConfigurationError):
            Phase("p", 1.0, ConstantRate(1.0), hot_swaps=-1)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="w", phases=())
        with pytest.raises(ConfigurationError):
            WorkloadSpec(
                name="w",
                phases=(
                    Phase("a", 1.0, ConstantRate(1.0)),
                    Phase("a", 1.0, ConstantRate(1.0)),
                ),
            )

    def test_action_offsets_even_and_sorted(self):
        phase = Phase(
            "soak", 1.0, ConstantRate(1.0), hot_swaps=2, evictions=1
        )
        actions = phase.action_offsets()
        assert len(actions) == 3
        offsets = [offset for offset, _ in actions]
        assert offsets == sorted(offsets)
        assert all(0.0 < offset < 1.0 for offset in offsets)
        assert phase.lifecycle_actions == 3

    def test_built_in_specs_validate(self):
        specs = built_in_specs()
        assert "demo" in specs and "smoke" in specs
        demo = specs["demo"]
        assert demo.phases[-1].hot_swaps == 1
        for spec in specs.values():
            schedules = build_schedule(spec, pool_size=50)
            assert len(schedules) == len(spec.phases)


class TestScheduleDeterminism:
    """The determinism satellite: seeded, spawned, replayable schedules."""

    def test_same_seed_identical_schedule_and_keys(self):
        a = build_schedule(_two_phase_spec(seed=11), pool_size=100)
        b = build_schedule(_two_phase_spec(seed=11), pool_size=100)
        for sa, sb in zip(a, b):
            np.testing.assert_array_equal(sa.offsets_s, sb.offsets_s)
            np.testing.assert_array_equal(sa.key_indices, sb.key_indices)
            np.testing.assert_array_equal(sa.stream_indices, sb.stream_indices)
            assert sa.actions == sb.actions

    def test_different_seed_different_schedule(self):
        a = build_schedule(_two_phase_spec(seed=11), pool_size=100)
        b = build_schedule(_two_phase_spec(seed=12), pool_size=100)
        assert a[0].offsets_s.size != b[0].offsets_s.size or not np.array_equal(
            a[0].offsets_s, b[0].offsets_s
        )

    def test_phases_draw_from_independent_streams(self):
        # Changing phase 1's arrival process (consuming a different amount
        # of randomness) must not perturb phase 2's draws: each phase owns
        # an independently spawned SeedSequence child, not a shared cursor.
        base = _two_phase_spec(seed=11)
        modified = WorkloadSpec(
            name="t",
            seed=11,
            n_streams=16,
            phases=(
                Phase("steady", duration_s=0.5, arrival=ConstantRate(10.0)),
                base.phases[1],
            ),
        )
        schedule_base = build_schedule(base, pool_size=100)
        schedule_modified = build_schedule(modified, pool_size=100)
        np.testing.assert_array_equal(
            schedule_base[1].offsets_s, schedule_modified[1].offsets_s
        )
        np.testing.assert_array_equal(
            schedule_base[1].key_indices, schedule_modified[1].key_indices
        )
        np.testing.assert_array_equal(
            schedule_base[1].stream_indices, schedule_modified[1].stream_indices
        )

    def test_arrival_key_and_stream_draws_are_independent(self):
        # Within a phase, keys/streams come from their own spawned
        # children: two specs whose phases differ only in arrival shape
        # draw identical stream assignments for equal event counts.
        spec_a = WorkloadSpec(
            name="t",
            seed=3,
            phases=(Phase("p", duration_s=1.0, arrival=ConstantRate(100.0)),),
        )
        spec_b = WorkloadSpec(
            name="t",
            seed=3,
            phases=(Phase("p", duration_s=2.0, arrival=ConstantRate(50.0)),),
        )
        a = build_schedule(spec_a, pool_size=40)[0]
        b = build_schedule(spec_b, pool_size=40)[0]
        assert a.n_events == b.n_events == 100
        np.testing.assert_array_equal(a.key_indices, b.key_indices)
        np.testing.assert_array_equal(a.stream_indices, b.stream_indices)

    def test_stream_indices_cover_population(self):
        schedule = build_schedule(_two_phase_spec(), pool_size=100)[0]
        assert schedule.stream_indices.min() >= 0
        assert schedule.stream_indices.max() < 16
        assert len(set(schedule.stream_indices.tolist())) > 8

    def test_pool_size_validated(self):
        with pytest.raises(ConfigurationError):
            build_schedule(_two_phase_spec(), pool_size=0)


# --------------------------------------------------------------------- #
# Aggregation and reporting over synthetic records
# --------------------------------------------------------------------- #
def _synthetic_records():
    def record(phase, requests, responses, shed, bucket_count, wall=None):
        buckets = {"0.001": bucket_count, "0.01": bucket_count, "+Inf": bucket_count}
        metrics = {
            "serve_requests_total": requests,
            "serve_responses_total": responses,
            "serve_backpressure_rejections_total": shed,
            "serve_batches_total": responses // 4,
            "serve_batch_fill_fraction_sum": responses / 8.0,
            "serve_dedup_hits_total": 2,
            "serve_cache_hits_total": 5,
            "serve_model_swaps_total": 0,
            "serve_shard_queue_depth{model=m,shard=0}": 3,
            "serve_request_latency_seconds": {
                "buckets": buckets,
                "sum": bucket_count * 0.0005,
                "count": bucket_count,
                "p50": 0.0005,
                "p99": 0.001,
                "p999": 0.001,
            },
        }
        entry = {"ts": 0.0, "metrics": metrics}
        if phase is not None:
            entry["phase"] = phase
            entry["wall_s"] = wall
        return entry

    return [
        record(None, 0, 0, 0, 0),
        record("steady", 100, 100, 0, 100, wall=1.0),
        record("burst", 350, 300, 50, 300, wall=0.5),
    ]


class TestAggregation:
    def test_per_phase_windows(self):
        aggregate = aggregate_records(_synthetic_records())
        steady = phase_named(aggregate, "steady")
        burst = phase_named(aggregate, "burst")
        assert steady["requests"] == 100
        assert steady["throughput_rps"] == pytest.approx(100.0)
        assert steady["shed"] == 0
        assert burst["requests"] == 250
        assert burst["responses"] == 200
        assert burst["throughput_rps"] == pytest.approx(400.0)
        assert burst["shed"] == 50
        assert burst["shed_rate"] == pytest.approx(50 / 300, abs=1e-6)
        assert burst["queue_depth"] == {"model=m,shard=0": 3}
        assert burst["latency_ms"]["p50"] > 0.0
        assert burst["batches"] == 50

    def test_needs_two_records(self):
        with pytest.raises(DataError):
            aggregate_records(_synthetic_records()[:1])

    def test_report_renders_every_phase(self):
        aggregate = aggregate_records(_synthetic_records())
        aggregate["spec"] = "synthetic"
        text = render_report(aggregate)
        assert "steady" in text and "burst" in text
        assert "synthetic" in text

    def test_report_requires_phases(self):
        with pytest.raises(DataError):
            render_report({"phases": []})


# --------------------------------------------------------------------- #
# End to end against a live service
# --------------------------------------------------------------------- #
class TestRunWorkload:
    @pytest.fixture()
    def service(self, trained_bsom_classifier):
        config = ServiceConfig(
            batch_size=8, max_delay_ms=2.0, n_shards=2, cache_capacity=128
        )
        service = StreamingInferenceService(config=config)
        service.register_model("m", trained_bsom_classifier)
        with service:
            yield service

    def test_small_run_accounts_for_every_event(self, service, cluster_data):
        X, _ = cluster_data
        spec = WorkloadSpec(
            name="tiny",
            seed=5,
            n_streams=32,
            phases=(Phase("steady", duration_s=0.3, arrival=PoissonProcess(300.0)),),
        )
        run = run_workload(service, spec, X, model="m")
        assert run.zero_drop
        (phase,) = run.phases
        assert phase.offered > 0
        assert phase.answered + phase.shed + phase.failed == phase.offered
        assert len(run.records) == 2
        aggregate = aggregate_run(run)
        assert aggregate["totals"]["zero_drop"] is True
        entry = phase_named(aggregate, "steady")
        assert entry["client"]["offered"] == phase.offered
        assert "steady" in render_report(aggregate)

    def test_soak_runs_lifecycle_actions(
        self, service, cluster_data, trained_csom_classifier
    ):
        X, _ = cluster_data
        spec = WorkloadSpec(
            name="churn",
            seed=9,
            n_streams=16,
            phases=(
                Phase(
                    "soak",
                    duration_s=0.5,
                    arrival=PoissonProcess(300.0),
                    hot_swaps=1,
                    evictions=1,
                    rollouts=2,
                ),
            ),
        )
        run = run_workload(
            service, spec, X, model="m", swap_source=lambda: trained_bsom_copy(service)
        )
        assert run.zero_drop
        (phase,) = run.phases
        assert phase.swaps == 1
        assert phase.evictions == 1
        assert phase.rollouts == 2
        assert phase.victim_requests > 0
        aggregate = aggregate_run(run)
        assert aggregate["totals"]["swaps"] == 1
        assert aggregate["totals"]["rollouts"] == 2

    def test_lifecycle_actions_require_swap_source(self, service, cluster_data):
        X, _ = cluster_data
        spec = WorkloadSpec(
            name="churn",
            seed=9,
            phases=(
                Phase(
                    "soak",
                    duration_s=0.2,
                    arrival=ConstantRate(10.0),
                    hot_swaps=1,
                ),
            ),
        )
        with pytest.raises(ConfigurationError):
            run_workload(service, spec, X, model="m")

    def test_rejects_bad_pool(self, service):
        spec = built_in_specs()["smoke"]
        with pytest.raises(DataError):
            run_workload(service, spec, np.empty((0, 8)), model="m")

    def test_exporter_records_match_in_memory(
        self, service, cluster_data, tmp_path
    ):
        from repro.obs import JsonlExporter, read_jsonl

        X, _ = cluster_data
        spec = built_in_specs()["smoke"]
        exporter = JsonlExporter(tmp_path / "load.jsonl")
        run = run_workload(service, spec, X, model="m", exporter=exporter)
        on_disk = read_jsonl(tmp_path / "load.jsonl")
        assert len(on_disk) == len(run.records) == len(spec.phases) + 1
        assert on_disk[-1]["phase"] == spec.phases[-1].name


def trained_bsom_copy(service):
    """A snapshot of the live model -- a valid swap/candidate source."""
    from repro import api

    return api.snapshot(service.registry.classifier("m"))
