"""Tests of the resilience layer: injection, retry, breakers, deadlines,
supervision.

Covers the acceptance surface of the robustness PR:

* :class:`FaultInjector` -- seed-replayable fire patterns, ``max_fires`` /
  ``start_after`` budgets, disarm, and the hang-instead-of-raise mode,
* :class:`RetryPolicy` -- deterministic jittered exponential backoff and
  submit-time retries of transient overload refusals,
* :class:`CircuitBreaker` / :class:`BreakerBoard` -- open after N
  consecutive failures, one half-open probe per reset timeout, close on
  success, state gauge + open/close events,
* deadline propagation -- expired requests shed at dispatch and again
  pre-kernel with :class:`DeadlineExceededError`, pending budget released,
* stale-cache degradation -- all breakers open + demoted entry answers
  with ``stale=True``; no entry sheds with :class:`CircuitOpenError`,
* shard supervision (``chaos`` marker) -- injected worker death and hung
  kernels detected, in-flight batches failed terminally, workers restarted
  under the budget, queued work re-dispatched, and
* leak-aware shard shutdown -- ``WorkerShard.stop`` reports a worker that
  outlives its join timeout instead of silently forgetting it.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    InjectedFaultError,
    ServiceOverloadedError,
    ShardFailedError,
)
from repro.serve import (
    BreakerBoard,
    BreakerConfig,
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    ServiceConfig,
    ShardSupervisor,
    SupervisorConfig,
    StreamingInferenceService,
    WorkerShard,
)
from repro.serve.cache import CachedOutcome, SignatureLruCache
from repro.serve.resilience import (
    CACHE_CODEC,
    KERNEL_HANG,
    KERNEL_RAISE,
    SHARD_DEATH,
    SWAP_FAILURE,
)
from tests.test_lifecycle import _fit


def _service(classifier, *, injector=None, **config_kwargs):
    """A started one-model service with manual batching control."""
    config_kwargs.setdefault("batch_size", 256)
    config_kwargs.setdefault("max_delay_ms", 60_000.0)
    config_kwargs.setdefault("n_shards", 1)
    config = ServiceConfig(fault_injector=injector, **config_kwargs)
    service = StreamingInferenceService(config=config)
    service.register_model("m", classifier)
    service.start()
    return service


# --------------------------------------------------------------------- #
# Fault injector
# --------------------------------------------------------------------- #
class TestFaultInjector:
    def test_inert_until_armed(self):
        injector = FaultInjector(seed=1)
        assert injector.fires(KERNEL_RAISE) is None
        injector.raise_if(KERNEL_RAISE)  # no spec -> no raise
        assert injector.fired(KERNEL_RAISE) == 0

    def test_same_seed_replays_same_pattern(self):
        def pattern(seed):
            injector = FaultInjector(
                seed=seed, specs=[FaultSpec(KERNEL_RAISE, probability=0.4)]
            )
            return [injector.fires(KERNEL_RAISE) is not None for _ in range(64)]

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)  # astronomically unlikely to collide

    def test_sites_draw_independent_streams(self):
        injector = FaultInjector(
            seed=3,
            specs=[
                FaultSpec(KERNEL_RAISE, probability=0.5),
                FaultSpec(CACHE_CODEC, probability=0.5),
            ],
        )
        a = [injector.fires(KERNEL_RAISE) is not None for _ in range(64)]
        b = [injector.fires(CACHE_CODEC) is not None for _ in range(64)]
        assert a != b

    def test_max_fires_budget(self):
        injector = FaultInjector(specs=[FaultSpec(KERNEL_RAISE, max_fires=2)])
        fired = sum(injector.fires(KERNEL_RAISE) is not None for _ in range(10))
        assert fired == 2
        assert injector.fired(KERNEL_RAISE) == 2
        assert injector.passes(KERNEL_RAISE) == 10

    def test_start_after_skips_warmup(self):
        injector = FaultInjector(specs=[FaultSpec(KERNEL_RAISE, start_after=3)])
        fires = [injector.fires(KERNEL_RAISE) is not None for _ in range(6)]
        assert fires == [False, False, False, True, True, True]

    def test_disarm_one_site_and_all(self):
        injector = FaultInjector(
            specs=[FaultSpec(KERNEL_RAISE), FaultSpec(CACHE_CODEC)]
        )
        injector.disarm(KERNEL_RAISE)
        assert injector.fires(KERNEL_RAISE) is None
        assert injector.fires(CACHE_CODEC) is not None
        injector.disarm()
        assert injector.fires(CACHE_CODEC) is None

    def test_raise_if_carries_context(self):
        injector = FaultInjector(specs=[FaultSpec(KERNEL_RAISE)])
        with pytest.raises(InjectedFaultError) as excinfo:
            injector.raise_if(KERNEL_RAISE, shard="m/0", model="m")
        assert "kernel_raise" in str(excinfo.value)
        assert "m/0" in str(excinfo.value)

    def test_hang_spec_sleeps_instead_of_raising(self):
        injector = FaultInjector(specs=[FaultSpec(KERNEL_HANG, hang_s=0.05)])
        t0 = time.monotonic()
        injector.raise_if(KERNEL_HANG)  # must not raise
        assert time.monotonic() - t0 >= 0.04

    def test_counts_reports_fired_sites(self):
        injector = FaultInjector(specs=[FaultSpec(KERNEL_RAISE, max_fires=3)])
        for _ in range(5):
            injector.fires(KERNEL_RAISE)
        injector.fires(SWAP_FAILURE)  # unarmed: never fires
        assert injector.counts() == {KERNEL_RAISE: 3}

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("")
        with pytest.raises(ConfigurationError):
            FaultSpec(KERNEL_RAISE, probability=0.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(KERNEL_RAISE, probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(KERNEL_RAISE, max_fires=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(KERNEL_RAISE, start_after=-1)
        with pytest.raises(ConfigurationError):
            FaultSpec(KERNEL_RAISE, hang_s=-0.1)


# --------------------------------------------------------------------- #
# Retry policy
# --------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(3, base_delay_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(3, multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(3, jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(3).delay_s(0)

    def test_deterministic_given_seed(self):
        a = RetryPolicy(5, seed=11)
        b = RetryPolicy(5, seed=11)
        assert [a.delay_s(i) for i in range(1, 6)] == [
            b.delay_s(i) for i in range(1, 6)
        ]

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            6, base_delay_s=0.01, multiplier=2.0, max_delay_s=0.05, jitter=0.0
        )
        delays = [policy.delay_s(i) for i in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(3, base_delay_s=0.01, jitter=0.5, seed=0)
        for _ in range(100):
            delay = policy.delay_s(1)
            assert 0.005 <= delay <= 0.01

    def test_service_retries_transient_overload(self, cluster_data):
        X, y = cluster_data
        classifier = _fit(X, y)
        # max_pending=1: the first admitted request saturates the budget.
        service = _service(
            classifier,
            max_pending=1,
            cache_capacity=0,
            retry=RetryPolicy(8, base_delay_s=0.005, max_delay_s=0.02, jitter=0.0),
        )
        try:
            blocker = service.submit(X[0], model="m")
            releaser = threading.Timer(0.02, service.flush)
            releaser.start()
            # Refused at first (budget full), then admitted once the timer
            # flushes the blocker through the shard.
            second = service.submit(X[1], model="m")
            releaser.join()
            service.flush()
            labels = set(int(v) for v in y)
            assert blocker.result(10.0).label in labels
            assert second.result(10.0).label in labels
            assert service.metrics.retries >= 1
            snapshot = service.metrics_snapshot()
            assert snapshot.retries == service.metrics.retries
        finally:
            service.stop()

    def test_retry_budget_exhaustion_reraises(self, cluster_data):
        X, y = cluster_data
        classifier = _fit(X, y)
        service = _service(
            classifier,
            max_pending=1,
            cache_capacity=0,
            retry=RetryPolicy(2, base_delay_s=0.001, jitter=0.0),
        )
        try:
            service.submit(X[0], model="m")  # saturates the budget for good
            with pytest.raises(ServiceOverloadedError):
                service.submit(X[1], model="m")
            assert service.metrics.retries == 1  # attempt 2 of 2 not retried
        finally:
            service.stop()

    def test_retry_never_sleeps_past_deadline(self, cluster_data):
        X, y = cluster_data
        classifier = _fit(X, y)
        service = _service(
            classifier,
            max_pending=1,
            cache_capacity=0,
            retry=RetryPolicy(50, base_delay_s=0.05, jitter=0.0),
        )
        try:
            service.submit(X[0], model="m")
            t0 = time.monotonic()
            with pytest.raises(ServiceOverloadedError):
                service.submit(X[1], model="m", deadline_s=0.02)
            # A 50-attempt budget at 50ms per backoff would sleep seconds;
            # the deadline must cut it off almost immediately.
            assert time.monotonic() - t0 < 1.0
        finally:
            service.stop()


# --------------------------------------------------------------------- #
# Circuit breakers
# --------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=3, reset_timeout_s=1.0))
        assert breaker.state(0.0) == "closed"
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == "closed"
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == "open"
        assert not breaker.allow(0.5)

    def test_half_open_admits_one_probe_per_timeout(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=1, reset_timeout_s=1.0))
        breaker.record_failure(0.0)
        assert breaker.state(1.5) == "half_open"
        assert breaker.allow(1.5)  # the probe
        assert not breaker.allow(1.6)  # probe slot consumed
        assert breaker.allow(2.6)  # next probe a full timeout later

    def test_would_allow_does_not_consume_probe(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=1, reset_timeout_s=1.0))
        breaker.record_failure(0.0)
        assert breaker.would_allow(1.5)
        assert breaker.would_allow(1.5)  # still available
        assert breaker.allow(1.5)  # consuming check still works

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=5, reset_timeout_s=1.0))
        for _ in range(5):
            breaker.record_failure(0.0)
        assert breaker.state(1.5) == "half_open"
        # One failed probe re-opens immediately, well under the threshold.
        assert breaker.record_failure(1.5) == "open"
        assert not breaker.allow(2.0)

    def test_success_closes_and_resets(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=2, reset_timeout_s=1.0))
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == "open"
        assert breaker.record_success(1.5) == "closed"
        assert breaker.consecutive_failures == 0
        assert breaker.allow(1.6)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(reset_timeout_s=0.0)


class TestBreakerBoard:
    def _board(self, **config_kwargs):
        from repro.obs import Observability

        obs = Observability(sample_every=0)
        clock = {"now": 0.0}
        board = BreakerBoard(
            BreakerConfig(**config_kwargs),
            clock=lambda: clock["now"],
            registry=obs.registry,
            events=obs.events,
        )
        return board, obs, clock

    def test_transitions_emit_events_and_gauge(self):
        board, obs, clock = self._board(failure_threshold=2, reset_timeout_s=1.0)
        board.record("m", "m/0", ok=False)
        board.record("m", "m/0", ok=False)
        assert board.state("m", "m/0") == "open"
        opens = obs.events.events(kind="breaker_open")
        assert len(opens) == 1 and opens[0].fields["shard"] == "m/0"
        gauge = next(
            m
            for m in obs.registry.collect()
            if m.name == "serve_breaker_state" and m.labels_dict.get("shard") == "m/0"
        )
        assert gauge.value == 2.0
        clock["now"] = 1.5
        board.record("m", "m/0", ok=True)
        assert len(obs.events.events(kind="breaker_close")) == 1
        assert board.states() == {"m/m/0": "closed"}

    def test_allow_routes_around_open_breaker(self):
        board, _, clock = self._board(failure_threshold=1, reset_timeout_s=1.0)
        board.record("m", "m/0", ok=False)
        assert not board.allow("m", "m/0")
        assert board.allow("m", "m/1")  # untouched shard implicitly closed
        assert board.would_allow_any("m", ["m/0", "m/1"])
        board.record("m", "m/1", ok=False)
        assert not board.would_allow_any("m", ["m/0", "m/1"])
        clock["now"] = 1.5  # half-open: a probe is available again
        assert board.would_allow_any("m", ["m/0", "m/1"])


class TestBreakerIntegration:
    def test_kernel_failures_open_breaker_then_circuit_error(self, cluster_data):
        X, y = cluster_data
        classifier = _fit(X, y)
        injector = FaultInjector(specs=[FaultSpec(KERNEL_RAISE)])  # every batch
        service = _service(
            classifier,
            injector=injector,
            cache_capacity=0,
            breaker=BreakerConfig(failure_threshold=2, reset_timeout_s=60.0),
            supervisor=None,
        )
        try:
            for i in range(2):
                future = service.submit(X[i], model="m")
                service.flush()
                with pytest.raises(InjectedFaultError):
                    future.result(10.0)
            assert service._board.state("m", "m/0") == "open"
            # Every shard breaker open + nothing cached -> shed at submit.
            with pytest.raises(CircuitOpenError):
                service.submit(X[2], model="m")
            assert service.pending_requests == 0
        finally:
            service.stop()

    def test_stale_cache_degradation_when_all_breakers_open(self, cluster_data):
        X, y = cluster_data
        classifier = _fit(X, y)
        injector = FaultInjector(
            specs=[FaultSpec(KERNEL_RAISE, start_after=1)]  # first batch succeeds
        )
        service = _service(
            classifier,
            injector=injector,
            breaker=BreakerConfig(failure_threshold=1, reset_timeout_s=60.0),
            supervisor=None,
        )
        try:
            # Seed the cache with a healthy answer...
            future = service.submit(X[0], model="m")
            service.flush()
            fresh = future.result(10.0)
            # ...then demote it to the stale tier (as a swap would) and trip
            # the only shard's breaker with an injected kernel failure.
            service.cache.invalidate_model("m")
            failing = service.submit(X[1], model="m")
            service.flush()
            with pytest.raises(InjectedFaultError):
                failing.result(10.0)
            assert service._board.state("m", "m/0") == "open"
            degraded = service.submit(X[0], model="m").result(10.0)
            assert degraded.stale and degraded.cached
            assert degraded.label == fresh.label
            assert service.metrics.stale_hits == 1
            # A signature with no stale entry still sheds.
            with pytest.raises(CircuitOpenError):
                service.submit(X[2], model="m")
        finally:
            service.stop()


# --------------------------------------------------------------------- #
# Deadlines
# --------------------------------------------------------------------- #
class TestDeadlines:
    def test_expired_requests_shed_at_dispatch(self, cluster_data):
        X, y = cluster_data
        classifier = _fit(X, y)
        service = _service(classifier, cache_capacity=0)
        try:
            doomed = service.submit(X[0], model="m", deadline_s=0.005)
            alive = service.submit(X[1], model="m")  # no deadline
            time.sleep(0.03)
            service.flush()
            with pytest.raises(DeadlineExceededError):
                doomed.result(10.0)
            assert alive.result(10.0).label in set(int(v) for v in y)
            assert service.metrics.deadline_exceeded == 1
            assert service.pending_requests == 0  # budget fully released
        finally:
            service.stop()

    def test_default_deadline_from_config(self, cluster_data):
        X, y = cluster_data
        classifier = _fit(X, y)
        service = _service(classifier, cache_capacity=0, default_deadline_s=0.005)
        try:
            doomed = service.submit(X[0], model="m")
            time.sleep(0.03)
            service.flush()
            with pytest.raises(DeadlineExceededError):
                doomed.result(10.0)
        finally:
            service.stop()

    def test_pre_kernel_shed_in_shard(self, cluster_data):
        """A request that expires while queued behind a hung kernel is shed
        by the shard just before launch, not scored pointlessly."""
        X, y = cluster_data
        classifier = _fit(X, y)
        injector = FaultInjector(
            specs=[FaultSpec(KERNEL_HANG, hang_s=0.08, max_fires=1)]
        )
        service = _service(classifier, injector=injector, cache_capacity=0)
        try:
            hung = service.submit(X[0], model="m")  # hangs 80ms in the kernel
            service.flush()
            doomed = service.submit(X[1], model="m", deadline_s=0.02)
            service.flush()  # queued behind the hung batch; expires waiting
            assert hung.result(10.0).label in set(int(v) for v in y)
            with pytest.raises(DeadlineExceededError):
                doomed.result(10.0)
            assert service.metrics.deadline_exceeded == 1
            assert service.pending_requests == 0
        finally:
            service.stop()

    def test_deadline_error_fans_out_to_followers(self, cluster_data):
        X, y = cluster_data
        classifier = _fit(X, y)
        service = _service(classifier, cache_capacity=0)
        try:
            primary = service.submit(X[0], model="m", deadline_s=0.005)
            follower = service.submit(X[0], model="m")  # dedups onto primary
            assert service.metrics.dedup_hits == 1
            time.sleep(0.03)
            service.flush()
            with pytest.raises(DeadlineExceededError):
                primary.result(10.0)
            with pytest.raises(DeadlineExceededError):
                follower.result(10.0)
        finally:
            service.stop()


# --------------------------------------------------------------------- #
# Cache fault tolerance + stale tier
# --------------------------------------------------------------------- #
class TestCacheResilience:
    def test_cache_get_fault_degrades_to_miss(self, cluster_data):
        X, y = cluster_data
        classifier = _fit(X, y)
        injector = FaultInjector(specs=[FaultSpec(CACHE_CODEC)])
        service = _service(classifier, injector=injector)
        try:
            future = service.submit(X[0], model="m")
            service.flush()
            assert future.result(10.0).label in set(int(v) for v in y)
            assert service.metrics.cache_errors >= 1
        finally:
            service.stop()

    def test_lru_eviction_demotes_to_stale_tier(self):
        cache = SignatureLruCache(capacity=1, stale_capacity=4)
        outcome = CachedOutcome(1, 2, 3.0, False, 0.9)
        cache.put("m", b"a", outcome)
        cache.put("m", b"b", CachedOutcome(2, 3, 4.0, False, 0.8))
        assert cache.get("m", b"a") is None  # evicted from the live tier
        assert cache.get_stale("m", b"a") == outcome
        assert cache.stale_hits == 1

    def test_stale_tier_bounded(self):
        cache = SignatureLruCache(capacity=1, stale_capacity=2)
        for i in range(5):
            cache.put("m", bytes([i]), CachedOutcome(i, i, 0.0, False, 1.0))
        assert cache.get_stale("m", bytes([0])) is None  # aged out
        assert cache.get_stale("m", bytes([3])) is not None

    def test_get_stale_prefers_live_entry(self):
        cache = SignatureLruCache(capacity=4)
        live = CachedOutcome(1, 1, 1.0, False, 1.0)
        cache.put("m", b"k", live)
        assert cache.get_stale("m", b"k") == live
        assert cache.stale_hits == 0  # a live answer is not a stale hit


# --------------------------------------------------------------------- #
# Swap failure injection
# --------------------------------------------------------------------- #
class TestSwapFailure:
    def test_failed_swap_keeps_old_model_serving(self, cluster_data):
        X, y = cluster_data
        old = _fit(X, y, seed=1)
        new = _fit(X, y, seed=9)
        injector = FaultInjector(specs=[FaultSpec(SWAP_FAILURE, max_fires=1)])
        service = _service(old, injector=injector)
        try:
            with pytest.raises(InjectedFaultError):
                service.swap_model("m", new)
            assert service.registry.classifier("m") is old
            future = service.submit(X[0], model="m")
            service.flush()
            assert future.result(10.0).label in set(int(v) for v in y)
            # The injected failure is spent: the retried swap succeeds.
            assert service.swap_model("m", new) is old
            assert service.registry.classifier("m") is new
        finally:
            service.stop()


# --------------------------------------------------------------------- #
# Shard supervision (chaos)
# --------------------------------------------------------------------- #
@pytest.mark.chaos
class TestShardSupervision:
    def test_injected_death_restarts_worker_and_fails_batch(self, cluster_data):
        X, y = cluster_data
        classifier = _fit(X, y)
        injector = FaultInjector(specs=[FaultSpec(SHARD_DEATH, max_fires=1)])
        service = _service(
            classifier,
            injector=injector,
            cache_capacity=0,
            supervisor=SupervisorConfig(
                interval_s=0.01, hang_timeout_s=5.0, max_restarts=3
            ),
        )
        try:
            doomed = service.submit(X[0], model="m")
            service.flush()  # the worker dies with this batch in hand
            with pytest.raises(ShardFailedError):
                doomed.result(10.0)
            # The replacement worker serves the next request normally.
            survivor = service.submit(X[1], model="m")
            service.flush()
            assert survivor.result(10.0).label in set(int(v) for v in y)
            assert service.metrics.shard_restarts == 1
            restarts = service.obs.events.events(kind="shard_restart")
            assert len(restarts) == 1 and restarts[0].fields["reason"] == "died"
            assert service.pending_requests == 0
        finally:
            service.stop()

    def test_wedged_worker_abandoned_and_replaced(self, cluster_data):
        X, y = cluster_data
        classifier = _fit(X, y)
        injector = FaultInjector(
            specs=[FaultSpec(KERNEL_HANG, hang_s=0.5, max_fires=1)]
        )
        service = _service(
            classifier,
            injector=injector,
            cache_capacity=0,
            supervisor=SupervisorConfig(
                interval_s=0.01, hang_timeout_s=0.05, max_restarts=3
            ),
        )
        try:
            wedged = service.submit(X[0], model="m")
            service.flush()
            # The watchdog must declare the worker wedged long before the
            # 500ms sleep finishes, fail the batch and start a replacement.
            with pytest.raises(ShardFailedError) as excinfo:
                wedged.result(5.0)
            assert "wedged" in str(excinfo.value)
            survivor = service.submit(X[1], model="m")
            service.flush()
            assert survivor.result(10.0).label in set(int(v) for v in y)
            assert service.metrics.shard_restarts == 1
            assert service.pending_requests == 0
        finally:
            service.stop()

    def test_restart_budget_exhaustion_disables_shard(self, cluster_data):
        X, y = cluster_data
        classifier = _fit(X, y)
        # Every dequeued batch kills the worker: the shard burns through its
        # restart budget and must be disabled, not restarted forever.
        injector = FaultInjector(specs=[FaultSpec(SHARD_DEATH)])
        service = _service(
            classifier,
            injector=injector,
            cache_capacity=0,
            supervisor=SupervisorConfig(
                interval_s=0.01, hang_timeout_s=5.0, max_restarts=2
            ),
        )
        try:
            _, shard = service.registry.iter_shards()[0]
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and not shard.disabled:
                future = service.submit(X[0], model="m")
                service.flush()
                # ShardFailedError while the worker keeps dying; once the
                # shard is disabled the dispatch path sheds the batch with
                # CircuitOpenError (a ServiceOverloadedError subclass).
                with pytest.raises((ShardFailedError, ServiceOverloadedError)):
                    future.result(10.0)
            assert shard.disabled, "shard was never disabled"
            assert service.metrics.shard_restarts == 2
            assert len(service.obs.events.events(kind="shard_disabled")) == 1
            assert service.pending_requests == 0
        finally:
            service.stop()

    def test_supervisor_scan_is_drivable_synchronously(self, cluster_data):
        """The watchdog logic is testable without its thread: a dead worker
        plus one scan() call equals one restart."""
        X, y = cluster_data
        classifier = _fit(X, y)
        injector = FaultInjector(specs=[FaultSpec(SHARD_DEATH, max_fires=1)])
        service = _service(classifier, injector=injector, supervisor=None)
        try:
            supervisor = ShardSupervisor(
                service.registry,
                config=SupervisorConfig(interval_s=1.0, hang_timeout_s=5.0),
            )
            future = service.submit(X[0], model="m")
            service.flush()
            _, shard = service.registry.iter_shards()[0]
            deadline = time.monotonic() + 5.0
            while shard.thread_alive and time.monotonic() < deadline:
                time.sleep(0.005)
            assert not shard.thread_alive
            assert supervisor.scan() == 1
            assert supervisor.restarts_performed == 1
            with pytest.raises(ShardFailedError):
                future.result(1.0)
            assert shard.thread_alive  # replacement running
        finally:
            service.stop()


# --------------------------------------------------------------------- #
# Leak-aware shutdown (satellite: stop() must report a wedged worker)
# --------------------------------------------------------------------- #
class TestLeakAwareStop:
    def test_stop_reports_wedged_worker_as_leak(self, cluster_data, caplog):
        X, y = cluster_data
        classifier = _fit(X, y)
        injector = FaultInjector(
            specs=[FaultSpec(KERNEL_HANG, hang_s=0.4, max_fires=1)]
        )
        done = threading.Event()
        shard = WorkerShard(
            "m/0",
            classifier,
            lambda s, b, p: done.set(),
            fault_injector=injector,
        )
        shard.start()
        from tests.test_lifecycle import _direct_batch

        _, batch = _direct_batch("m", X[0])
        assert shard.try_submit(batch)
        time.sleep(0.05)  # let the worker enter the hung kernel
        with caplog.at_level("WARNING", logger="repro.serve.shard"):
            assert shard.stop(timeout=0.05) is False
        assert shard.leaked
        assert any("leaked" in r.getMessage() for r in caplog.records)
        done.wait(2.0)  # the sleep ends; let the thread finish cleanly

    def test_clean_stop_reports_no_leak(self, cluster_data):
        X, y = cluster_data
        classifier = _fit(X, y)
        shard = WorkerShard("m/0", classifier, lambda s, b, p: None)
        shard.start()
        assert shard.stop(timeout=5.0) is True
        assert not shard.leaked
