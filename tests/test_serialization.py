"""Unit tests for model serialisation (codec-based format v2 + v1 compat)."""

import json
import zipfile

import numpy as np
import pytest

from repro.core import (
    BinarySom,
    DeltaSnapshot,
    KohonenSom,
    LossySerializationWarning,
    ModelSnapshot,
    SomClassifier,
    load_delta,
    load_model,
    load_snapshot,
    save_delta,
    save_model,
    snapshot_model,
)
from repro.core.bsom import BsomUpdateRule
from repro.core.topology import (
    ConstantNeighbourhoodSchedule,
    Grid2DTopology,
    LinearTopology,
    NeighbourhoodSchedule,
    RingTopology,
    StepwiseNeighbourhoodSchedule,
)
from repro.errors import DataError, SnapshotCorruptionError


class TestSaveLoadMaps:
    def test_bsom_roundtrip(self, tmp_path, cluster_data):
        X, _ = cluster_data
        som = BinarySom(8, X.shape[1], seed=0).fit(X, epochs=2, seed=1)
        path = save_model(som, tmp_path / "bsom.npz")
        loaded = load_model(path)
        assert isinstance(loaded, BinarySom)
        assert loaded.weights == som.weights
        assert loaded.n_neurons == som.n_neurons
        x = X[0]
        assert loaded.winner(x) == som.winner(x)

    def test_csom_roundtrip(self, tmp_path, cluster_data):
        X, _ = cluster_data
        som = KohonenSom(8, X.shape[1], seed=0).fit(X, epochs=2, seed=1)
        path = save_model(som, tmp_path / "csom.npz")
        loaded = load_model(path)
        assert isinstance(loaded, KohonenSom)
        assert np.allclose(loaded.weights, som.weights)

    def test_update_rule_preserved(self, tmp_path):
        rule = BsomUpdateRule(winner_rule="full", neighbour_rule="commit", neighbour_strength=0.25)
        som = BinarySom(4, 16, seed=0, update_rule=rule)
        loaded = load_model(save_model(som, tmp_path / "m.npz"))
        assert loaded.update_rule == rule

    def test_topology_kinds_roundtrip(self, tmp_path):
        for topology in (RingTopology(6), Grid2DTopology(2, 3)):
            som = BinarySom(6, 16, seed=0, topology=topology)
            loaded = load_model(save_model(som, tmp_path / f"{type(topology).__name__}.npz"))
            assert type(loaded.topology) is type(topology)

    def test_suffix_added_automatically(self, tmp_path):
        som = BinarySom(4, 8, seed=0)
        path = save_model(som, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataError):
            load_model(tmp_path / "missing.npz")


class TestSaveLoadClassifier:
    def test_classifier_roundtrip_preserves_predictions(self, tmp_path, cluster_data):
        X, y = cluster_data
        classifier = SomClassifier(
            BinarySom(16, X.shape[1], seed=0), rejection_percentile=99.0
        ).fit(X, y, epochs=4, seed=1)
        path = save_model(classifier, tmp_path / "clf.npz")
        loaded = load_model(path)
        assert isinstance(loaded, SomClassifier)
        assert loaded.rejection_threshold == pytest.approx(classifier.rejection_threshold)
        assert np.array_equal(loaded.predict(X), classifier.predict(X))

    def test_unfitted_classifier_roundtrip(self, tmp_path):
        classifier = SomClassifier(BinarySom(4, 8, seed=0))
        loaded = load_model(save_model(classifier, tmp_path / "raw.npz"))
        assert isinstance(loaded, SomClassifier)
        assert loaded.labelling is None


# --------------------------------------------------------------------- #
# Format v2: backend + weights-version persistence (the PR-2 regression)
# --------------------------------------------------------------------- #
class TestBackendAndVersionPersistence:
    def test_packed_backend_and_version_survive_roundtrip(self, tmp_path, cluster_data):
        X, y = cluster_data
        classifier = SomClassifier(
            BinarySom(16, X.shape[1], seed=0, backend="packed")
        ).fit(X, y, epochs=4, seed=1)
        version = classifier.som.weights_version
        assert version > 0  # training bumped it

        loaded = load_model(save_model(classifier, tmp_path / "clf.npz"))
        assert loaded.som.backend.name == "packed"
        assert loaded.som.weights_version == version
        np.testing.assert_array_equal(loaded.predict(X), classifier.predict(X))

    def test_gemm_and_hybrid_backends_roundtrip(self, tmp_path, cluster_data):
        X, _ = cluster_data
        for backend in ("gemm", "hybrid"):
            som = BinarySom(8, X.shape[1], seed=0, backend=backend)
            loaded = load_model(save_model(som, tmp_path / f"{backend}.npz"))
            assert loaded.backend.name == backend

    def test_loaded_operand_cache_keys_match_restored_version(self, tmp_path, cluster_data):
        # The restored counter keys freshly-prepared operands, so queries
        # right after load() warm the cache at the persisted version and
        # later queries reuse it rather than re-preparing from scratch.
        X, y = cluster_data
        classifier = SomClassifier(
            BinarySom(16, X.shape[1], seed=0, backend="packed")
        ).fit(X, y, epochs=2, seed=1)
        loaded = load_model(save_model(classifier, tmp_path / "clf.npz"))
        loaded.predict(X[:4])
        cached = loaded.som._operand_cache.cached_versions()
        assert cached == {"packed": classifier.som.weights_version}
        before = dict(cached)
        loaded.predict(X[:4])  # no weight change: same entry, same version
        assert loaded.som._operand_cache.cached_versions() == before

    def test_snapshot_records_backend_and_version(self, cluster_data):
        X, y = cluster_data
        classifier = SomClassifier(
            BinarySom(8, X.shape[1], seed=0, backend="naive")
        ).fit(X, y, epochs=1, seed=1)
        snapshot = ModelSnapshot.of(classifier)
        assert snapshot.backend == "naive"
        assert snapshot.weights_version == classifier.som.weights_version
        assert snapshot.is_fitted


# --------------------------------------------------------------------- #
# Round-trips across every topology kind and schedule
# --------------------------------------------------------------------- #
class TestTopologyScheduleMatrix:
    TOPOLOGIES = [
        lambda: LinearTopology(6),
        lambda: RingTopology(6),
        lambda: Grid2DTopology(2, 3),
    ]
    SCHEDULES = [
        lambda: StepwiseNeighbourhoodSchedule(max_radius=3, min_radius=1),
        lambda: ConstantNeighbourhoodSchedule(radius=2),
    ]

    @pytest.mark.parametrize("topology_index", range(3))
    @pytest.mark.parametrize("schedule_index", range(2))
    def test_bsom_roundtrip_matrix(self, tmp_path, topology_index, schedule_index):
        topology = self.TOPOLOGIES[topology_index]()
        schedule = self.SCHEDULES[schedule_index]()
        som = BinarySom(6, 16, seed=0, topology=topology, schedule=schedule)
        loaded = load_model(save_model(som, tmp_path / "m.npz"))
        assert type(loaded.topology) is type(topology)
        assert type(loaded.schedule) is type(schedule)
        for iteration in range(4):
            assert loaded.schedule.radius(iteration, 4) == schedule.radius(iteration, 4)
        for a in range(6):
            for b in range(6):
                assert loaded.topology.grid_distance(a, b) == topology.grid_distance(a, b)

    @pytest.mark.parametrize("topology_index", range(3))
    def test_csom_roundtrip_matrix(self, tmp_path, topology_index):
        topology = self.TOPOLOGIES[topology_index]()
        som = KohonenSom(6, 16, seed=0, topology=topology)
        loaded = load_model(save_model(som, tmp_path / "m.npz"))
        assert type(loaded.topology) is type(topology)
        np.testing.assert_allclose(loaded.weights, som.weights)

    def test_custom_schedule_collapse_warns(self, tmp_path):
        class SawtoothSchedule(NeighbourhoodSchedule):
            def radius(self, iteration, total_iterations):
                return 2 + (iteration % 2)

        som = BinarySom(4, 16, seed=0, schedule=SawtoothSchedule())
        with pytest.warns(LossySerializationWarning, match="SawtoothSchedule"):
            path = save_model(som, tmp_path / "lossy.npz")
        loaded = load_model(path)
        # Collapsed to the iteration-0 radius, held constant.
        assert isinstance(loaded.schedule, StepwiseNeighbourhoodSchedule)
        assert loaded.schedule.max_radius == loaded.schedule.min_radius == 2

    def test_registered_schedules_do_not_warn(self, tmp_path, recwarn):
        som = BinarySom(4, 16, seed=0, schedule=ConstantNeighbourhoodSchedule(1))
        save_model(som, tmp_path / "ok.npz")
        assert not [w for w in recwarn if w.category is LossySerializationWarning]


# --------------------------------------------------------------------- #
# Legacy format-v1 archives stay loadable
# --------------------------------------------------------------------- #
def _write_v1_archive(path, classifier):
    """Replicate the pre-codec v1 writer byte layout."""
    som = classifier.som
    header = {
        "format_version": 1,
        "model": "SomClassifier",
        "rejection_percentile": classifier.rejection_percentile,
        "rejection_margin": classifier.rejection_margin,
        "rejection_threshold": classifier.rejection_threshold,
        "som": "BinarySom",
        "n_neurons": som.n_neurons,
        "n_bits": som.n_bits,
        "topology": {"kind": "linear", "n_neurons": som.n_neurons},
        "schedule": {"kind": "stepwise", "max_radius": 4, "min_radius": 1},
        "update_rule": {
            "winner_rule": som.update_rule.winner_rule,
            "neighbour_rule": som.update_rule.neighbour_rule,
            "neighbour_strength": som.update_rule.neighbour_strength,
        },
    }
    arrays = {
        "weights": som.weights.values,
        "node_labels": classifier.labelling.node_labels,
        "win_frequencies": classifier.labelling.win_frequencies,
        "labels": classifier.labelling.labels,
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
    }
    np.savez_compressed(path, **arrays)
    return path


class TestV1Compatibility:
    def test_v1_classifier_archive_loads(self, tmp_path, cluster_data):
        X, y = cluster_data
        classifier = SomClassifier(
            BinarySom(16, X.shape[1], seed=0), rejection_percentile=99.0
        ).fit(X, y, epochs=4, seed=1)
        path = _write_v1_archive(tmp_path / "legacy.npz", classifier)
        loaded = load_model(path)
        assert isinstance(loaded, SomClassifier)
        np.testing.assert_array_equal(loaded.predict(X), classifier.predict(X))
        assert loaded.rejection_threshold == pytest.approx(
            classifier.rejection_threshold
        )

    def test_v1_snapshot_has_no_backend_or_version(self, tmp_path, cluster_data):
        X, y = cluster_data
        classifier = SomClassifier(BinarySom(8, X.shape[1], seed=0)).fit(
            X, y, epochs=1, seed=1
        )
        path = _write_v1_archive(tmp_path / "legacy.npz", classifier)
        snapshot = load_snapshot(path)
        assert snapshot.format_version == 1
        assert snapshot.backend is None
        assert snapshot.weights_version is None

    def test_unsupported_version_rejected(self, tmp_path):
        header = {"format_version": 99}
        np.savez_compressed(
            tmp_path / "future.npz",
            header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        )
        with pytest.raises(DataError, match="format version"):
            load_model(tmp_path / "future.npz")


# --------------------------------------------------------------------- #
# The snapshot itself
# --------------------------------------------------------------------- #
class TestModelSnapshot:
    def test_snapshot_is_immutable_and_decoupled(self, cluster_data):
        X, y = cluster_data
        classifier = SomClassifier(BinarySom(8, X.shape[1], seed=0)).fit(
            X, y, epochs=1, seed=1
        )
        snapshot = ModelSnapshot.of(classifier)
        with pytest.raises(ValueError):
            snapshot.weights[0, 0] = 1  # read-only view
        frozen = snapshot.weights.copy()
        classifier.som.partial_fit(X[0], 0, 1)  # keep training the live map
        np.testing.assert_array_equal(snapshot.weights, frozen)

    def test_snapshot_passthrough_and_metadata_merge(self, cluster_data):
        X, y = cluster_data
        classifier = SomClassifier(BinarySom(8, X.shape[1], seed=0)).fit(
            X, y, epochs=1, seed=1
        )
        snapshot = snapshot_model(classifier, metadata={"site": "hall"})
        assert snapshot_model(snapshot) is snapshot
        merged = snapshot_model(snapshot, metadata={"camera": "0"})
        assert merged.metadata == {"site": "hall", "camera": "0"}

    def test_metadata_roundtrips_through_archive(self, tmp_path, cluster_data):
        X, y = cluster_data
        classifier = SomClassifier(BinarySom(8, X.shape[1], seed=0)).fit(
            X, y, epochs=1, seed=1
        )
        snapshot = snapshot_model(classifier, metadata={"site": "hall"})
        loaded = load_snapshot(save_model(snapshot, tmp_path / "m.npz"))
        assert loaded.metadata == {"site": "hall"}

    def test_bare_map_snapshot_refuses_to_classify(self):
        snapshot = ModelSnapshot.of(BinarySom(4, 8, seed=0))
        with pytest.raises(DataError, match="bare"):
            snapshot.to_classifier()

    def test_to_model_returns_matching_types(self, tmp_path, cluster_data):
        X, y = cluster_data
        assert isinstance(ModelSnapshot.of(BinarySom(4, X.shape[1], seed=0)).to_model(), BinarySom)
        assert isinstance(ModelSnapshot.of(KohonenSom(4, X.shape[1], seed=0)).to_model(), KohonenSom)
        fitted = SomClassifier(BinarySom(8, X.shape[1], seed=0)).fit(X, y, epochs=1, seed=1)
        rebuilt = ModelSnapshot.of(fitted).to_model()
        assert isinstance(rebuilt, SomClassifier)
        np.testing.assert_array_equal(rebuilt.predict(X), fitted.predict(X))


# --------------------------------------------------------------------- #
# Crash-safe archives: atomic writes, checksums, fail-closed loads
# --------------------------------------------------------------------- #
def _fitted_snapshot(cluster_data, seed=0):
    X, y = cluster_data
    classifier = SomClassifier(BinarySom(8, X.shape[1], seed=seed)).fit(
        X, y, epochs=2, seed=1
    )
    return ModelSnapshot.of(classifier)


def _flip_member_byte(path, member, offset=8):
    """Flip one bit inside ``member``'s compressed data region."""
    raw = bytearray(path.read_bytes())
    with zipfile.ZipFile(path) as archive:
        info = next(i for i in archive.infolist() if member in i.filename)
    base = info.header_offset
    name_len = int.from_bytes(raw[base + 26 : base + 28], "little")
    extra_len = int.from_bytes(raw[base + 28 : base + 30], "little")
    data_start = base + 30 + name_len + extra_len
    raw[data_start + offset] ^= 0x40
    path.write_bytes(bytes(raw))


class TestCrashSafeArchives:
    def test_save_is_atomic_and_leaves_no_temp_files(self, tmp_path, cluster_data):
        snapshot = _fitted_snapshot(cluster_data)
        save_model(snapshot, tmp_path / "m.npz")
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "m.npz"]
        assert leftovers == []

    def test_header_records_a_checksum_per_array(self, tmp_path, cluster_data):
        snapshot = _fitted_snapshot(cluster_data)
        path = save_model(snapshot, tmp_path / "m.npz")
        with np.load(path) as archive:
            header = json.loads(bytes(archive["header"].tobytes()).decode())
            names = set(archive.files) - {"header"}
        assert set(header["checksums"]) == names
        assert all(isinstance(v, int) for v in header["checksums"].values())

    def test_truncated_archive_fails_closed(self, tmp_path, cluster_data):
        snapshot = _fitted_snapshot(cluster_data)
        path = save_model(snapshot, tmp_path / "m.npz")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SnapshotCorruptionError):
            load_snapshot(path)

    def test_bit_flip_in_array_data_fails_closed(self, tmp_path, cluster_data):
        snapshot = _fitted_snapshot(cluster_data)
        path = save_model(snapshot, tmp_path / "m.npz")
        _flip_member_byte(path, "weights")
        with pytest.raises(SnapshotCorruptionError):
            load_snapshot(path)

    def test_corruption_error_is_a_data_error(self):
        assert issubclass(SnapshotCorruptionError, DataError)

    def test_injected_corruption_site(self, tmp_path, cluster_data):
        from repro.serve import SNAPSHOT_CORRUPT, FaultInjector, FaultSpec

        snapshot = _fitted_snapshot(cluster_data)
        path = save_model(snapshot, tmp_path / "m.npz")
        injector = FaultInjector(
            seed=3, specs=[FaultSpec(site=SNAPSHOT_CORRUPT, probability=1.0)]
        )
        with pytest.raises(SnapshotCorruptionError):
            load_snapshot(path, fault_injector=injector)
        # The archive itself is fine: a clean load still works.
        assert load_snapshot(path).is_fitted


# --------------------------------------------------------------------- #
# Delta snapshots: row-level diffs, checksum-verified materialisation
# --------------------------------------------------------------------- #
class TestDeltaSnapshots:
    def _base_and_current(self, cluster_data):
        X, y = cluster_data
        classifier = SomClassifier(BinarySom(12, X.shape[1], seed=4)).fit(
            X, y, epochs=2, seed=1
        )
        base = ModelSnapshot.of(classifier)
        for row in X[:6]:
            classifier.som.partial_fit(row, 0, 4)
        current = ModelSnapshot.of(classifier)
        return base, current

    def test_between_apply_is_bit_exact(self, cluster_data):
        base, current = self._base_and_current(cluster_data)
        delta = DeltaSnapshot.between(base, current)
        assert 0 < delta.n_rows <= base.weights.shape[0]
        applied = delta.apply(base)
        np.testing.assert_array_equal(applied.weights, current.weights)
        assert applied.weights_version == current.weights_version
        np.testing.assert_array_equal(
            applied.labelling.node_labels, current.labelling.node_labels
        )

    def test_apply_refuses_wrong_base(self, cluster_data):
        base, current = self._base_and_current(cluster_data)
        delta = DeltaSnapshot.between(base, current)
        with pytest.raises(DataError):
            delta.apply(current)  # weights_version mismatch

    def test_tampered_checksum_fails_closed(self, cluster_data):
        import dataclasses

        base, current = self._base_and_current(cluster_data)
        delta = DeltaSnapshot.between(base, current)
        tampered = dataclasses.replace(
            delta, full_weights_crc32=delta.full_weights_crc32 ^ 1
        )
        with pytest.raises(SnapshotCorruptionError):
            tampered.apply(base)

    def test_delta_archive_roundtrip(self, tmp_path, cluster_data):
        base, current = self._base_and_current(cluster_data)
        delta = DeltaSnapshot.between(base, current, metadata={"source": "online"})
        path = save_delta(delta, tmp_path / "d.npz")
        loaded = load_delta(path)
        assert loaded.metadata["source"] == "online"
        np.testing.assert_array_equal(loaded.row_indices, delta.row_indices)
        applied = loaded.apply(base)
        np.testing.assert_array_equal(applied.weights, current.weights)

    def test_loaders_refuse_the_wrong_archive_kind(self, tmp_path, cluster_data):
        base, current = self._base_and_current(cluster_data)
        full_path = save_model(base, tmp_path / "full.npz")
        delta_path = save_delta(
            DeltaSnapshot.between(base, current), tmp_path / "d.npz"
        )
        with pytest.raises(DataError, match="delta"):
            load_snapshot(delta_path)
        with pytest.raises(DataError, match="full model"):
            load_delta(full_path)

    def test_corrupted_delta_archive_fails_closed(self, tmp_path, cluster_data):
        base, current = self._base_and_current(cluster_data)
        path = save_delta(DeltaSnapshot.between(base, current), tmp_path / "d.npz")
        _flip_member_byte(path, "rows")
        with pytest.raises(SnapshotCorruptionError):
            load_delta(path)
