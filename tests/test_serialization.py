"""Unit tests for model serialisation."""

import numpy as np
import pytest

from repro.core import BinarySom, KohonenSom, SomClassifier, load_model, save_model
from repro.core.bsom import BsomUpdateRule
from repro.core.topology import Grid2DTopology, RingTopology
from repro.errors import DataError


class TestSaveLoadMaps:
    def test_bsom_roundtrip(self, tmp_path, cluster_data):
        X, _ = cluster_data
        som = BinarySom(8, X.shape[1], seed=0).fit(X, epochs=2, seed=1)
        path = save_model(som, tmp_path / "bsom.npz")
        loaded = load_model(path)
        assert isinstance(loaded, BinarySom)
        assert loaded.weights == som.weights
        assert loaded.n_neurons == som.n_neurons
        x = X[0]
        assert loaded.winner(x) == som.winner(x)

    def test_csom_roundtrip(self, tmp_path, cluster_data):
        X, _ = cluster_data
        som = KohonenSom(8, X.shape[1], seed=0).fit(X, epochs=2, seed=1)
        path = save_model(som, tmp_path / "csom.npz")
        loaded = load_model(path)
        assert isinstance(loaded, KohonenSom)
        assert np.allclose(loaded.weights, som.weights)

    def test_update_rule_preserved(self, tmp_path):
        rule = BsomUpdateRule(winner_rule="full", neighbour_rule="commit", neighbour_strength=0.25)
        som = BinarySom(4, 16, seed=0, update_rule=rule)
        loaded = load_model(save_model(som, tmp_path / "m.npz"))
        assert loaded.update_rule == rule

    def test_topology_kinds_roundtrip(self, tmp_path):
        for topology in (RingTopology(6), Grid2DTopology(2, 3)):
            som = BinarySom(6, 16, seed=0, topology=topology)
            loaded = load_model(save_model(som, tmp_path / f"{type(topology).__name__}.npz"))
            assert type(loaded.topology) is type(topology)

    def test_suffix_added_automatically(self, tmp_path):
        som = BinarySom(4, 8, seed=0)
        path = save_model(som, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataError):
            load_model(tmp_path / "missing.npz")


class TestSaveLoadClassifier:
    def test_classifier_roundtrip_preserves_predictions(self, tmp_path, cluster_data):
        X, y = cluster_data
        classifier = SomClassifier(
            BinarySom(16, X.shape[1], seed=0), rejection_percentile=99.0
        ).fit(X, y, epochs=4, seed=1)
        path = save_model(classifier, tmp_path / "clf.npz")
        loaded = load_model(path)
        assert isinstance(loaded, SomClassifier)
        assert loaded.rejection_threshold == pytest.approx(classifier.rejection_threshold)
        assert np.array_equal(loaded.predict(X), classifier.predict(X))

    def test_unfitted_classifier_roundtrip(self, tmp_path):
        classifier = SomClassifier(BinarySom(4, 8, seed=0))
        loaded = load_model(save_model(classifier, tmp_path / "raw.npz"))
        assert isinstance(loaded, SomClassifier)
        assert loaded.labelling is None
