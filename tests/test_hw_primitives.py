"""Unit tests for the hardware primitives: clock, LFSR, BlockRAM, devices."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, HardwareModelError
from repro.hw import BlockRam, BlockRamBank, ClockDomain, Lfsr, VIRTEX4_XC4VLX160
from repro.hw.bram import RAMB16_BITS
from repro.hw.device import DEVICES, get_device


class TestClockDomain:
    def test_paper_clock_default(self):
        clock = ClockDomain()
        assert clock.frequency_mhz == 40.0
        assert clock.period_ns == pytest.approx(25.0)

    def test_tick_accumulates(self):
        clock = ClockDomain()
        clock.tick(768)
        clock.tick(7)
        assert clock.cycles == 775

    def test_elapsed_seconds(self):
        clock = ClockDomain(40.0)
        clock.tick(40_000_000)
        assert clock.elapsed_seconds() == pytest.approx(1.0)
        assert clock.elapsed_seconds(775) == pytest.approx(775 / 40e6)

    def test_cycles_for_seconds(self):
        clock = ClockDomain(40.0)
        assert clock.cycles_for_seconds(1.0) == 40_000_000

    def test_reset(self):
        clock = ClockDomain()
        clock.tick(5)
        clock.reset()
        assert clock.cycles == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClockDomain(0)
        with pytest.raises(ConfigurationError):
            ClockDomain().tick(-1)


class TestLfsr:
    def test_output_is_binary(self):
        lfsr = Lfsr(width=8, seed=0x5A)
        assert set(lfsr.bits(100)).issubset({0, 1})

    def test_maximal_period_for_small_widths(self):
        for width in (3, 4, 5, 7, 8):
            lfsr = Lfsr(width=width, seed=1)
            assert lfsr.period() == 2**width - 1

    def test_deterministic_for_seed(self):
        assert Lfsr(width=16, seed=7).bits(64) == Lfsr(width=16, seed=7).bits(64)

    def test_different_seeds_differ(self):
        assert Lfsr(width=16, seed=7).bits(64) != Lfsr(width=16, seed=9).bits(64)

    def test_balanced_output(self):
        bits = Lfsr(width=16, seed=0xACE1).bits(4096)
        ones = sum(bits)
        assert 0.45 < ones / 4096 < 0.55

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Lfsr(width=1)
        with pytest.raises(ConfigurationError):
            Lfsr(width=16, seed=0)
        with pytest.raises(ConfigurationError):
            Lfsr(width=6)  # no default taps for width 6
        with pytest.raises(ConfigurationError):
            Lfsr(width=8, taps=(0, 3))


class TestBlockRam:
    def test_word_read_write(self):
        ram = BlockRam(words=4, word_width=8)
        word = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        ram.write(2, word)
        assert np.array_equal(ram.read(2), word)
        assert ram.write_count == 1 and ram.read_count == 1

    def test_bit_access(self):
        ram = BlockRam(words=2, word_width=4)
        ram.write_bit(1, 3, 1)
        assert ram.read_bit(1, 3) == 1
        assert ram.read_bit(1, 0) == 0

    def test_capacity_accounting(self):
        ram = BlockRam(words=40, word_width=768)
        assert ram.capacity_bits == 40 * 768
        assert ram.ramb16_count == -(-40 * 768 // RAMB16_BITS) == 2

    def test_address_and_value_checks(self):
        ram = BlockRam(words=2, word_width=4)
        with pytest.raises(HardwareModelError):
            ram.read(5)
        with pytest.raises(HardwareModelError):
            ram.write(0, np.zeros(5, dtype=np.uint8))
        with pytest.raises(HardwareModelError):
            ram.write(0, np.full(4, 3, dtype=np.uint8))
        with pytest.raises(HardwareModelError):
            ram.write_bit(0, 9, 1)
        with pytest.raises(HardwareModelError):
            ram.write_bit(0, 0, 2)

    def test_bank_allocation_and_totals(self):
        bank = BlockRamBank()
        bank.allocate("weights_value", 40, 768)
        bank.allocate("weights_care", 40, 768)
        assert bank.total_bits == 2 * 40 * 768
        assert bank.total_ramb16 == 4
        assert "weights_value" in bank
        assert bank["weights_value"].words == 40
        report = bank.report()
        assert report["weights_care"]["ramb16"] == 2
        with pytest.raises(ConfigurationError):
            bank.allocate("weights_value", 1, 1)
        with pytest.raises(ConfigurationError):
            bank["missing"]


class TestDevices:
    def test_paper_device_capacities_match_table4_totals(self):
        device = VIRTEX4_XC4VLX160
        assert device.flip_flops == 135_168
        assert device.luts == 135_168
        assert device.bonded_iobs == 768
        assert device.slices == 67_584
        assert device.ram16s == 288
        assert device.logic_cells == 152_064
        assert device.embedded_ram_kbits == 5_184

    def test_lookup(self):
        assert get_device("XC4VLX160") is VIRTEX4_XC4VLX160
        assert "XC4VLX60" in DEVICES
        with pytest.raises(ConfigurationError):
            get_device("XC7K325T")

    def test_capacity_accessor(self):
        assert VIRTEX4_XC4VLX160.capacity("luts") == 135_168
        with pytest.raises(ConfigurationError):
            VIRTEX4_XC4VLX160.capacity("dsp48")
