"""Trace propagation through the streaming service (repro.obs x repro.serve).

The edge cases the observability layer exists for: complete span chains
retrievable by ``trace_id``, dedup followers linking to the primary's
kernel span, traces spanning a mid-flight hot-swap, evicted requests
still emitting terminal spans, and the completed-trace ring staying
bounded under load.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelEvictedError, ServiceOverloadedError
from repro.obs import Observability
from repro.obs.export import parse_prometheus
from repro.pipeline.metrics import PipelineMetrics
from repro.serve import ServiceConfig, StreamingInferenceService


def unique_signature(index: int, n_bits: int = 128) -> np.ndarray:
    """Distinct bit patterns so no two requests cache-hit or dedup."""
    bits = np.zeros(n_bits, dtype=np.uint8)
    bits[index % n_bits] = 1
    bits[(index * 7 + 3) % n_bits] = 1
    return bits


@pytest.fixture()
def traced_service(trained_bsom_classifier):
    """A running service tracing every request (sample_every=1)."""
    config = ServiceConfig(
        batch_size=8, max_delay_ms=2.0, n_shards=1, trace_sample_every=1
    )
    service = StreamingInferenceService(config=config)
    service.register_model("m", trained_bsom_classifier)
    with service:
        yield service


class TestRequestTrace:
    def test_single_request_full_span_chain(self, traced_service, cluster_data):
        X, _ = cluster_data
        future = traced_service.submit(X[0], model="m", stream_id="cam-0")
        traced_service.flush()
        response = future.result(5.0)

        assert response.trace_id is not None
        trace = traced_service.obs.trace(response.trace_id)
        assert trace is not None and trace.finished
        assert trace.status == "ok"
        assert trace.span_names() == ("request", "queue", "batch", "kernel")
        # Stage boundaries are consistent: queue ends where batch starts,
        # batch ends where the kernel starts, all inside the root span.
        queue, batch, kernel = (
            trace.find("queue"), trace.find("batch"), trace.find("kernel")
        )
        assert queue.end_s == batch.start_s
        assert batch.end_s == kernel.start_s
        assert trace.root.start_s <= queue.start_s
        assert kernel.end_s <= trace.root.end_s
        # The kernel span records where and with what the work ran.
        assert kernel.attrs["shard"].startswith("m/")
        assert kernel.attrs["model"] == "m"
        assert kernel.attrs["batch_size"] >= 1
        assert trace.root.attrs["stream_id"] == "cam-0"
        assert trace.root.attrs["label"] == response.label

    def test_cache_hit_trace(self, traced_service, cluster_data):
        X, _ = cluster_data
        first = traced_service.submit(X[0], model="m")
        traced_service.flush()
        first.result(5.0)

        hit = traced_service.submit(X[0], model="m").result(5.0)
        assert hit.cached
        trace = traced_service.obs.trace(hit.trace_id)
        assert trace.span_names() == ("request", "cache")
        assert trace.find("cache").attrs == {"hit": True}
        assert trace.status == "ok"
        assert trace.root.attrs["cached"] is True

    def test_unsampled_requests_have_no_trace_id(self, trained_bsom_classifier, cluster_data):
        X, _ = cluster_data
        config = ServiceConfig(batch_size=4, trace_sample_every=0)
        service = StreamingInferenceService(config=config)
        service.register_model("m", trained_bsom_classifier)
        with service:
            future = service.submit(X[0], model="m")
            service.flush()
            assert future.result(5.0).trace_id is None
        assert service.obs.tracer.completed_count == 0

    def test_sampling_rate_traces_every_nth(self, trained_bsom_classifier):
        config = ServiceConfig(batch_size=64, trace_sample_every=4)
        service = StreamingInferenceService(config=config)
        service.register_model("m", trained_bsom_classifier)
        with service:
            futures = [
                service.submit(unique_signature(index), model="m")
                for index in range(12)
            ]
            service.flush()
            responses = [future.result(5.0) for future in futures]
        traced = [r.trace_id is not None for r in responses]
        assert traced == [True, False, False, False] * 3


class TestDedupFollowerTrace:
    def test_follower_links_to_primary_kernel_span(self, traced_service, cluster_data):
        X, _ = cluster_data
        # batch_size=8 > 2 pending submissions, so the primary sits in the
        # scheduler lane while the identical signature coalesces onto it.
        primary_future = traced_service.submit(X[3], model="m")
        follower_future = traced_service.submit(X[3], model="m")
        traced_service.flush()
        primary = primary_future.result(5.0)
        follower = follower_future.result(5.0)

        assert follower.deduplicated
        trace = traced_service.obs.trace(follower.trace_id)
        assert trace.status == "ok"
        assert trace.span_names() == ("request", "dedup")
        dedup = trace.find("dedup")
        assert dedup.attrs["primary_request_id"] == primary.request_id
        assert dedup.links == [{"trace_id": primary.trace_id, "span": "kernel"}]
        assert trace.root.attrs["deduplicated"] is True
        # The linked primary trace really does hold the kernel span.
        primary_trace = traced_service.obs.trace(primary.trace_id)
        assert primary_trace.find("kernel") is not None
        # And the coalesce left a structured event behind.
        dedup_events = traced_service.obs.events.events(kind="dedup")
        assert dedup_events and dedup_events[-1].fields["model"] == "m"


class TestLifecycleTraces:
    def test_trace_spans_hot_swap(self, traced_service, trained_bsom_classifier, cluster_data):
        X, _ = cluster_data
        # The request is buffered in the lane (batch_size=8) when the swap
        # lands; it must ride through and resolve on the *new* classifier,
        # with its one trace covering both sides of the swap.
        future = traced_service.submit(X[5], model="m")
        swapped_version = trained_bsom_classifier.som.weights_version
        traced_service.swap_model("m", trained_bsom_classifier)
        traced_service.flush()
        response = future.result(5.0)

        trace = traced_service.obs.trace(response.trace_id)
        assert trace.status == "ok"
        assert trace.span_names() == ("request", "queue", "batch", "kernel")
        assert trace.find("kernel").attrs["weights_version"] == swapped_version
        kinds = [event.kind for event in traced_service.obs.events.events()]
        assert "model_swap" in kinds and "cache_invalidate" in kinds
        assert kinds.index("model_swap") < kinds.index("cache_invalidate")

    def test_evicted_requests_emit_terminal_spans(self, traced_service, cluster_data):
        X, _ = cluster_data
        future = traced_service.submit(X[7], model="m")
        trace_id = traced_service.obs.tracer.completed() or None
        traced_service.evict_model("m")
        with pytest.raises(ModelEvictedError):
            future.result(5.0)

        # The lane-buffered request still finished its trace: terminal
        # status, error type, and every span closed.
        completed = traced_service.obs.tracer.completed()
        assert completed, trace_id
        trace = completed[-1]
        assert trace.status == "error"
        assert trace.root.attrs["error"] == "ModelEvictedError"
        assert all(not span.open for span in trace.spans)
        kinds = [event.kind for event in traced_service.obs.events.events()]
        assert "evict" in kinds

    def test_pending_budget_shed_finishes_trace(self, trained_bsom_classifier):
        config = ServiceConfig(
            batch_size=64, max_pending=1, trace_sample_every=1
        )
        service = StreamingInferenceService(config=config)
        service.register_model("m", trained_bsom_classifier)
        with service:
            kept = service.submit(unique_signature(0), model="m")
            with pytest.raises(ServiceOverloadedError):
                service.submit(unique_signature(1), model="m")
            shed_traces = [
                trace for trace in service.obs.tracer.completed()
                if trace.status == "shed"
            ]
            assert len(shed_traces) == 1
            assert shed_traces[0].root.attrs["reason"] == "pending_budget"
            shed_events = service.obs.events.events(kind="shed")
            assert shed_events[-1].fields["reason"] == "pending_budget"
            service.flush()
            kept.result(5.0)


class TestRingAndExport:
    def test_completed_ring_bounded_under_load(self, trained_bsom_classifier):
        obs = Observability(sample_every=1, trace_capacity=8)
        config = ServiceConfig(batch_size=16, max_delay_ms=2.0)
        service = StreamingInferenceService(config=config, obs=obs)
        service.register_model("m", trained_bsom_classifier)
        with service:
            futures = [
                service.submit(unique_signature(index), model="m")
                for index in range(100)
            ]
            service.flush()
            responses = [future.result(5.0) for future in futures]

        assert obs.tracer.completed_count == 8
        assert obs.tracer.dropped_traces == 100 - 8
        assert obs.tracer.active_count == 0
        # The ring keeps the newest traces; the oldest ids are gone.
        kept_ids = {trace.trace_id for trace in obs.tracer.completed()}
        assert kept_ids == {response.trace_id for response in responses[-8:]}
        assert obs.trace(responses[0].trace_id) is None

    def test_service_registry_renders_prometheus_with_p999(self, traced_service, cluster_data):
        X, _ = cluster_data
        for index in range(20):
            traced_service.submit(X[index], model="m")
        traced_service.flush()
        snapshot = traced_service.metrics_snapshot()
        assert snapshot.responses_total >= 1
        assert (
            snapshot.latency_p50_ms
            <= snapshot.latency_p99_ms
            <= snapshot.latency_p999_ms
        )
        samples = parse_prometheus(traced_service.obs.render_prometheus())
        assert samples[("serve_requests_total", ())] >= 20.0
        assert ("serve_request_latency_seconds_count", ()) in samples
        assert ("serve_pending_requests", ()) in samples

    def test_pipeline_metrics_share_service_registry(self, traced_service):
        pipeline = PipelineMetrics(registry=traced_service.obs.registry)
        pipeline.record_stage("background", 0.002)
        pipeline.record_frame(0.01)
        samples = parse_prometheus(traced_service.obs.render_prometheus())
        assert samples[("pipeline_frames_total", ())] == 1.0
        assert samples[
            ("pipeline_stage_seconds_total", (("stage", "background"),))
        ] == pytest.approx(0.002)
        # Both subsystems' metrics come out of one exporter pass.
        assert ("serve_requests_total", ()) in samples
