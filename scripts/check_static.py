#!/usr/bin/env python
"""CI gate: project-native static analysis over ``src/repro``.

Runs every rule in :data:`repro.analysis.DEFAULT_RULES` (lock-order,
unguarded-shared-state, thread-hygiene, determinism, metric/event
vocabulary, error-taxonomy, export-surface, import-cycle) against the
tree, compares the findings with the committed
``src/repro/analysis/baseline.json``, and exits nonzero if any *new*
finding appears.  Stdlib only; the whole run takes well under a second.

Usage::

    python scripts/check_static.py              # gate (CI entry point)
    python scripts/check_static.py --list-rules # rule table
    python scripts/check_static.py --all        # show known findings too
    python scripts/check_static.py --update-baseline
        # accept the current findings as the new baseline -- do this only
        # for deliberate exceptions you cannot express with an inline
        # `# repro: allow[rule]` pragma, and explain them in the PR.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import (  # noqa: E402  (path bootstrap above)
    DEFAULT_BASELINE_PATH,
    DEFAULT_RULES,
    diff_against_baseline,
    load_baseline,
    load_project,
    run_rules,
    save_baseline,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to the committed baseline",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="also print findings already covered by the baseline",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(rule.name) for rule in DEFAULT_RULES)
        for rule in DEFAULT_RULES:
            print(f"{rule.name:<{width}}  {rule.description}")
        return 0

    started = time.perf_counter()
    project = load_project(REPO_ROOT / "src", package="repro", repo_root=REPO_ROOT)
    findings = run_rules(project, DEFAULT_RULES)
    diff = diff_against_baseline(findings, load_baseline(DEFAULT_BASELINE_PATH))
    elapsed = time.perf_counter() - started

    if args.update_baseline:
        save_baseline(findings, DEFAULT_BASELINE_PATH)
        print(
            f"check_static: baseline rewritten with {len(findings)} "
            f"finding(s) at {DEFAULT_BASELINE_PATH}"
        )
        return 0

    print(
        f"check_static: {len(project.modules)} modules, "
        f"{len(DEFAULT_RULES)} rules, {len(findings)} finding(s) "
        f"({len(diff.known)} baselined) in {elapsed:.2f}s"
    )
    if args.all and diff.known:
        print("\nbaselined findings:")
        for finding in diff.known:
            print(f"  {finding.render()}")
    if diff.stale:
        print(
            f"\n{len(diff.stale)} stale baseline entr"
            f"{'y' if len(diff.stale) == 1 else 'ies'} (fixed or removed "
            "code; run --update-baseline to drop):"
        )
        for key in diff.stale:
            print(f"  {key}")
    if diff.new:
        print(f"\nNEW findings ({len(diff.new)}):", file=sys.stderr)
        for finding in diff.new:
            print(f"  {finding.render()}", file=sys.stderr)
        print(
            "\ncheck_static: FAILED -- fix the findings above, or silence "
            "a deliberate exception with `# repro: allow[rule-name]` plus "
            "a comment explaining why (baseline updates are for "
            "exceptions that cannot carry a pragma).",
            file=sys.stderr,
        )
        return 1
    print("check_static: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
