#!/usr/bin/env python
"""CI gate: serve-layer load harness + ``BENCH_serve.json`` regression guard.

Run by ``scripts/ci_check.sh`` after the rollout gate.  Replays the
committed three-phase benchmark workload (steady -> saturating burst ->
soak with hot-swaps, a victim eviction and rollout promote/demote cycles
mid-load) through ``repro.loadgen`` against a live service, then
enforces:

1. *Zero-drop at saturation* -- every submitted future goes terminal
   (answered, shed or failed); an unresolved future is an immediate
   failure.  This is the ``check_lifecycle.py`` contract held under
   open-loop overload plus lifecycle churn.
2. *Exhaustive accounting* -- per phase, ``answered + shed + failed +
   unresolved == offered`` with zero unexpected failures, and the soak
   phase performed every scheduled lifecycle action.
3. *Regression bounds* -- saturation (burst-phase) throughput must stay
   above ``baseline / 3`` and the steady-phase windowed p99 latency
   below ``baseline * 3`` (plus a small absolute grace), both against
   the committed ``BENCH_serve.json``.  Load timing is noisier than the
   kernel/vision guards, hence the wider slack; the contracts in (1) and
   (2) are exact.

A plain test run never rewrites the baseline once it exists; regenerate
deliberately after serve/loadgen changes with
``REPRO_WRITE_BENCH=1 pytest benchmarks/test_serve_load.py``.

Exit code 0 on success, 1 on any failure.
"""

from __future__ import annotations

import os
import sys

# Pin thread pools before numpy import, mirroring benchmarks/conftest.py,
# so the guard measures the same single-threaded regime as the baseline.
for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
):
    os.environ.setdefault(_var, "1")

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import test_serve_load as bench  # noqa: E402

THROUGHPUT_FLOOR_FACTOR = 3.0
LATENCY_CEILING_FACTOR = 3.0
LATENCY_GRACE_MS = 2.0


def fail(message: str) -> None:
    raise SystemExit(f"check_serve: FAIL -- {message}")


def main() -> None:
    if not bench.BENCH_PATH.exists():
        fail(
            f"{bench.BENCH_PATH} missing; regenerate with "
            "REPRO_WRITE_BENCH=1 pytest benchmarks/test_serve_load.py"
        )
    committed = json.loads(bench.BENCH_PATH.read_text())
    baseline = committed.get("baseline") or {}
    for key in (
        "saturation_throughput_rps",
        "steady_p99_ms",
        "steady_throughput_rps",
    ):
        if key not in baseline:
            fail(f"BENCH_serve.json baseline block lacks {key!r}")

    run, aggregate = bench.run_bench()

    # 1. Zero-drop at saturation.
    if not run.zero_drop:
        fail(f"{run.unresolved} futures never resolved (zero-drop violated)")
    print("check_serve: zero-drop contract held across all phases")

    # 2. Exhaustive accounting + lifecycle churn performed.
    for phase in run.phases:
        total = phase.answered + phase.shed + phase.failed + phase.unresolved
        if total != phase.offered:
            fail(
                f"phase {phase.name!r}: accounting leak "
                f"({total} terminal vs {phase.offered} offered)"
            )
        if phase.failed:
            fail(f"phase {phase.name!r}: {phase.failed} unexpected failures")
    soak = run.phases[-1]
    if (
        soak.swaps != bench.SOAK_SWAPS
        or soak.evictions != bench.SOAK_EVICTIONS
        or soak.rollouts != bench.SOAK_ROLLOUTS
    ):
        fail(
            f"soak churn incomplete: swaps={soak.swaps}/{bench.SOAK_SWAPS} "
            f"evictions={soak.evictions}/{bench.SOAK_EVICTIONS} "
            f"rollouts={soak.rollouts}/{bench.SOAK_ROLLOUTS}"
        )
    print(
        f"check_serve: soak churn complete ({soak.swaps} swaps, "
        f"{soak.evictions} evictions, {soak.rollouts} rollout cycles "
        "mid-load)"
    )

    # 3. Regression bounds against the committed baseline.
    burst = next(p for p in aggregate["phases"] if p["phase"] == "burst")
    steady = next(p for p in aggregate["phases"] if p["phase"] == "steady")
    floor = baseline["saturation_throughput_rps"] / THROUGHPUT_FLOOR_FACTOR
    if burst["throughput_rps"] < floor:
        fail(
            f"saturation throughput {burst['throughput_rps']:.0f} rps fell "
            f"below {floor:.0f} rps "
            f"(baseline {baseline['saturation_throughput_rps']:.0f} / "
            f"{THROUGHPUT_FLOOR_FACTOR:g})"
        )
    ceiling = (
        baseline["steady_p99_ms"] * LATENCY_CEILING_FACTOR + LATENCY_GRACE_MS
    )
    measured_p99 = steady["latency_ms"]["p99"]
    if measured_p99 > ceiling:
        fail(
            f"steady p99 {measured_p99:.2f} ms exceeded {ceiling:.2f} ms "
            f"(baseline {baseline['steady_p99_ms']:.2f} ms * "
            f"{LATENCY_CEILING_FACTOR:g} + {LATENCY_GRACE_MS:g})"
        )
    print(
        f"check_serve: saturation {burst['throughput_rps']:.0f} rps "
        f"(floor {floor:.0f}), steady p99 {measured_p99:.2f} ms "
        f"(ceiling {ceiling:.2f})"
    )
    print("check_serve: OK")


if __name__ == "__main__":
    main()
