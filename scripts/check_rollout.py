#!/usr/bin/env python
"""CI rollout gate: guarded model updates under live load.

Drives the guarded-rollout machinery end to end and holds it to four
invariants:

1. **regressions fail closed** -- a regressed candidate (same map, label
   table scrambled) begun against a model under 4-thread load is shadow-
   evaluated, auto-demoted, and its canary version drained and evicted,
   with zero dropped requests: every future submitted before, during and
   after the demotion resolves with a real classification from the prior
   (still-active) version,
2. **healthy candidates promote** -- a behaviourally equivalent candidate
   clears the same policy, rides the canary split, and is promoted through
   the zero-drop swap, banking the replaced snapshot in the rollback ring;
   a manual rollback then restores the original weights version,
3. **deltas are bit-exact** -- an on-line learner's published full-then-
   delta chain materialises, through a save/load round trip, to exactly
   the weights of a full snapshot taken at the same weights version, and
4. **corrupt archives never reach the registry** -- truncated and
   bit-flipped archives raise ``SnapshotCorruptionError`` at load time,
   and the injected ``snapshot_corrupt`` site replays deterministically
   under the gate's seed.

Run directly or through scripts/ci_check.sh:

    PYTHONPATH=src python scripts/check_rollout.py --seed 11
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import tempfile
import threading
import time
import zipfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import api  # noqa: E402
from repro.core import DeltaSnapshot, ModelSnapshot  # noqa: E402
from repro.core.snapshot import SnapshotLabelling  # noqa: E402
from repro.datasets import make_signature_clusters  # noqa: E402
from repro.errors import (  # noqa: E402
    ServiceError,
    SnapshotCorruptionError,
    UnknownModelError,
)
from repro.pipeline import OnlineLearner, OnlineLearnerConfig  # noqa: E402
from repro.serve import (  # noqa: E402
    SNAPSHOT_CORRUPT,
    FaultInjector,
    FaultSpec,
    RolloutConfig,
    RolloutPolicy,
    ServiceConfig,
)

N_BITS = 128
N_PUMPS = 4  # concurrent load threads
RESULT_TIMEOUT_S = 15.0
VERDICT_TIMEOUT_S = 60.0


def _dataset(seed: int):
    return make_signature_clusters(
        n_identities=5,
        samples_per_identity=40,
        n_bits=N_BITS,
        core_bits=20,
        shared_bits=15,
        seed=seed,
    )


def _scrambled(snapshot: ModelSnapshot) -> ModelSnapshot:
    """Same map, label table rotated: a maximal behavioural regression."""
    labelling = snapshot.labelling
    n_labels = max(int(labelling.labels.max()) + 1, 1)
    rotated = np.where(
        labelling.node_labels >= 0,
        (labelling.node_labels + 1) % n_labels,
        labelling.node_labels,
    )
    return dataclasses.replace(
        snapshot,
        labelling=SnapshotLabelling(
            node_labels=rotated,
            win_frequencies=labelling.win_frequencies,
            labels=labelling.labels,
        ),
    )


class LoadPumps:
    """N threads submitting continuously; every future must resolve."""

    def __init__(self, service, X, model="m"):
        self.service = service
        self.X = X
        self.model = model
        self.resolved = 0
        self.failures: list[BaseException] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(target=self._pump, args=(i,), daemon=True)
            for i in range(N_PUMPS)
        ]

    def _pump(self, worker: int) -> None:
        rng = np.random.default_rng([worker, 99])
        while not self._stop.is_set():
            rows = self.X[rng.integers(0, len(self.X), size=8)]
            try:
                futures = [
                    self.service.submit(
                        row, model=self.model, stream_id=f"cam-{worker}"
                    )
                    for row in rows
                ]
                for future in futures:
                    future.result(RESULT_TIMEOUT_S)
                with self._lock:
                    self.resolved += len(futures)
            except ServiceError as error:
                with self._lock:
                    self.failures.append(error)
                return

    def __enter__(self):
        for thread in self._threads:
            thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=RESULT_TIMEOUT_S)


def _await_verdict(manager, model: str) -> None:
    deadline = time.monotonic() + VERDICT_TIMEOUT_S
    while time.monotonic() < deadline:
        if manager.status(model) is None:
            return
        time.sleep(0.01)
    raise AssertionError(
        f"rollout of {model!r} reached no verdict within {VERDICT_TIMEOUT_S}s: "
        f"{manager.status(model)}"
    )


def check_regression_demoted(seed: int) -> None:
    """Invariant 1: regressed candidate auto-demoted under load, zero drops."""
    X, y = _dataset(seed)
    v1 = api.train(X, y, n_neurons=16, epochs=8, seed=1)
    service = api.serve(
        {"m": v1},
        config=ServiceConfig(
            batch_size=8, max_delay_ms=2.0, cache_capacity=0, n_shards=2
        ),
    )
    try:
        active = ModelSnapshot.of(v1)
        manager = service.enable_rollouts(
            RolloutConfig(
                policy=RolloutPolicy(
                    min_samples=60, promote_agreement=0.99, demote_agreement=0.9
                ),
                canary_fraction=0.25,
                split_seed=seed,
            )
        )
        manager.begin("m", _scrambled(active))
        with LoadPumps(service, X) as pumps:
            _await_verdict(manager, "m")
        if pumps.failures:
            raise AssertionError(
                f"{len(pumps.failures)} request(s) failed during demotion: "
                f"{pumps.failures[:3]}"
            )
        demotions = service.obs.registry.get("serve_rollout_demotions_total")
        if demotions is None or demotions.value != 1:
            raise AssertionError("regressed candidate was not demoted")
        if service.registry.route("m") is not None:
            raise AssertionError("canary route survived the demotion")
        try:
            service.registry.group("m@v1")
            raise AssertionError("canary version survived the demotion")
        except UnknownModelError:
            pass
        survivor = service.registry.classifier("m")
        if survivor.som.weights_version != active.weights_version:
            raise AssertionError("demotion did not leave the prior version active")
        print(
            f"regression gate ok: demoted after "
            f"{pumps.resolved} zero-drop requests"
        )
    finally:
        service.stop()


def check_good_candidate_promotes(seed: int) -> None:
    """Invariant 2: equivalent candidate promotes; rollback restores."""
    X, y = _dataset(seed)
    v1 = api.train(X, y, n_neurons=16, epochs=8, seed=1)
    service = api.serve(
        {"m": v1},
        config=ServiceConfig(
            batch_size=8, max_delay_ms=2.0, cache_capacity=0, n_shards=2
        ),
    )
    try:
        before = ModelSnapshot.of(service.registry.classifier("m"))
        manager = service.enable_rollouts(
            RolloutConfig(
                policy=RolloutPolicy(min_samples=60, promote_agreement=0.95),
                canary_fraction=0.25,
                split_seed=seed,
            )
        )
        twin = dataclasses.replace(before, metadata={"candidate": "twin"})
        manager.begin("m", twin)
        with LoadPumps(service, X) as pumps:
            _await_verdict(manager, "m")
        if pumps.failures:
            raise AssertionError(
                f"{len(pumps.failures)} request(s) failed during promotion: "
                f"{pumps.failures[:3]}"
            )
        promotions = service.obs.registry.get("serve_rollout_promotions_total")
        if promotions is None or promotions.value != 1:
            raise AssertionError("healthy candidate was not promoted")
        ring = manager.ring("m")
        if len(ring) != 1 or ring[-1].weights_version != before.weights_version:
            raise AssertionError("promotion did not bank the replaced snapshot")
        if not manager.rollback("m"):
            raise AssertionError("rollback from the ring failed")
        restored = service.registry.classifier("m")
        if restored.som.weights_version != before.weights_version:
            raise AssertionError("rollback did not restore the prior version")
        if len(service.classify("m", X[:8])) != 8:
            raise AssertionError("service unhealthy after rollback")
        print(
            f"promotion gate ok: promoted + rolled back across "
            f"{pumps.resolved} zero-drop requests"
        )
    finally:
        service.stop()


def check_delta_chain_bit_exact(seed: int, workdir: Path) -> None:
    """Invariant 3: published full+delta chain == full snapshot, bit for bit."""
    X, y = _dataset(seed)
    classifier = api.train(X, y, n_neurons=16, epochs=8, seed=1)
    published = []
    learner = OnlineLearner(
        classifier,
        X,
        y,
        config=OnlineLearnerConfig(
            min_signatures=8, online_epochs=2, publish_every=6
        ),
        publisher=published.append,
    )
    rng = np.random.default_rng(seed)
    base_row = 1 - X[0]
    novel = np.where(
        rng.random((24, N_BITS)) < 0.05, 1 - base_row, base_row
    ).astype(np.uint8)
    for row in novel:
        learner.observe(900, row)
    if len(published) < 2 or not isinstance(published[0], ModelSnapshot):
        raise AssertionError(
            f"expected a full snapshot then deltas, got {len(published)} items"
        )
    deltas = published[1:]
    if not all(isinstance(d, DeltaSnapshot) for d in deltas):
        raise AssertionError("later publications must be deltas")
    if not any(d.n_rows > 0 for d in deltas):
        raise AssertionError("no delta carried any touched rows")
    # Round-trip the whole chain through archives, then materialise.
    chain = api.load(api.save(published[0], workdir / "base.npz"))
    for index, delta in enumerate(deltas):
        chain = api.load_delta(api.save_delta(delta, workdir / f"d{index}.npz")).apply(
            chain
        )
    full = learner.published_base  # full snapshot at the same weights version
    if chain.weights_version != full.weights_version:
        raise AssertionError("delta chain ended at the wrong weights version")
    if not np.array_equal(chain.weights, full.weights):
        raise AssertionError("delta chain is not bit-exact against the full snapshot")
    if not np.array_equal(
        chain.labelling.node_labels, full.labelling.node_labels
    ):
        raise AssertionError("delta chain lost labelling updates")
    touched = sum(d.n_rows for d in deltas)
    print(
        f"delta gate ok: {len(deltas)} delta(s), {touched} row(s) carried, "
        "bit-exact after archive round-trip"
    )


def check_corruption_fails_closed(seed: int, workdir: Path) -> None:
    """Invariant 4: corrupt archives raise before any model is built."""
    X, y = _dataset(seed)
    classifier = api.train(X, y, n_neurons=16, epochs=4, seed=1)
    path = api.save(classifier, workdir / "good.npz")

    truncated = workdir / "truncated.npz"
    truncated.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    try:
        api.load(truncated)
        raise AssertionError("truncated archive loaded without error")
    except SnapshotCorruptionError:
        pass

    flipped = workdir / "flipped.npz"
    raw = bytearray(path.read_bytes())
    with zipfile.ZipFile(path) as archive:
        info = next(i for i in archive.infolist() if "weights" in i.filename)
    name_len = int.from_bytes(raw[info.header_offset + 26 : info.header_offset + 28], "little")
    extra_len = int.from_bytes(raw[info.header_offset + 28 : info.header_offset + 30], "little")
    raw[info.header_offset + 30 + name_len + extra_len + 8] ^= 0x40
    flipped.write_bytes(bytes(raw))
    try:
        api.load(flipped)
        raise AssertionError("bit-flipped archive loaded without error")
    except SnapshotCorruptionError:
        pass

    # The injected site fires deterministically under the gate's seed.
    from repro.core.serialization import load_snapshot

    injector = FaultInjector(
        seed=seed, specs=[FaultSpec(site=SNAPSHOT_CORRUPT, probability=1.0)]
    )
    try:
        load_snapshot(path, fault_injector=injector)
        raise AssertionError("injected corruption site did not fire")
    except SnapshotCorruptionError:
        pass
    if injector.fired(SNAPSHOT_CORRUPT) != 1:
        raise AssertionError("corruption site fire count did not replay")
    # The archive itself is intact: a clean load still succeeds.
    if not api.load(path).is_fitted:
        raise AssertionError("pristine archive failed to load after the chaos")
    print("corruption gate ok: truncation, bit flip and injection all fail closed")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=11, help="gate seed")
    args = parser.parse_args()

    check_regression_demoted(args.seed)
    check_good_candidate_promotes(args.seed)
    with tempfile.TemporaryDirectory(prefix="check_rollout_") as tmp:
        workdir = Path(tmp)
        check_delta_chain_bit_exact(args.seed, workdir)
        check_corruption_fails_closed(args.seed, workdir)
    print("check_rollout: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
