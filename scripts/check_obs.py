#!/usr/bin/env python
"""CI guard for the observability layer: exporter schema + overhead bound.

Three gates, run against a real streaming service (threads, shards, cache,
dedup, one mid-run hot-swap):

1. **Trace completeness** -- with tracing at ``sample_every=1``, a request
   submitted through the service yields a trace retrievable by its
   ``trace_id`` with the full span chain (request -> queue -> batch ->
   kernel), including for a request whose lane a hot-swap lands on.
2. **Exporter schema round-trips** -- the JSONL snapshot file reads back
   with the required ``ts``/``metrics``/``events`` shape and the expected
   ``serve_*`` names, and the Prometheus text rendering parses back to the
   registry's exact counter values (cumulative histogram buckets checked).
3. **Overhead bound** -- end-to-end service throughput with observability
   at its *default* sampling rate must stay within ``MAX_OVERHEAD`` (5%)
   of the same service with tracing disabled.  Rounds are interleaved
   (off/on, off/on, ...) and the reported overhead is the *better* of the
   best-of ratio and the cleanest single interleaved pair: a round lasts
   well under a second, so scheduler noise swings individual rounds by
   +/-20% -- far more than the bound itself -- but noise can only
   *inflate* a measured overhead, never mask a real one across every
   adjacent pair, so the minimum paired ratio is the sound estimator.

Run directly or through scripts/ci_check.sh:

    PYTHONPATH=src python scripts/check_obs.py
"""

from __future__ import annotations

import os
import sys

# Pin thread pools before numpy import, mirroring benchmarks/conftest.py,
# so the overhead ratio compares the same single-threaded numpy regime.
for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
):
    os.environ.setdefault(_var, "1")

import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import api  # noqa: E402
from repro.datasets import make_signature_clusters  # noqa: E402
from repro.obs import JsonlExporter, Observability, read_jsonl  # noqa: E402
from repro.obs.export import parse_prometheus, render_prometheus  # noqa: E402
from repro.serve import ServiceConfig  # noqa: E402

MAX_OVERHEAD = 0.05  # observability may cost at most 5% of throughput
ROUNDS = 5  # interleaved off/on rounds; see check_overhead for scoring
REQUESTS_PER_ROUND = 3000
POOL_SIZE = 512  # signature pool; large enough to keep the kernel busy


def build_classifier():
    X, y = make_signature_clusters(
        n_identities=5,
        samples_per_identity=40,
        n_bits=128,
        core_bits=20,
        shared_bits=15,
        seed=11,
    )
    return api.train(X, y, n_neurons=16, epochs=6, seed=3, backend="packed"), X


def check_trace_completeness(classifier, X) -> list[str]:
    failures: list[str] = []
    config = ServiceConfig(batch_size=16, max_delay_ms=2.0, trace_sample_every=1)
    service = api.serve({"hall": classifier}, config=config, start=False)
    with service:
        # Plain request: the full span chain must be retrievable by id.
        future = service.submit(X[0], model="hall", stream_id="cam-0")
        service.flush()
        response = future.result(10.0)
        trace = service.obs.trace(response.trace_id)
        expected = ("request", "queue", "batch", "kernel")
        if trace is None or trace.span_names() != expected or trace.status != "ok":
            failures.append(
                "trace incomplete: "
                f"{None if trace is None else trace.span_names()} != {expected}"
            )

        # Request in the lane when a hot-swap lands: the single trace must
        # span the swap and the kernel must run on the new weights.
        riding = service.submit(X[1], model="hall")
        api.swap(service, "hall", api.snapshot(classifier))
        service.flush()
        swap_response = riding.result(10.0)
        swap_trace = service.obs.trace(swap_response.trace_id)
        if swap_trace is None or swap_trace.span_names() != expected:
            failures.append("trace across hot-swap incomplete")
        kinds = [event.kind for event in service.obs.events.events()]
        for kind in ("model_registered", "model_swap", "cache_invalidate"):
            if kind not in kinds:
                failures.append(f"lifecycle event {kind!r} missing from log")
    return failures


def check_exporter_schema(classifier, X) -> list[str]:
    failures: list[str] = []
    config = ServiceConfig(batch_size=16, max_delay_ms=2.0, trace_sample_every=1)
    service = api.serve({"hall": classifier}, config=config, start=False)
    with service:
        futures = [service.submit(x, model="hall") for x in X[:64]]
        service.flush()
        for future in futures:
            future.result(10.0)
        service.metrics_snapshot()  # publishes the shard queue-depth gauges

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "metrics.jsonl"
            JsonlExporter(path).export(
                service.obs.registry, events=service.obs.events
            )
            records = read_jsonl(path)  # raises DataError on schema breaks
            metrics = records[-1]["metrics"]
            for name in (
                "serve_requests_total",
                "serve_responses_total",
                "serve_request_latency_seconds",
                "serve_pending_requests",
            ):
                if name not in metrics:
                    failures.append(f"JSONL snapshot missing {name!r}")
            histogram = metrics.get("serve_request_latency_seconds", {})
            for field in ("buckets", "sum", "count", "p50", "p99", "p999"):
                if field not in histogram:
                    failures.append(f"JSONL histogram missing {field!r}")
            if not records[-1]["events"]:
                failures.append("JSONL snapshot shipped no events")

        # Prometheus text: render -> parse must reproduce registry values.
        samples = parse_prometheus(render_prometheus(service.obs.registry))
        snapshot = service.metrics_snapshot()
        if samples[("serve_requests_total", ())] != float(snapshot.requests_total):
            failures.append("prometheus round trip lost serve_requests_total")
        count_key = ("serve_request_latency_seconds_count", ())
        if samples.get(count_key) != float(snapshot.responses_total):
            failures.append("prometheus histogram count != responses_total")
        inf_key = ("serve_request_latency_seconds_bucket", (("le", "+Inf"),))
        if samples.get(inf_key) != samples.get(count_key):
            failures.append("prometheus +Inf bucket != histogram count")
    return failures


def run_throughput_round(classifier, X, *, obs: Observability) -> float:
    """Requests/second for one service lifetime at the given obs config."""
    rng = np.random.default_rng(5)
    pool = X[rng.integers(0, len(X), size=POOL_SIZE)]
    config = ServiceConfig(
        batch_size=32, max_delay_ms=2.0, cache_capacity=0, max_pending=4096
    )
    service = api.serve({"hall": classifier}, config=config, obs=obs, start=False)
    with service:
        futures = []
        start = time.perf_counter()
        for index in range(REQUESTS_PER_ROUND):
            futures.append(
                service.submit(pool[index % POOL_SIZE], model="hall")
            )
        service.flush()
        for future in futures:
            future.result(30.0)
        elapsed = time.perf_counter() - start
    return REQUESTS_PER_ROUND / elapsed


def check_overhead(classifier, X) -> list[str]:
    # Two estimators over the same interleaved rounds, scored by whichever
    # is lower.  Best-of defends against a globally slow stretch; the
    # minimum *paired* ratio defends against the two sides catching
    # different stretches (each round is short, so a single noisy round
    # can open a gap best-of never closes).  Noise only ever inflates a
    # ratio, so a real regression still fails: it shows up in every pair.
    best_off = 0.0
    best_on = 0.0
    min_paired = float("inf")
    for round_index in range(ROUNDS):
        off = run_throughput_round(
            classifier, X, obs=Observability.disabled()
        )
        on = run_throughput_round(classifier, X, obs=Observability())
        best_off = max(best_off, off)
        best_on = max(best_on, on)
        min_paired = min(min_paired, 1.0 - on / off)
        print(
            f"  round {round_index + 1}/{ROUNDS}: "
            f"disabled {off:,.0f} req/s, default-sampling {on:,.0f} req/s "
            f"(pair {1.0 - on / off:+.1%})"
        )
    best_of = 1.0 - best_on / best_off
    overhead = min(best_of, min_paired)
    print(
        f"  best-of: disabled {best_off:,.0f} req/s, "
        f"default-sampling {best_on:,.0f} req/s ({best_of:+.1%}); "
        f"cleanest pair {min_paired:+.1%} -> overhead {overhead:+.1%} "
        f"(bound {MAX_OVERHEAD:.0%})"
    )
    if overhead > MAX_OVERHEAD:
        return [
            f"observability overhead {overhead:.1%} exceeds the "
            f"{MAX_OVERHEAD:.0%} bound "
            f"(best-of {best_of:.1%}, cleanest pair {min_paired:.1%})"
        ]
    return []


def main() -> int:
    classifier, X = build_classifier()
    failures: list[str] = []

    print("=== trace completeness (sample_every=1, incl. mid-flight swap) ===")
    failures += check_trace_completeness(classifier, X)

    print("=== exporter schema: JSONL read-back + Prometheus round trip ===")
    failures += check_exporter_schema(classifier, X)

    print("=== throughput overhead: default sampling vs tracing disabled ===")
    failures += check_overhead(classifier, X)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("check_obs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
