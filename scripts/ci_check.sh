#!/usr/bin/env bash
# CI gate for the repro library.
#
# Runs the tier-1 suite exactly as ROADMAP.md specifies (tests/ and
# benchmarks/ are both collected from the repo root), then a fast smoke of
# the streaming-service demo so the serve layer is exercised end to end --
# threads, shards, cache and telemetry included -- on every change.
#
# Usage: scripts/ci_check.sh [extra pytest args...]

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "=== static analysis: lock-order / thread-safety / determinism / vocabulary ==="
# Project-native lints over src/repro (stdlib ast, sub-second): lock
# acquisition cycles, unguarded shared state, thread hygiene, unseeded
# randomness and wall-clock use in serve/obs, metric/event vocabulary
# two-way doc sync, error taxonomy, exact __all__, import cycles.  Fails
# on any finding not in src/repro/analysis/baseline.json.
python scripts/check_static.py

echo
echo "=== tier-1: pytest (tests/ + benchmarks/) ==="
python -m pytest -x -q "$@"

echo
echo "=== backend parity smoke + perf-regression guard ==="
# Bit-exact agreement of all distance backends with the naive oracle, then
# the packed uint64 kernel re-timed on the 256-neuron/1024-batch cell
# against the baseline committed in BENCH_distance.json (fail if >2x slower).
python scripts/check_backends.py

echo
echo "=== vision parity smoke + frame-rate regression guard ==="
# Bit-exact agreement of the vectorized CCL / morphology / blob / batched
# histogram paths with their retained scalar oracles, then the vectorized
# RecognitionSystem re-timed on the 320x240 benchmark scene against the
# baseline committed in BENCH_vision.json (fail if >2x slower).
python scripts/check_vision.py

echo
echo "=== lifecycle smoke: save -> load -> serve -> swap under load ==="
# The unified lifecycle API end to end: format-v2 round-trip (backend +
# weights-version preserved), serving from a snapshot, a hot-swap issued
# while concurrent submitters are mid-flight (zero dropped requests), and
# the in-flight dedup counter moving.
python scripts/check_lifecycle.py

echo
echo "=== observability: exporter schema + trace completeness + overhead ==="
# Full span chains retrievable by trace_id (including across a mid-flight
# hot-swap), JSONL and Prometheus exporters proven by read-back/parse
# round trips, and end-to-end throughput with default-sampling tracing
# held within 5% of tracing disabled.
python scripts/check_obs.py

echo
echo "=== resilience: chaos gate (deterministic fault injection, seed 7) ==="
# Every fault class (raising/hung kernels, dying workers, failing swaps,
# corrupt cache entries) with deadlines, retry, breakers and the shard
# supervisor armed: every future terminal, zero hung futures or leaked
# threads, throughput recovered to >= 90% of the pre-fault baseline, and
# a fault pattern that replays exactly under the same seed.
python scripts/check_resilience.py --seed 7

echo
echo "=== rollouts: guarded model updates under load (seed 11) ==="
# The guarded-rollout gate: a regressed candidate shadow-evaluated under
# 4-thread load is auto-demoted with zero dropped requests and the prior
# version left serving; a healthy candidate promotes through the canary
# split and rolls back from the ring; an on-line learner's full+delta
# publication chain materialises bit-exactly after an archive round trip;
# truncated/bit-flipped archives raise SnapshotCorruptionError and never
# reach the registry.
python scripts/check_rollout.py --seed 11

echo
echo "=== load harness: BENCH_serve.json guard (zero drops at saturation) ==="
# Replays the committed seeded workload (steady -> saturating burst ->
# soak with hot-swaps, a victim eviction and rollout promote/demote
# cycles mid-load) through repro.loadgen: every future terminal (the
# zero-drop contract held at saturation), exhaustive per-phase
# accounting, all lifecycle churn performed, and saturation throughput /
# steady p99 within bounds of the committed BENCH_serve.json baseline.
python scripts/check_serve.py

echo
echo "=== smoke: streaming service demo (4 cameras, 40 frames each) ==="
python examples/streaming_service.py --streams 4 --frames 40

echo
echo "ci_check: OK"
