"""Generate the EXPERIMENTS.md result tables.

Runs a medium-scale version of every experiment in the paper (the scale and
repetition counts are recorded in the output) and writes the results as JSON
and markdown fragments under ``results/``.

Usage::

    python scripts/generate_experiment_results.py [--scale 0.2] [--reps 4]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.datasets import make_surveillance_dataset
from repro.eval import format_markdown_table, run_figure3, run_neuron_sweep, run_table1, run_table2
from repro.eval.experiments import NeuronSweepConfig, Table1Config
from repro.hw import FpgaBsomConfig, FpgaBsomDesign, estimate_resources
from repro.hw.resources import PAPER_TABLE4
from repro.hw.throughput import paper_throughput_report

PAPER_TABLE1 = {
    10: (81.84, 84.41), 20: (83.06, 84.56), 30: (84.50, 84.85), 40: (84.05, 84.05),
    50: (83.98, 85.03), 60: (84.70, 85.91), 70: (85.03, 85.74), 80: (85.01, 84.58),
    90: (85.20, 84.40), 100: (85.15, 84.58), 200: (84.68, 86.44), 300: (86.71, 84.23),
    400: (87.33, 86.05), 500: (87.42, 86.89),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--reps", type=int, default=4)
    parser.add_argument(
        "--iterations", type=int, nargs="+",
        default=[10, 20, 30, 50, 70, 100, 200, 400],
    )
    parser.add_argument("--out", type=Path, default=Path("results"))
    args = parser.parse_args()
    args.out.mkdir(parents=True, exist_ok=True)

    started = time.time()
    print(f"[1/6] building dataset (scale={args.scale})", flush=True)
    dataset = make_surveillance_dataset(scale=args.scale, seed=2010)
    summary = dataset.summary()
    print("      ", summary, flush=True)

    print("[2/6] Table I", flush=True)
    table1 = run_table1(
        dataset,
        Table1Config(
            iterations=tuple(args.iterations),
            repetitions=args.reps,
            dataset_scale=args.scale,
        ),
    )
    rows1 = []
    for row in table1.rows:
        paper = PAPER_TABLE1.get(row.iterations, (None, None))
        rows1.append([
            row.iterations,
            f"{100 * row.csom_mean:.2f}%",
            f"{100 * row.bsom_mean:.2f}%",
            f"{paper[0]:.2f}%" if paper[0] else "-",
            f"{paper[1]:.2f}%" if paper[1] else "-",
        ])
        print(f"       iter={row.iterations:4d} cSOM={row.csom_mean:.4f} bSOM={row.bsom_mean:.4f}", flush=True)
    table1_md = format_markdown_table(
        ["Iterations", "cSOM (ours)", "bSOM (ours)", "cSOM (paper)", "bSOM (paper)"], rows1
    )

    print("[3/6] Table II", flush=True)
    table2 = run_table2(table1)
    rows2 = [
        [r.iterations, f"{r.csom_mean_rank:.2f}", f"{r.bsom_mean_rank:.2f}",
         f"{r.z:.2f}", f"{r.p_value:.4f}", r.symbol]
        for r in table2
    ]
    table2_md = format_markdown_table(
        ["Iterations", "cSOM mean rank", "bSOM mean rank", "z", "p", "verdict"], rows2
    )

    print("[4/6] neuron sweep", flush=True)
    sweep = run_neuron_sweep(
        dataset,
        NeuronSweepConfig(neuron_counts=tuple(range(10, 101, 10)), repetitions=2, epochs=30,
                          dataset_scale=args.scale),
    )
    sweep_rows = [
        [r.n_neurons, f"{100 * r.bsom_accuracy:.2f}%", f"{100 * r.csom_accuracy:.2f}%",
         f"{r.bsom_used_neurons:.1f}", f"{r.csom_used_neurons:.1f}"]
        for r in sweep
    ]
    sweep_md = format_markdown_table(
        ["Neurons", "bSOM accuracy", "cSOM accuracy", "bSOM used", "cSOM used"], sweep_rows
    )
    for r in sweep:
        print(f"       n={r.n_neurons:3d} bSOM={r.bsom_accuracy:.4f} cSOM={r.csom_accuracy:.4f}", flush=True)

    print("[5/6] figure 3 statistics", flush=True)
    figure3 = run_figure3(dataset, identities=[0, 1, 2])

    print("[6/6] hardware tables", flush=True)
    design = FpgaBsomDesign(FpgaBsomConfig(seed=0))
    resources = estimate_resources().utilisation()
    resource_rows = [
        [name, int(row["total"]), int(row["used"]), f"{row['percent']:.0f}%",
         PAPER_TABLE4[name]["used"], f"{PAPER_TABLE4[name]['percent']}%"]
        for name, row in resources.items()
    ]
    resources_md = format_markdown_table(
        ["Resource", "Total", "Used (model)", "Util (model)", "Used (paper)", "Util (paper)"],
        resource_rows,
    )
    throughput = paper_throughput_report()

    results = {
        "generated_at": time.strftime("%Y-%m-%d %H:%M:%S"),
        "elapsed_seconds": round(time.time() - started, 1),
        "dataset": {"scale": args.scale, **summary},
        "table1": {
            "config": {"iterations": list(args.iterations), "repetitions": args.reps,
                       "n_neurons": 40},
            "rows": [
                {"iterations": r.iterations, "csom_mean": r.csom_mean, "bsom_mean": r.bsom_mean,
                 "csom_std": r.csom_std, "bsom_std": r.bsom_std,
                 "csom_scores": list(r.csom_scores), "bsom_scores": list(r.bsom_scores)}
                for r in table1.rows
            ],
        },
        "table2": [
            {"iterations": r.iterations, "csom_mean_rank": r.csom_mean_rank,
             "bsom_mean_rank": r.bsom_mean_rank, "z": r.z, "p_value": r.p_value,
             "symbol": r.symbol}
            for r in table2
        ],
        "neuron_sweep": [
            {"n_neurons": r.n_neurons, "bsom_accuracy": r.bsom_accuracy,
             "csom_accuracy": r.csom_accuracy, "bsom_used": r.bsom_used_neurons,
             "csom_used": r.csom_used_neurons}
            for r in sweep
        ],
        "figure3": {
            "within_identity_distance": figure3.within_identity_distance,
            "between_identity_distance": figure3.between_identity_distance,
        },
        "table3": design.specification(),
        "table4": resources,
        "throughput": {
            "training_patterns_per_second": throughput.training_patterns_per_second,
            "recognitions_per_second": throughput.recognitions_per_second,
            "cycles_per_training_pattern": throughput.cycles_per_training_pattern,
            "seconds_to_train": throughput.seconds_to_train,
            "realtime_margin": throughput.realtime_margin,
        },
    }
    (args.out / "experiments.json").write_text(json.dumps(results, indent=2))
    (args.out / "table1.md").write_text(table1_md + "\n")
    (args.out / "table2.md").write_text(table2_md + "\n")
    (args.out / "neuron_sweep.md").write_text(sweep_md + "\n")
    (args.out / "table4.md").write_text(resources_md + "\n")
    print(f"done in {time.time() - started:.0f}s -> {args.out}/", flush=True)


if __name__ == "__main__":
    main()
