#!/usr/bin/env python
"""CI gate: distance-backend parity smoke + packed-kernel perf guard.

Run by ``scripts/ci_check.sh`` after the test suite:

1. *Parity smoke* -- randomized tri-state weights x binary inputs across a
   few shapes (including an all-``#`` neuron and a non-word-aligned bit
   width); every backend must agree bit-exactly with the naive oracle.
2. *Perf-regression guard* -- re-times the packed uint64 backend on the
   256-neuron / 1024-batch cell and fails if it is more than 2x slower
   than the baseline recorded in the committed ``BENCH_distance.json``.
   A plain test run never rewrites that file once it exists, so the
   baseline really is the committed one; regenerate it deliberately after
   intentional kernel changes with
   ``REPRO_WRITE_BENCH=1 pytest benchmarks/test_distance_backends.py``.

Exit code 0 on success, 1 on any failure.
"""

from __future__ import annotations

import os
import sys

# Pin thread pools before numpy import, mirroring benchmarks/conftest.py,
# so the guard measures the same single-threaded regime as the baseline.
for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
):
    os.environ.setdefault(_var, "1")

import json
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.backends import (  # noqa: E402
    GemmBackend,
    HybridBackend,
    NaiveBackend,
    PackedBackend,
)
from repro.core.tristate import DONT_CARE  # noqa: E402

BENCH_PATH = REPO_ROOT / "BENCH_distance.json"
SLOWDOWN_LIMIT = 2.0
GUARD_REPEATS = 5


def parity_smoke() -> None:
    rng = np.random.default_rng(1234)
    oracle = NaiveBackend()
    backends = [
        GemmBackend(),
        PackedBackend(),
        PackedBackend(use_native_popcount=False),
        HybridBackend(),
    ]
    for n_neurons, n_samples, n_bits in ((40, 64, 768), (17, 33, 100), (8, 200, 64)):
        weights = rng.integers(0, 3, size=(n_neurons, n_bits), dtype=np.int8)
        weights[0] = DONT_CARE  # the paper's all-# edge case
        inputs = rng.integers(0, 2, size=(n_samples, n_bits), dtype=np.int8)
        expected = oracle.pairwise(oracle.prepare(weights), inputs)
        assert not expected[:, 0].any(), "all-# neuron must be distance 0"
        for backend in backends:
            prepared = backend.prepare(weights)
            got = backend.pairwise(prepared, inputs)
            if not np.array_equal(got, expected):
                raise SystemExit(
                    f"parity FAILED: backend {backend.name!r} disagrees with the "
                    f"naive oracle on {n_neurons}x{n_bits}, batch {n_samples}"
                )
            got_one = backend.batch_one(prepared, inputs[0])
            if not np.array_equal(got_one, expected[0]):
                raise SystemExit(
                    f"parity FAILED: backend {backend.name!r} batch_one disagrees "
                    f"on {n_neurons}x{n_bits}"
                )
    print("backend parity smoke: OK")


def perf_guard() -> None:
    if not BENCH_PATH.exists():
        raise SystemExit(
            f"perf guard FAILED: {BENCH_PATH} missing; run REPRO_WRITE_BENCH=1 "
            "pytest benchmarks/test_distance_backends.py to regenerate it"
        )
    report = json.loads(BENCH_PATH.read_text())
    baseline = report["baseline"]
    n_neurons, batch = int(baseline["n_neurons"]), int(baseline["batch"])
    baseline_ms = float(baseline["packed_ms"])
    n_bits = int(report["meta"]["n_bits"])

    rng = np.random.default_rng(20100607)
    weights = rng.integers(0, 3, size=(n_neurons, n_bits), dtype=np.int8)
    inputs = rng.integers(0, 2, size=(batch, n_bits), dtype=np.int8)
    backend = PackedBackend()
    prepared = backend.prepare(weights)
    backend.pairwise(prepared, inputs)  # warm-up
    best = float("inf")
    for _ in range(GUARD_REPEATS):
        start = time.perf_counter()
        backend.pairwise(prepared, inputs)
        best = min(best, time.perf_counter() - start)
    current_ms = best * 1e3
    slowdown = current_ms / baseline_ms
    print(
        f"packed backend {n_neurons}x{batch} cell: {current_ms:.3f} ms "
        f"(baseline {baseline_ms:.3f} ms, ratio {slowdown:.2f}x, "
        f"limit {SLOWDOWN_LIMIT}x)"
    )
    if slowdown > SLOWDOWN_LIMIT:
        raise SystemExit(
            f"perf guard FAILED: packed backend is {slowdown:.2f}x slower than "
            f"the recorded baseline (limit {SLOWDOWN_LIMIT}x)"
        )
    print("backend perf guard: OK")


if __name__ == "__main__":
    parity_smoke()
    perf_guard()
