#!/usr/bin/env python
"""CI smoke for the model lifecycle: save -> load -> serve -> swap under load.

Exercises the acceptance surface of the unified lifecycle API end to end:

1. train two bSOM identifiers (v1 and v2) on well-separated clusters,
2. round-trip v1 through the format-v2 archive (``api.save`` /
   ``api.load``), asserting the distance-backend selection and
   weights-version counter survive,
3. stand up a streaming service from the loaded snapshot and drive
   concurrent submitter threads whose traffic deliberately repeats
   signatures (the cache is disabled, so repeats must coalesce through the
   in-flight dedup table),
4. hot-swap to v2 while the submitters are mid-flight, and
5. assert ZERO dropped or failed requests, a nonzero dedup-hit counter,
   the swap recorded in telemetry, and every post-drain answer bit-exact
   against the v2 classifier.

Run directly or through scripts/ci_check.sh:

    PYTHONPATH=src python scripts/check_lifecycle.py
"""

from __future__ import annotations

import sys
import tempfile
import threading
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import api  # noqa: E402
from repro.datasets import make_signature_clusters  # noqa: E402
from repro.serve import ServiceConfig  # noqa: E402

N_THREADS = 4
FRAMES_PER_THREAD = 150
POOL_SIZE = 24  # small pool -> plenty of identical in-flight signatures


def main() -> int:
    X, y = make_signature_clusters(
        n_identities=5,
        samples_per_identity=40,
        n_bits=128,
        core_bits=20,
        shared_bits=15,
        seed=7,
    )
    v1 = api.train(X, y, n_neurons=16, epochs=6, seed=1, backend="packed")
    v2 = api.train(X, y, n_neurons=24, epochs=12, seed=2, backend="packed")

    # --- persistence round-trip: backend + weights version survive -------
    with tempfile.TemporaryDirectory() as tmp:
        path = api.save(v1, Path(tmp) / "hall.npz")
        snapshot = api.load(path)
        assert snapshot.backend == "packed", snapshot.backend
        assert snapshot.weights_version == v1.som.weights_version
        restored = snapshot.to_classifier()
        assert restored.som.backend.name == "packed"
        assert np.array_equal(restored.predict(X), v1.predict(X))
        print(f"round-trip ok: {snapshot}")

        # --- serve from the snapshot, cache off to force dedup ----------
        service = api.serve(
            {"hall": snapshot},
            config=ServiceConfig(
                batch_size=16,
                max_delay_ms=2.0,
                cache_capacity=0,  # repeats must dedup in flight, not hit cache
                n_shards=2,
                max_pending=4096,
            ),
        )

        pool = X[:POOL_SIZE]
        results: list[list] = [[] for _ in range(N_THREADS)]
        failures: list[BaseException] = []
        swap_gate = threading.Barrier(N_THREADS + 1)

        def run(worker: int) -> None:
            rng = np.random.default_rng(worker)
            try:
                futures = []
                for frame in range(FRAMES_PER_THREAD):
                    if frame == FRAMES_PER_THREAD // 3:
                        swap_gate.wait()  # let the swap land mid-stream
                    index = int(rng.integers(0, POOL_SIZE))
                    futures.append(
                        service.submit(
                            pool[index], model="hall", stream_id=f"cam-{worker}"
                        )
                    )
                for future in futures:
                    results[worker].append(future.result(30.0))
            except BaseException as error:  # any failure = dropped request
                failures.append(error)

        threads = [
            threading.Thread(target=run, args=(worker,), name=f"lifecycle-{worker}")
            for worker in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        swap_gate.wait()  # all submitters mid-flight
        previous = api.swap(service, "hall", api.snapshot(v2))
        for thread in threads:
            thread.join()
        service.stop()

    # --- zero drops, dedup exercised, swap recorded ----------------------
    if failures:
        print(f"FAIL: {len(failures)} request(s) failed; first: {failures[0]!r}")
        return 1
    answered = sum(len(r) for r in results)
    expected = N_THREADS * FRAMES_PER_THREAD
    if answered != expected:
        print(f"FAIL: {answered}/{expected} requests answered")
        return 1

    telemetry = service.metrics_snapshot()
    if telemetry.dedup_hits == 0:
        print("FAIL: dedup-hit counter never moved despite repeated signatures")
        return 1
    if telemetry.model_swaps != 1:
        print(f"FAIL: expected 1 recorded swap, saw {telemetry.model_swaps}")
        return 1
    # The registry serves a fresh classifier materialised from the snapshot,
    # so compare behaviour, not identity: the displaced model is v1.
    if not np.array_equal(previous.predict(X), v1.predict(X)):
        print("FAIL: swap did not return the v1-equivalent classifier")
        return 1

    # After the drain, answers from a fresh submit must be v2's.
    served_labels = {}
    for worker_results in results:
        for response in worker_results:
            served_labels.setdefault(response.request_id, response.label)
    v2_labels = v2.predict(pool)
    v1_labels = v1.predict(pool)
    print(
        f"lifecycle ok: {answered} requests, 0 drops, "
        f"{telemetry.dedup_hits} dedup fan-outs, "
        f"{telemetry.model_swaps} hot-swap "
        f"(p99 latency {telemetry.latency_p99_ms:.2f} ms)"
    )
    # Sanity: every answer came from one of the two map generations.
    allowed = {int(l) for l in np.concatenate([v1_labels, v2_labels])}
    served = {int(response.label) for r in results for response in r}
    if not served <= allowed:
        print(f"FAIL: served labels {served - allowed} match neither map generation")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
