#!/usr/bin/env python
"""CI gate: vision front-end parity smoke + frame-rate regression guard.

Run by ``scripts/ci_check.sh`` after the test suite:

1. *Parity smoke* -- randomized masks and frames across both
   connectivities; the vectorized CCL, separable morphology, single-pass
   blob extraction and batched histogram must agree bit-exactly with their
   retained scalar oracles.
2. *Frame-rate regression guard* -- re-times the vectorized
   ``RecognitionSystem`` on the benchmark's 320x240 synthetic scene and
   fails if it is more than 2x slower than the baseline recorded in the
   committed ``BENCH_vision.json``.  A plain test run never rewrites that
   file once it exists; regenerate it deliberately after intentional
   front-end changes with
   ``REPRO_WRITE_BENCH=1 pytest benchmarks/test_vision_throughput.py``.

Exit code 0 on success, 1 on any failure.
"""

from __future__ import annotations

import os
import sys

# Pin thread pools before numpy import, mirroring benchmarks/conftest.py,
# so the guard measures the same single-threaded regime as the baseline.
for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
):
    os.environ.setdefault(_var, "1")

import json
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.signatures import rgb_histogram, rgb_histogram_batch  # noqa: E402
from repro.vision import (  # noqa: E402
    binary_close,
    binary_close_oracle,
    binary_dilate,
    binary_dilate_oracle,
    binary_erode,
    binary_erode_oracle,
    binary_open,
    binary_open_oracle,
    extract_blobs,
    extract_blobs_oracle,
    label_components,
)

BENCH_PATH = REPO_ROOT / "BENCH_vision.json"
SLOWDOWN_LIMIT = 2.0
GUARD_REPEATS = 3


def parity_smoke() -> None:
    rng = np.random.default_rng(20100608)
    morphology_pairs = (
        (binary_erode, binary_erode_oracle),
        (binary_dilate, binary_dilate_oracle),
        (binary_open, binary_open_oracle),
        (binary_close, binary_close_oracle),
    )
    for trial in range(40):
        height = int(rng.integers(1, 48))
        width = int(rng.integers(1, 48))
        mask = rng.random((height, width)) < rng.random()
        for connectivity in (4, 8):
            fast, n_fast = label_components(mask, connectivity)
            oracle, n_oracle = label_components(mask, connectivity, vectorized=False)
            if n_fast != n_oracle or not np.array_equal(fast, oracle):
                raise SystemExit(
                    f"parity FAILED: vectorized CCL disagrees with the two-pass "
                    f"oracle on a {height}x{width} mask, connectivity {connectivity}"
                )
        for radius in (0, 1, 2):
            for fast_fn, oracle_fn in morphology_pairs:
                if not np.array_equal(fast_fn(mask, radius), oracle_fn(mask, radius)):
                    raise SystemExit(
                        f"parity FAILED: {fast_fn.__name__} disagrees with its "
                        f"full-kernel oracle at radius {radius} on {height}x{width}"
                    )
        labels, count = label_components(mask)
        fast_blobs = extract_blobs(labels, count)
        oracle_blobs = extract_blobs_oracle(labels, count)
        if len(fast_blobs) != len(oracle_blobs):
            raise SystemExit("parity FAILED: blob counts differ")
        for a, b in zip(fast_blobs, oracle_blobs):
            if not (
                a.label == b.label
                and a.area == b.area
                and a.bounding_box == b.bounding_box
                and a.centroid == b.centroid
                and np.array_equal(a.mask, b.mask)
            ):
                raise SystemExit(
                    f"parity FAILED: blob {a.label} fields differ from the oracle"
                )
        if trial < 10:
            image = rng.integers(0, 256, size=(height, width, 3), dtype=np.uint8)
            regions = [(b.bounding_box, b.crop_mask()) for b in fast_blobs]
            batch = rgb_histogram_batch(image, regions)
            for i, blob in enumerate(fast_blobs):
                if not np.array_equal(batch[i], rgb_histogram(image, blob.mask)):
                    raise SystemExit(
                        "parity FAILED: batched histogram differs from per-blob "
                        "rgb_histogram"
                    )
    print("vision parity smoke: OK")


def frame_rate_guard() -> None:
    if not BENCH_PATH.exists():
        raise SystemExit(
            f"frame-rate guard FAILED: {BENCH_PATH} missing; run "
            "REPRO_WRITE_BENCH=1 pytest benchmarks/test_vision_throughput.py "
            "to regenerate it"
        )
    report = json.loads(BENCH_PATH.read_text())
    baseline_fps = float(report["baseline"]["fps_vectorized"])
    n_frames = int(report["baseline"]["frames"])

    import test_vision_throughput as bench

    classifier = bench.train_bench_classifier()
    frames = bench.live_frames(n_frames)
    fps, _ = bench.time_pipeline(
        classifier, frames, vectorized=True, repeats=GUARD_REPEATS
    )
    slowdown = baseline_fps / fps
    print(
        f"vectorized pipeline {bench.SCENE_WIDTH}x{bench.SCENE_HEIGHT}: "
        f"{fps:.1f} fps (baseline {baseline_fps:.1f} fps, ratio "
        f"{slowdown:.2f}x, limit {SLOWDOWN_LIMIT}x)"
    )
    if slowdown > SLOWDOWN_LIMIT:
        raise SystemExit(
            f"frame-rate guard FAILED: vectorized pipeline is {slowdown:.2f}x "
            f"slower than the recorded baseline (limit {SLOWDOWN_LIMIT}x)"
        )
    print("vision frame-rate guard: OK")


if __name__ == "__main__":
    parity_smoke()
    frame_rate_guard()
