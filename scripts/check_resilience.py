#!/usr/bin/env python
"""CI chaos gate: the serve stack under deterministic fault injection.

Drives the streaming service through every fault class the resilience
layer defends against -- raising kernels, hung kernels, dying shard
workers, failing swaps, corrupt cache entries -- with all four defences
armed (deadlines, retry, circuit breakers, shard supervision), and holds
it to four invariants:

1. **terminal futures** -- under every fault class, every submitted
   request reaches a terminal state (a result or a typed service error)
   within its result deadline; one hung future fails the gate,
2. **zero leaked threads** -- after ``service.stop()`` no worker,
   dispatcher or supervisor thread survives,
3. **throughput recovery** -- after the chaos is disarmed, throughput
   recovers to within 10% of the pre-fault baseline (the restarts and
   breakers left no lasting damage), and
4. **deterministic injection** -- the fault pattern is a pure function of
   the seed, so any failure of this gate replays locally with the same
   ``--seed``.

Run directly or through scripts/ci_check.sh:

    PYTHONPATH=src python scripts/check_resilience.py --seed 7
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import api  # noqa: E402
from repro.datasets import make_signature_clusters  # noqa: E402
from repro.errors import (  # noqa: E402
    InjectedFaultError,
    ResultTimeoutError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.serve import (  # noqa: E402
    BreakerConfig,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    ServiceConfig,
    SupervisorConfig,
)
from repro.serve.resilience import (  # noqa: E402
    CACHE_CODEC,
    FAULT_SITES,
    KERNEL_HANG,
    KERNEL_RAISE,
    SHARD_DEATH,
    SWAP_FAILURE,
)

WAVE = 400  # requests per fault wave
THROUGHPUT_WAVE = 1000  # requests per throughput-measurement round
THROUGHPUT_ROUNDS = 6  # first round is warm-up; median of the rest counts
N_BITS = 128
RESULT_TIMEOUT_S = 15.0  # a future unresolved past this counts as hung
RECOVERY_FLOOR = 0.9  # recovered throughput must reach 90% of baseline


def wave_signatures(seed: int, phase: str, n: int = WAVE) -> np.ndarray:
    """Distinct random signatures per phase.

    Distinct rows keep the phases honest: with a small repeated pool every
    late request coalesces onto the first batches' primaries, so one
    injected fault would fan out to the whole wave and the recovery
    measurement would time the dedup table instead of the kernels.
    """
    rng = np.random.default_rng([seed, *phase.encode()])  # hash-seed independent
    return rng.integers(0, 2, size=(n, N_BITS)).astype(np.uint8)


def check_deterministic_injection(seed: int) -> None:
    """Invariant 4: same seed => identical fire pattern, per site."""

    def pattern(s: int) -> list[bool]:
        injector = FaultInjector(
            seed=s, specs=[FaultSpec(site, probability=0.3) for site in FAULT_SITES]
        )
        return [injector.fires(site) is not None for site in FAULT_SITES for _ in range(64)]

    if pattern(seed) != pattern(seed):
        raise AssertionError("same seed replayed a different fault pattern")
    if pattern(seed) == pattern(seed + 1):
        raise AssertionError("different seeds produced identical fault patterns")
    print(f"injection determinism ok (seed {seed})")


def drive_wave(service, signatures: np.ndarray, stream_id: str):
    """Submit one wave and wait every future to a terminal state.

    Returns ``(ok, failed, elapsed_s)``.  Raises on the one unacceptable
    outcome: a future that neither resolved nor failed within
    ``RESULT_TIMEOUT_S`` (a hung request).
    """
    t0 = time.perf_counter()
    futures = []
    for row in signatures:
        while True:
            try:
                futures.append(service.submit(row, model="m", stream_id=stream_id))
                break
            except ServiceOverloadedError:
                time.sleep(0.002)  # saturated or circuit open: back off, retry
            except ServiceError as error:
                # Any other submit-time refusal is terminal for this request.
                futures.append(error)
                break
    ok = failed = 0
    for future in futures:
        if isinstance(future, ServiceError):
            failed += 1
            continue
        try:
            future.result(RESULT_TIMEOUT_S)
            ok += 1
        except ResultTimeoutError:
            raise AssertionError(
                f"a {stream_id!r} request hung past {RESULT_TIMEOUT_S}s"
            )
        except ServiceError:
            failed += 1
    return ok, failed, time.perf_counter() - t0


def measure_throughput(service, seed: int, stream_id: str) -> float:
    """Median throughput over several rounds, first round discarded.

    Single-round timings on a shared CI machine swing by tens of percent
    (scheduler warm-up, neighbour interference); a warm-up-discarded
    median keeps the 10% recovery floor meaningful rather than flaky.
    """
    rates = []
    for index in range(THROUGHPUT_ROUNDS):
        wave = wave_signatures(seed, f"{stream_id}-{index}", THROUGHPUT_WAVE)
        ok, failed, elapsed = drive_wave(service, wave, f"{stream_id}-{index}")
        if failed:
            raise AssertionError(
                f"{failed} request(s) failed during the fault-free "
                f"{stream_id!r} measurement"
            )
        rates.append(ok / elapsed)
    steady = sorted(rates[1:])
    return steady[len(steady) // 2]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7, help="fault-injection seed")
    args = parser.parse_args()

    check_deterministic_injection(args.seed)

    X, y = make_signature_clusters(
        n_identities=5,
        samples_per_identity=40,
        n_bits=128,
        core_bits=20,
        shared_bits=15,
        seed=7,
    )
    v1 = api.train(X, y, n_neurons=16, epochs=6, seed=1, backend="packed")
    # Same architecture as v1: the recovery phase compares throughput
    # against the baseline, so the swapped-in map must cost the same.
    v2 = api.train(X, y, n_neurons=16, epochs=10, seed=2, backend="packed")

    threads_before = {t.name for t in threading.enumerate()}
    injector = FaultInjector(seed=args.seed)  # armed per phase below
    service = api.serve(
        {"m": v1},
        config=ServiceConfig(
            batch_size=16,
            max_delay_ms=2.0,
            cache_capacity=0,  # throughput below measures kernels, not memoisation
            n_shards=2,
            max_pending=4096,
            default_deadline_s=10.0,
            retry=RetryPolicy(5, base_delay_s=0.005, max_delay_s=0.05, seed=args.seed),
            breaker=BreakerConfig(failure_threshold=3, reset_timeout_s=0.05),
            supervisor=SupervisorConfig(
                interval_s=0.02, hang_timeout_s=0.2, max_restarts=8
            ),
            fault_injector=injector,
        ),
    )

    try:
        # --- pre-fault baseline ------------------------------------------
        baseline = measure_throughput(service, args.seed, "baseline")
        print(f"baseline ok: {baseline:.0f} req/s")

        # --- fault class 1: raising kernels ------------------------------
        injector.arm(FaultSpec(KERNEL_RAISE, probability=0.3, max_fires=6))
        ok, failed, _ = drive_wave(
            service, wave_signatures(args.seed, "kernel-raise"), "kernel-raise"
        )
        injector.disarm(KERNEL_RAISE)
        if injector.fired(KERNEL_RAISE) == 0:
            raise AssertionError("kernel_raise never fired; the phase proved nothing")
        print(
            f"kernel_raise ok: {injector.fired(KERNEL_RAISE)} faults, "
            f"{ok} answered, {failed} failed terminally, 0 hung"
        )

        # --- fault class 2: hung kernels (wedged workers) ----------------
        injector.arm(FaultSpec(KERNEL_HANG, hang_s=0.6, max_fires=2))
        restarts_before = service.metrics.shard_restarts
        ok, failed, _ = drive_wave(
            service, wave_signatures(args.seed, "kernel-hang"), "kernel-hang"
        )
        injector.disarm(KERNEL_HANG)
        wedge_restarts = service.metrics.shard_restarts - restarts_before
        if injector.fired(KERNEL_HANG) == 0:
            raise AssertionError("kernel_hang never fired; the phase proved nothing")
        if wedge_restarts == 0:
            raise AssertionError("no supervisor restart despite wedged workers")
        print(
            f"kernel_hang ok: {injector.fired(KERNEL_HANG)} wedges, "
            f"{wedge_restarts} watchdog restart(s), {ok} answered, "
            f"{failed} failed terminally, 0 hung"
        )

        # --- fault class 3: dying shard workers --------------------------
        injector.arm(FaultSpec(SHARD_DEATH, max_fires=2))
        restarts_before = service.metrics.shard_restarts
        ok, failed, _ = drive_wave(
            service, wave_signatures(args.seed, "shard-death"), "shard-death"
        )
        injector.disarm(SHARD_DEATH)
        death_restarts = service.metrics.shard_restarts - restarts_before
        if injector.fired(SHARD_DEATH) != 2:
            raise AssertionError(
                f"expected 2 worker deaths, injected {injector.fired(SHARD_DEATH)}"
            )
        if death_restarts < 2:
            raise AssertionError(
                f"2 workers died but only {death_restarts} restart(s) happened"
            )
        print(
            f"shard_death ok: 2 deaths, {death_restarts} watchdog restart(s), "
            f"{ok} answered, {failed} failed terminally, 0 hung"
        )

        # --- fault class 4: failing hot-swap -----------------------------
        injector.arm(FaultSpec(SWAP_FAILURE, max_fires=1))
        try:
            api.swap(service, "m", api.snapshot(v2))
        except InjectedFaultError:
            pass
        else:
            raise AssertionError("armed swap_failure did not fire")
        # The old model must keep serving, and the retried swap must land.
        ok, failed, _ = drive_wave(
            service,
            wave_signatures(args.seed, "post-failed-swap", WAVE // 4),
            "post-failed-swap",
        )
        if failed:
            raise AssertionError(f"{failed} request(s) failed after the aborted swap")
        api.swap(service, "m", api.snapshot(v2))
        injector.disarm(SWAP_FAILURE)
        print("swap_failure ok: aborted cleanly, old model kept serving, retry landed")

        # --- fault class 5: corrupt cache entries ------------------------
        injector.arm(FaultSpec(CACHE_CODEC, probability=0.5, max_fires=20))
        cache_errors_before = service.metrics.cache_errors
        ok, failed, _ = drive_wave(
            service,
            wave_signatures(args.seed, "cache-codec", WAVE // 4),
            "cache-codec",
        )
        injector.disarm(CACHE_CODEC)
        cache_errors = service.metrics.cache_errors - cache_errors_before
        if failed:
            raise AssertionError(
                f"{failed} request(s) failed on cache faults; they must degrade to misses"
            )
        if cache_errors == 0:
            raise AssertionError("cache_codec never fired; the phase proved nothing")
        print(f"cache_codec ok: {cache_errors} faults degraded to misses, 0 failures")

        # --- recovery: all chaos off, throughput within 10% of baseline --
        injector.disarm()
        recovered = measure_throughput(service, args.seed, "recovery")
        if recovered < RECOVERY_FLOOR * baseline:
            # One settle-and-retry: supervisor restarts finished moments
            # ago and a neighbour may be hogging the cores; a genuinely
            # damaged service (dead shard, stuck breaker) stays slow.
            time.sleep(0.5)
            recovered = max(
                recovered, measure_throughput(service, args.seed, "recovery-settle")
            )
        if recovered < RECOVERY_FLOOR * baseline:
            raise AssertionError(
                f"throughput did not recover: {recovered:.0f} req/s vs "
                f"{baseline:.0f} req/s baseline "
                f"({recovered / baseline:.0%} < {RECOVERY_FLOOR:.0%})"
            )
        print(
            f"recovery ok: {recovered:.0f} req/s "
            f"({recovered / baseline:.0%} of baseline)"
        )
    finally:
        service.stop()

    # --- zero leaked threads ---------------------------------------------
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = {
            t.name
            for t in threading.enumerate()
            if t.name not in threads_before and t.is_alive()
        }
        if not leaked:
            break
        time.sleep(0.05)
    if leaked:
        print(f"FAIL: thread(s) leaked after stop: {sorted(leaked)}")
        return 1
    snapshot = service.metrics_snapshot()
    if snapshot.shard_leaks:
        print(f"FAIL: registry reported {snapshot.shard_leaks} leaked shard worker(s)")
        return 1

    print(
        f"resilience ok (seed {args.seed}): "
        f"{snapshot.shard_restarts} restart(s), "
        f"{snapshot.retries} retried submit(s), "
        f"{snapshot.deadline_exceeded} deadline shed(s), "
        f"{snapshot.cache_errors} cache fault(s), 0 hung futures, 0 leaked threads"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
