"""Per-stage timing telemetry for the recognition pipeline.

The serve layer keeps itself honest with :mod:`repro.serve.metrics`; this
module does the same for the CPU-side vision front-end.  Every
:meth:`RecognitionSystem.process_frame` call records wall-clock seconds per
stage (background differencing, morphology, connected-components labelling,
blob extraction, tracking, signature extraction, classification) plus the
frame total, so operators can see exactly where a camera's frame budget
goes and the throughput benchmark can attribute its speedups
(``BENCH_vision.json`` commits a per-stage breakdown).

Like :class:`repro.serve.metrics.ServiceMetrics`, this is a facade over a
:class:`repro.obs.MetricRegistry`: stage timings are registry counters
labelled by stage, in *seconds* (milliseconds appear only in the rendered
:class:`PipelineMetricsSnapshot`), so the JSONL and Prometheus exporters
in :mod:`repro.obs.export` scrape the vision front-end and the serving
layer through one interface.  Registry names:

==============================================  =======  ==================
``pipeline_frames_total``                       counter  frames processed
``pipeline_frame_seconds_total``                counter  summed frame time
``pipeline_stage_seconds_total{stage=...}``     counter  summed stage time
``pipeline_stage_calls_total{stage=...}``       counter  stage invocations
``pipeline_stage_last_seconds{stage=...}``      gauge    most recent call
==============================================  =======  ==================
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.obs.metrics import Counter, Gauge, MetricRegistry

#: Stage names in pipeline order, as recorded by ``RecognitionSystem``.
PIPELINE_STAGES = (
    "background",
    "morphology",
    "label",
    "blobs",
    "track",
    "signature",
    "classify",
)


@dataclass(frozen=True)
class StageStats:
    """Accumulated timing for one pipeline stage.

    Attributes
    ----------
    calls:
        Number of recorded invocations.
    total_ms, mean_ms, last_ms:
        Total, mean-per-call and most recent wall-clock milliseconds
        (rendered from the seconds stored internally).
    """

    calls: int
    total_ms: float
    mean_ms: float
    last_ms: float


@dataclass(frozen=True)
class PipelineMetricsSnapshot:
    """Point-in-time view of the pipeline's per-stage timing.

    Attributes
    ----------
    frames_total:
        Frames processed since construction (or the last :meth:`reset`).
    total_ms:
        Summed end-to-end frame time.
    mean_frame_ms:
        Mean end-to-end milliseconds per frame.
    frames_per_second:
        ``1000 / mean_frame_ms`` (0.0 before the first frame).
    stages:
        Per-stage :class:`StageStats`, keyed by stage name in
        :data:`PIPELINE_STAGES` order (stages never recorded are absent).
    """

    frames_total: int
    total_ms: float
    mean_frame_ms: float
    frames_per_second: float
    stages: dict[str, StageStats] = field(default_factory=dict)


class PipelineMetrics:
    """Thread-safe accumulator behind :class:`PipelineMetricsSnapshot`.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.MetricRegistry` to register the
        ``pipeline_*`` metrics in; pass a service's observability registry
        to scrape cameras and serving through one exporter.  A private
        registry is built when omitted.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None):
        self.registry = registry if registry is not None else MetricRegistry()
        self._lock = threading.Lock()
        self._stages: dict[str, tuple[Counter, Counter, Gauge]] = {}
        self._frames = self.registry.counter(
            "pipeline_frames_total", help="Frames processed end to end"
        )
        self._frame_seconds = self.registry.counter(
            "pipeline_frame_seconds_total", help="Summed end-to-end frame seconds"
        )

    def _stage_metrics(self, stage: str) -> tuple[Counter, Counter, Gauge]:
        with self._lock:
            metrics = self._stages.get(stage)
            if metrics is None:
                labels = {"stage": stage}
                metrics = (
                    self.registry.counter(
                        "pipeline_stage_seconds_total",
                        labels=labels,
                        help="Summed wall-clock seconds per pipeline stage",
                    ),
                    self.registry.counter(
                        "pipeline_stage_calls_total",
                        labels=labels,
                        help="Recorded invocations per pipeline stage",
                    ),
                    self.registry.gauge(
                        "pipeline_stage_last_seconds",
                        labels=labels,
                        help="Most recent wall-clock seconds per pipeline stage",
                    ),
                )
                self._stages[stage] = metrics
            return metrics

    # ------------------------------------------------------------------ #
    # Recording (hot path)
    # ------------------------------------------------------------------ #
    def record_stage(self, stage: str, seconds: float) -> None:
        """Add one timed invocation of ``stage`` (seconds, never ms)."""
        if seconds < 0:
            raise ConfigurationError(f"seconds must be non-negative, got {seconds}")
        total, calls, last = self._stage_metrics(stage)
        total.inc(float(seconds))
        calls.inc()
        last.set(float(seconds))

    def record_frame(self, seconds: float) -> None:
        """Add one end-to-end frame time (seconds, never ms)."""
        if seconds < 0:
            raise ConfigurationError(f"seconds must be non-negative, got {seconds}")
        self._frames.inc()
        self._frame_seconds.inc(float(seconds))

    @property
    def frames_total(self) -> int:
        return int(self._frames.value)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def snapshot(self) -> PipelineMetricsSnapshot:
        """Freeze the counters for reporting (milliseconds rendered here)."""
        with self._lock:
            recorded = dict(self._stages)
        ordered = [s for s in PIPELINE_STAGES if s in recorded]
        ordered += [s for s in recorded if s not in PIPELINE_STAGES]
        stages = {}
        for stage in ordered:
            total, calls, last = recorded[stage]
            n_calls = int(calls.value)
            if n_calls == 0:
                continue
            total_ms = total.value * 1e3
            stages[stage] = StageStats(
                calls=n_calls,
                total_ms=total_ms,
                mean_ms=total_ms / n_calls,
                last_ms=last.value * 1e3,
            )
        frames = int(self._frames.value)
        total_ms = self._frame_seconds.value * 1e3
        mean_frame_ms = total_ms / frames if frames else 0.0
        return PipelineMetricsSnapshot(
            frames_total=frames,
            total_ms=total_ms,
            mean_frame_ms=mean_frame_ms,
            frames_per_second=1e3 / mean_frame_ms if mean_frame_ms > 0 else 0.0,
            stages=stages,
        )

    def reset(self) -> None:
        """Clear all accumulated counters (e.g. between benchmark repeats)."""
        with self._lock:
            stages = list(self._stages.values())
        for total, calls, last in stages:
            total.reset()
            calls.reset()
            last.reset()
        self._frames.reset()
        self._frame_seconds.reset()
