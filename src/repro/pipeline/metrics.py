"""Per-stage timing telemetry for the recognition pipeline.

The serve layer keeps itself honest with :mod:`repro.serve.metrics`; this
module does the same for the CPU-side vision front-end.  Every
:meth:`RecognitionSystem.process_frame` call records wall-clock seconds per
stage (background differencing, morphology, connected-components labelling,
blob extraction, tracking, signature extraction, classification) plus the
frame total, so operators can see exactly where a camera's frame budget
goes and the throughput benchmark can attribute its speedups
(``BENCH_vision.json`` commits a per-stage breakdown).

Recording is counter-based, O(1) and guarded by one lock, mirroring
:class:`repro.serve.metrics.ServiceMetrics`, so a system attached to a
multi-camera service can be scraped while frames are in flight.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Stage names in pipeline order, as recorded by ``RecognitionSystem``.
PIPELINE_STAGES = (
    "background",
    "morphology",
    "label",
    "blobs",
    "track",
    "signature",
    "classify",
)


@dataclass(frozen=True)
class StageStats:
    """Accumulated timing for one pipeline stage.

    Attributes
    ----------
    calls:
        Number of recorded invocations.
    total_ms, mean_ms, last_ms:
        Total, mean-per-call and most recent wall-clock milliseconds.
    """

    calls: int
    total_ms: float
    mean_ms: float
    last_ms: float


@dataclass(frozen=True)
class PipelineMetricsSnapshot:
    """Point-in-time view of the pipeline's per-stage timing.

    Attributes
    ----------
    frames_total:
        Frames processed since construction (or the last :meth:`reset`).
    total_ms:
        Summed end-to-end frame time.
    mean_frame_ms:
        Mean end-to-end milliseconds per frame.
    frames_per_second:
        ``1000 / mean_frame_ms`` (0.0 before the first frame).
    stages:
        Per-stage :class:`StageStats`, keyed by stage name in
        :data:`PIPELINE_STAGES` order (stages never recorded are absent).
    """

    frames_total: int
    total_ms: float
    mean_frame_ms: float
    frames_per_second: float
    stages: dict[str, StageStats] = field(default_factory=dict)


class PipelineMetrics:
    """Thread-safe accumulator behind :class:`PipelineMetricsSnapshot`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stage_calls: dict[str, int] = {}
        self._stage_total_s: dict[str, float] = {}
        self._stage_last_s: dict[str, float] = {}
        self.frames_total = 0
        self._frame_total_s = 0.0

    # ------------------------------------------------------------------ #
    # Recording (hot path)
    # ------------------------------------------------------------------ #
    def record_stage(self, stage: str, seconds: float) -> None:
        """Add one timed invocation of ``stage``."""
        if seconds < 0:
            raise ConfigurationError(f"seconds must be non-negative, got {seconds}")
        with self._lock:
            self._stage_calls[stage] = self._stage_calls.get(stage, 0) + 1
            self._stage_total_s[stage] = (
                self._stage_total_s.get(stage, 0.0) + float(seconds)
            )
            self._stage_last_s[stage] = float(seconds)

    def record_frame(self, seconds: float) -> None:
        """Add one end-to-end frame time."""
        if seconds < 0:
            raise ConfigurationError(f"seconds must be non-negative, got {seconds}")
        with self._lock:
            self.frames_total += 1
            self._frame_total_s += float(seconds)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def snapshot(self) -> PipelineMetricsSnapshot:
        """Freeze the counters for reporting."""
        with self._lock:
            ordered = [s for s in PIPELINE_STAGES if s in self._stage_calls]
            ordered += [s for s in self._stage_calls if s not in PIPELINE_STAGES]
            stages = {}
            for stage in ordered:
                calls = self._stage_calls[stage]
                total_ms = self._stage_total_s[stage] * 1e3
                stages[stage] = StageStats(
                    calls=calls,
                    total_ms=total_ms,
                    mean_ms=total_ms / calls,
                    last_ms=self._stage_last_s[stage] * 1e3,
                )
            frames = self.frames_total
            total_ms = self._frame_total_s * 1e3
        mean_frame_ms = total_ms / frames if frames else 0.0
        return PipelineMetricsSnapshot(
            frames_total=frames,
            total_ms=total_ms,
            mean_frame_ms=mean_frame_ms,
            frames_per_second=1e3 / mean_frame_ms if mean_frame_ms > 0 else 0.0,
            stages=stages,
        )

    def reset(self) -> None:
        """Clear all accumulated counters (e.g. between benchmark repeats)."""
        with self._lock:
            self._stage_calls.clear()
            self._stage_total_s.clear()
            self._stage_last_s.clear()
            self.frames_total = 0
            self._frame_total_s = 0.0
