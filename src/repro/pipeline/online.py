"""On-line learning extension (the paper's conclusion / future work).

"A full implementation of an identification system would require on-line
training and automatic labelling.  The additional stages required ... are:
to use the novelty detection capability of the bSOM to identify
previously-unlabelled objects; to use positional tracking to follow such
objects for a period and to record the corresponding signatures; and to
update the bSOM through on-line training when sufficient new signatures are
available."

:class:`OnlineLearner` implements exactly that loop on top of a fitted
classifier:

1. every incoming signature is checked against the rejection threshold;
   novel signatures are buffered per track,
2. once a track has accumulated ``min_signatures`` novel signatures, the
   map is updated on-line (a few extra training passes restricted to those
   signatures), a fresh label is allocated for the new object, and
3. the affected neurons are relabelled from the accumulated evidence so the
   object is recognised from then on.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.core.classifier import SomClassifier, UNKNOWN_LABEL
from repro.core.labelling import NodeLabeller
from repro.core.novelty import NoveltyDetector, calibrate_rejection_threshold
from repro.core.snapshot import DeltaSnapshot, ModelSnapshot
from repro.errors import ConfigurationError, NotFittedError

#: What the learner's periodic publisher receives: the first publication is
#: a full snapshot (the base); every later one is a row-level delta.
PublishedModel = Union[ModelSnapshot, DeltaSnapshot]


@dataclass
class OnlineLearnerConfig:
    """Configuration of the on-line learning loop.

    Attributes
    ----------
    min_signatures:
        How many novel signatures a track must accumulate before the map is
        updated (the paper's "when sufficient new signatures are
        available").
    online_epochs:
        Training passes run over the accumulated signatures when the update
        fires.
    rejection_percentile, rejection_margin:
        Parameters for calibrating the novelty threshold when the
        classifier does not already have one.
    publish_every:
        When set (and the learner has a ``publisher``), republish the
        model every N observed signatures: a full snapshot first (the
        base), then row-level :class:`~repro.core.snapshot.DeltaSnapshot`
        objects against the previously published version -- only the
        neuron rows the on-line updates actually touched are carried.
        ``None`` disables periodic publishing.
    """

    min_signatures: int = 20
    online_epochs: int = 3
    rejection_percentile: float = 99.0
    rejection_margin: float = 1.2
    publish_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_signatures <= 0:
            raise ConfigurationError(
                f"min_signatures must be positive, got {self.min_signatures}"
            )
        if self.online_epochs <= 0:
            raise ConfigurationError(
                f"online_epochs must be positive, got {self.online_epochs}"
            )
        if self.publish_every is not None and self.publish_every <= 0:
            raise ConfigurationError(
                f"publish_every must be positive or None, got {self.publish_every}"
            )


@dataclass(frozen=True)
class OnlineUpdateReport:
    """Record of one on-line map update."""

    track_id: int
    new_label: int
    signatures_used: int
    neurons_relabelled: int


class OnlineLearner:
    """Adds automatic labelling of new objects to a fitted classifier.

    Parameters
    ----------
    classifier:
        A fitted :class:`SomClassifier` over a bSOM (the on-line update uses
        the map's ``partial_fit``).
    train_signatures, train_labels:
        The original labelled training data, kept so that relabelling after
        an on-line update does not forget the known objects.
    config:
        Loop configuration.
    publisher:
        Optional callback invoked every ``config.publish_every``
        observations with the current model: a full
        :class:`~repro.core.snapshot.ModelSnapshot` on the first
        publication, then :class:`~repro.core.snapshot.DeltaSnapshot`
        objects against the previously published version.  Exceptions
        raised by the callback propagate to the caller of
        :meth:`observe` / :meth:`observe_many`.
    """

    def __init__(
        self,
        classifier: SomClassifier,
        train_signatures: np.ndarray,
        train_labels: np.ndarray,
        config: OnlineLearnerConfig | None = None,
        publisher: Optional[Callable[[PublishedModel], None]] = None,
    ):
        if classifier.labelling is None:
            raise NotFittedError("the classifier must be fitted before on-line learning")
        self.classifier = classifier
        self.config = config or OnlineLearnerConfig()
        self._X = np.asarray(train_signatures, dtype=np.uint8).copy()
        self._y = np.asarray(train_labels, dtype=np.int64).copy()
        threshold = classifier.rejection_threshold
        if threshold is None:
            threshold = calibrate_rejection_threshold(
                classifier.som,
                self._X,
                percentile=self.config.rejection_percentile,
                margin=self.config.rejection_margin,
            )
            classifier.rejection_threshold = threshold
        self.detector = NoveltyDetector(classifier.som, threshold)
        self._pending: dict[int, list[np.ndarray]] = defaultdict(list)
        self._next_label = int(self._y.max()) + 1 if self._y.size else 0
        self.updates: list[OnlineUpdateReport] = []
        self.publisher = publisher
        self._observed = 0
        self._published_at = 0
        self._published_base: Optional[ModelSnapshot] = None

    # ------------------------------------------------------------------ #
    # Streaming interface
    # ------------------------------------------------------------------ #
    def observe(self, track_id: int, signature: np.ndarray) -> int:
        """Process one signature from one track.

        Returns the current identity decision for the signature: a known
        label, a newly created label (after an on-line update), or
        :data:`UNKNOWN_LABEL` while evidence is still being accumulated.
        """
        signature = np.asarray(signature, dtype=np.uint8)
        prediction = self.classifier.predict_one(signature)
        if prediction.label != UNKNOWN_LABEL and not self.detector.is_novel(signature):
            self._note_observations(1)
            return prediction.label

        # Novel: buffer the signature against its track.
        self._pending[track_id].append(signature.copy())
        label = UNKNOWN_LABEL
        if len(self._pending[track_id]) >= self.config.min_signatures:
            label = self._learn_track(track_id)
        self._note_observations(1)
        return label

    def observe_many(
        self, track_ids: np.ndarray, signatures: np.ndarray
    ) -> np.ndarray:
        """Process one micro-batch of signatures from many tracks at once.

        The whole batch is first screened in one vectorised pass
        (:meth:`~repro.core.SomClassifier.predict_batch` plus the novelty
        mask); confidently-known signatures are answered immediately, and
        only the novel remainder goes through the sequential
        :meth:`observe` path with its buffering and on-line updates.  When
        an update fires mid-batch, signatures screened earlier keep the
        answer of the pre-update map -- the same outcome as if they had
        been answered just before the update, which is exactly the
        ordering a micro-batched serving front-end produces.
        """
        signatures = np.asarray(signatures, dtype=np.uint8)
        if signatures.ndim == 1:
            signatures = signatures[np.newaxis, :]
        track_ids = np.asarray(track_ids)
        if track_ids.ndim != 1 or track_ids.shape[0] != signatures.shape[0]:
            raise ConfigurationError(
                f"got {signatures.shape[0]} signatures but track_ids of shape "
                f"{track_ids.shape}"
            )
        prediction = self.classifier.predict_batch(signatures)
        # The learner keeps detector.threshold synchronised with the
        # classifier's rejection threshold, so predict_batch has already
        # folded the novelty decision into the rejection mask: the slow
        # path is exactly the UNKNOWN_LABEL rows.
        labels = prediction.labels.copy()
        slow = np.flatnonzero(labels == UNKNOWN_LABEL)
        for index in slow:
            labels[index] = self.observe(int(track_ids[index]), signatures[index])
        # observe() already counted the slow rows; credit the fast path too
        # so publish_every measures total observed signatures.
        self._note_observations(int(labels.size - slow.size))
        return labels

    def _learn_track(self, track_id: int) -> int:
        """Fold a track's accumulated novel signatures into the map."""
        signatures = np.vstack(self._pending.pop(track_id))
        new_label = self._next_label
        self._next_label += 1

        # On-line training: a few passes over just the new signatures.
        som = self.classifier.som
        for epoch in range(self.config.online_epochs):
            for row in signatures:
                som.partial_fit(row, epoch, self.config.online_epochs)

        # Extend the labelled pool and relabel every neuron from scratch so
        # known objects keep their labels and the new object gets its own.
        new_labels = np.full(signatures.shape[0], new_label, dtype=np.int64)
        self._X = np.vstack([self._X, signatures])
        self._y = np.concatenate([self._y, new_labels])
        labelling = NodeLabeller().label(som, self._X, self._y)
        previous = self.classifier.labelling
        self.classifier.labelling = labelling
        relabelled = (
            int(np.count_nonzero(labelling.node_labels != previous.node_labels))
            if previous is not None
            else som.n_neurons
        )

        # Recalibrate the rejection threshold over the extended pool.
        threshold = calibrate_rejection_threshold(
            som,
            self._X,
            percentile=self.config.rejection_percentile,
            margin=self.config.rejection_margin,
        )
        self.classifier.rejection_threshold = threshold
        self.detector = NoveltyDetector(som, threshold)

        self.updates.append(
            OnlineUpdateReport(
                track_id=track_id,
                new_label=new_label,
                signatures_used=int(signatures.shape[0]),
                neurons_relabelled=relabelled,
            )
        )
        return new_label

    # ------------------------------------------------------------------ #
    # Publishing to a serving registry
    # ------------------------------------------------------------------ #
    def snapshot(self, *, metadata: Optional[dict] = None) -> ModelSnapshot:
        """Freeze the learner's current classifier as a :class:`ModelSnapshot`.

        This closes the loop the paper's conclusion sketches: once the
        on-line update has folded a new object into the map, the learner
        emits an immutable snapshot that a serving deployment hot-swaps in
        (:meth:`repro.serve.StreamingInferenceService.swap_model` /
        :func:`repro.api.swap`) without dropping queued requests.  The
        snapshot records the on-line update history in its metadata.
        """
        annotations = {
            "online_updates": str(len(self.updates)),
            "known_labels": str(int(self.known_labels.size)),
        }
        annotations.update(metadata or {})
        return ModelSnapshot.of(self.classifier, metadata=annotations)

    def snapshot_delta(self, base: ModelSnapshot) -> DeltaSnapshot:
        """Diff the current model against a previously published ``base``.

        Only the neuron rows the on-line updates actually touched are
        carried; :meth:`DeltaSnapshot.apply` reconstructs the full
        snapshot bit-exactly (checksum-verified).  Both endpoints must
        carry a ``weights_version`` -- format-v2 snapshots always do.
        """
        return DeltaSnapshot.between(base, self.snapshot())

    def _note_observations(self, count: int) -> None:
        """Count observed signatures and publish when the period elapses."""
        if count <= 0:
            return
        self._observed += count
        period = self.config.publish_every
        if self.publisher is None or period is None:
            return
        while self._observed - self._published_at >= period:
            self._publish()

    def _publish(self) -> None:
        current = self.snapshot(
            metadata={"published_at_observation": str(self._observed)}
        )
        if self._published_base is None:
            self.publisher(current)
        else:
            self.publisher(DeltaSnapshot.between(self._published_base, current))
        self._published_base = current
        self._published_at = self._observed

    @property
    def observed(self) -> int:
        """Total signatures seen through :meth:`observe` / :meth:`observe_many`."""
        return self._observed

    @property
    def published_base(self) -> Optional[ModelSnapshot]:
        """The most recently published snapshot (delta base), if any."""
        return self._published_base

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def known_labels(self) -> np.ndarray:
        """All labels the classifier can currently produce."""
        return np.unique(self._y)

    def pending_counts(self) -> dict[int, int]:
        """Novel signatures buffered per track, awaiting an update."""
        return {track: len(rows) for track, rows in self._pending.items()}
