"""End-to-end identification pipeline (figure 1 / figure 6) and extensions.

* :mod:`repro.pipeline.system` -- the complete chain the paper's figure 1
  draws: video frames -> background differencing -> connected components ->
  tracking -> colour histogram -> binary signature -> (FPGA or software)
  bSOM -> object identity.
* :mod:`repro.pipeline.online` -- the on-line learning extension described
  in the paper's conclusion: novelty detection discovers unlabelled
  objects, positional tracking collects their signatures, and the map is
  updated and relabelled on-line once enough evidence has accumulated.
"""

from repro.pipeline.system import (
    RecognitionSystem,
    RecognitionSystemConfig,
    FrameObservation,
    TrackIdentity,
)
from repro.pipeline.online import OnlineLearner, OnlineLearnerConfig, OnlineUpdateReport

__all__ = [
    "RecognitionSystem",
    "RecognitionSystemConfig",
    "FrameObservation",
    "TrackIdentity",
    "OnlineLearner",
    "OnlineLearnerConfig",
    "OnlineUpdateReport",
]
