"""End-to-end identification pipeline (figure 1 / figure 6) and extensions.

* :mod:`repro.pipeline.system` -- the complete chain the paper's figure 1
  draws: video frames -> background differencing -> connected components ->
  tracking -> colour histogram -> binary signature -> (FPGA or software)
  bSOM -> object identity.
* :mod:`repro.pipeline.online` -- the on-line learning extension described
  in the paper's conclusion: novelty detection discovers unlabelled
  objects, positional tracking collects their signatures, and the map is
  updated and relabelled on-line once enough evidence has accumulated.
* :mod:`repro.pipeline.metrics` -- per-stage wall-clock telemetry of the
  vision front-end, mirroring the serve layer's service metrics.
"""

from repro.pipeline.system import (
    RecognitionSystem,
    RecognitionSystemConfig,
    FrameObservation,
    TrackIdentity,
)
from repro.pipeline.metrics import (
    PIPELINE_STAGES,
    PipelineMetrics,
    PipelineMetricsSnapshot,
    StageStats,
)
from repro.pipeline.online import (
    OnlineLearner,
    OnlineLearnerConfig,
    OnlineUpdateReport,
    PublishedModel,
)

__all__ = [
    "RecognitionSystem",
    "RecognitionSystemConfig",
    "FrameObservation",
    "TrackIdentity",
    "PIPELINE_STAGES",
    "PipelineMetrics",
    "PipelineMetricsSnapshot",
    "StageStats",
    "OnlineLearner",
    "OnlineLearnerConfig",
    "OnlineUpdateReport",
    "PublishedModel",
]
