"""The end-to-end object recognition system of figure 1 / figure 6.

The paper's deployment splits the work between a CPU-side tracking system
(segmentation, connected components, histogram extraction) and the FPGA
(the bSOM identification).  :class:`RecognitionSystem` reproduces the whole
chain in one object:

1. background differencing segments moving pixels,
2. morphology cleans the mask,
3. connected-components labelling and the minimum-size filter produce
   candidate silhouettes,
4. the tracker associates silhouettes with persistent track ids,
5. each silhouette's colour histogram is binarised into a 768-bit
   signature, and
6. a trained classifier (software bSOM, cSOM, or the cycle-accurate FPGA
   model through its software-compatible interface) assigns an identity,
   with per-track majority voting to smooth single-frame errors.

Classification is batched per frame: every silhouette of a frame is scored
in one ``predict_batch`` call, and a system can alternatively be attached
to a :class:`repro.serve.StreamingInferenceService` so its frames ride the
shared micro-batching/caching/sharding path alongside other cameras
(:meth:`RecognitionSystem.attach_service`).
"""

from __future__ import annotations

import time
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

import numpy as np

from repro.core.classifier import SomClassifier, UNKNOWN_LABEL
from repro.core.snapshot import ModelSnapshot
from repro.errors import (
    ConfigurationError,
    NotFittedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.pipeline.metrics import PipelineMetrics
from repro.signatures.binarize import MeanThreshold, ThresholdStrategy
from repro.signatures.histogram import rgb_histogram, rgb_histogram_batch
from repro.signatures.binarize import binarize_histogram
from repro.signatures.signature import BinarySignature
from repro.vision.background import BackgroundSubtractor
from repro.vision.blobs import (
    Blob,
    extract_blobs,
    extract_blobs_oracle,
    filter_blobs_by_area,
)
from repro.vision.connected_components import ConnectedComponentLabeller
from repro.vision.frame import Frame
from repro.vision.morphology import (
    binary_close,
    binary_close_oracle,
    binary_open,
    binary_open_oracle,
)
from repro.vision.tracker import ObjectTracker


@dataclass
class RecognitionSystemConfig:
    """Configuration of the end-to-end pipeline.

    Attributes
    ----------
    difference_threshold:
        Background-differencing threshold (0-255).
    morphology_radius:
        Radius of the opening/closing applied to the foreground mask.
    min_blob_area:
        Minimum silhouette size in pixels (the paper's rule scaled to the
        frame size; see :mod:`repro.vision.blobs`).
    bins_per_channel:
        Histogram resolution (256 in the paper, 768-bit signatures).
    vote_window:
        Number of recent per-frame identity votes kept per track for the
        majority decision.
    distance_backend:
        Distance-backend selection applied to the classifier's SOM when it
        supports pluggable backends (``"gemm"``, ``"packed"``, ``"naive"``,
        ``"auto"``); ``None`` keeps the SOM's current backend.
    vectorized:
        ``True`` (default) runs the array-level vision front-end (run-based
        CCL, separable morphology, single-pass blob extraction, batched
        histograms).  ``False`` runs the retained scalar oracles -- the
        seed implementation -- which produce identical outputs orders of
        magnitude slower; the throughput benchmark and the parity tests
        flip this switch.
    """

    difference_threshold: float = 28.0
    morphology_radius: int = 1
    min_blob_area: int = 150
    bins_per_channel: int = 256
    vote_window: int = 15
    distance_backend: Optional[str] = None
    vectorized: bool = True

    def __post_init__(self) -> None:
        if self.min_blob_area < 0:
            raise ConfigurationError(
                f"min_blob_area must be non-negative, got {self.min_blob_area}"
            )
        if self.vote_window <= 0:
            raise ConfigurationError(
                f"vote_window must be positive, got {self.vote_window}"
            )


@dataclass(frozen=True)
class FrameObservation:
    """One identified object in one frame."""

    frame_index: int
    track_id: int
    label: int
    distance: float
    signature: BinarySignature
    blob: Blob


@dataclass
class TrackIdentity:
    """Accumulated identity evidence for one track."""

    track_id: int
    votes: list[int] = field(default_factory=list)

    def add_vote(self, label: int, window: int) -> None:
        self.votes.append(int(label))
        if len(self.votes) > window:
            del self.votes[: len(self.votes) - window]

    @property
    def label(self) -> int:
        """Majority label over the retained votes (unknown if no votes)."""
        if not self.votes:
            return UNKNOWN_LABEL
        counts = Counter(self.votes)
        label, _ = counts.most_common(1)[0]
        return int(label)


class RecognitionSystem:
    """Figure-1 pipeline: frames in, identified tracks out.

    Parameters
    ----------
    classifier:
        A fitted :class:`~repro.core.classifier.SomClassifier` (its SOM may
        be the software bSOM, the cSOM baseline, or the FPGA model wrapped
        through :meth:`repro.hw.fpga_bsom.FpgaBsomDesign.to_software`), or a
        fitted :class:`~repro.core.snapshot.ModelSnapshot` -- the lifecycle
        currency -- which is materialised into a private classifier here
        (the deployment pattern: cameras consume the same frozen snapshot
        the registry serves).
    config:
        Pipeline configuration.
    strategy:
        Histogram binarisation rule (paper: mean threshold).
    """

    def __init__(
        self,
        classifier: SomClassifier | ModelSnapshot,
        config: RecognitionSystemConfig | None = None,
        strategy: ThresholdStrategy | None = None,
    ):
        if isinstance(classifier, ModelSnapshot):
            classifier = classifier.to_classifier()
        if classifier.labelling is None:
            raise NotFittedError(
                "the classifier must be fitted (or labelled) before building the "
                "recognition system"
            )
        self.classifier = classifier
        self.config = config or RecognitionSystemConfig()
        if self.config.distance_backend is not None and hasattr(
            classifier.som, "set_backend"
        ):
            classifier.som.set_backend(self.config.distance_backend)
        self.strategy = strategy or MeanThreshold()
        self.subtractor = BackgroundSubtractor(
            threshold=self.config.difference_threshold,
            vectorized=self.config.vectorized,
        )
        self.labeller = ConnectedComponentLabeller(
            connectivity=8, vectorized=self.config.vectorized
        )
        self.tracker = ObjectTracker()
        self.metrics = PipelineMetrics()
        self._identities: dict[int, TrackIdentity] = defaultdict(
            lambda: TrackIdentity(track_id=-1)
        )
        self.frames_processed = 0
        self._service = None
        self._service_model: Optional[str] = None
        self.stream_id = "camera-0"

    # ------------------------------------------------------------------ #
    # Serving integration
    # ------------------------------------------------------------------ #
    def attach_service(
        self, service, model: str, *, stream_id: Optional[str] = None
    ) -> None:
        """Route this system's classifications through a streaming service.

        Parameters
        ----------
        service:
            A running :class:`repro.serve.StreamingInferenceService`.
        model:
            Registry name of the model to classify with.  The service's
            model does not have to be ``self.classifier`` -- a system can
            segment/track locally while a central registry serves a newer
            map snapshot.
        stream_id:
            Camera name reported with every request; defaults to
            :attr:`stream_id`.
        """
        served = service.registry.classifier(model)  # fail fast on unknown names
        expected_bits = 3 * self.config.bins_per_channel
        if served.som.n_bits != expected_bits:
            raise ConfigurationError(
                f"model {model!r} expects {served.som.n_bits}-bit signatures but "
                f"this system extracts {expected_bits}-bit signatures "
                f"({self.config.bins_per_channel} bins per channel)"
            )
        self._service = service
        self._service_model = model
        if stream_id is not None:
            self.stream_id = stream_id

    def detach_service(self) -> None:
        """Go back to classifying in-process with ``self.classifier``."""
        self._service = None
        self._service_model = None

    @property
    def service_attached(self) -> bool:
        return self._service is not None

    #: Attempts against a saturated service before falling back in-process.
    SERVICE_BACKPRESSURE_RETRIES = 20
    SERVICE_BACKPRESSURE_BACKOFF_S = 0.002

    def _classify_batch(self, signatures: np.ndarray):
        """(labels, distances) for a frame's stacked signatures.

        Backpressure from the attached service (raised by ``submit`` or
        re-raised from a shed batch's futures) is retried with a short
        backoff; any other service failure (model evicted mid-stream,
        service stopped, response timeout) falls back immediately.  Either
        way the frame is ultimately classified in-process with
        ``self.classifier`` so :meth:`process_frame` always completes --
        the tracker has already consumed the frame by the time
        classification runs, so raising here would corrupt track state on a
        retry.
        """
        if self._service is not None:
            for _ in range(self.SERVICE_BACKPRESSURE_RETRIES):
                try:
                    responses = self._service.classify(
                        self._service_model, signatures, stream_id=self.stream_id
                    )
                except ServiceOverloadedError:
                    time.sleep(self.SERVICE_BACKPRESSURE_BACKOFF_S)
                    continue
                except ServiceError:
                    break
                labels = [response.label for response in responses]
                distances = [response.distance for response in responses]
                return labels, distances
        prediction = self.classifier.predict_batch(signatures)
        return prediction.labels.tolist(), prediction.distances.tolist()

    # ------------------------------------------------------------------ #
    # Per-frame processing
    # ------------------------------------------------------------------ #
    def initialise_background(self, image: np.ndarray) -> None:
        """Prime the background model with a clean plate."""
        self.subtractor.initialise(image)

    def segment(self, image: np.ndarray) -> list[Blob]:
        """Segment candidate object silhouettes from one frame.

        Each stage (background differencing, morphology, labelling, blob
        extraction) is timed into :attr:`metrics`.
        """
        start = perf_counter()
        foreground = self.subtractor.apply(image)
        tick = perf_counter()
        self.metrics.record_stage("background", tick - start)
        if self.config.morphology_radius > 0:
            if self.config.vectorized:
                foreground = binary_close(
                    binary_open(foreground, self.config.morphology_radius),
                    self.config.morphology_radius,
                )
            else:
                foreground = binary_close_oracle(
                    binary_open_oracle(foreground, self.config.morphology_radius),
                    self.config.morphology_radius,
                )
        tock = perf_counter()
        self.metrics.record_stage("morphology", tock - tick)
        labels, count = self.labeller.label(foreground)
        tick = perf_counter()
        self.metrics.record_stage("label", tick - tock)
        if self.config.vectorized:
            blobs = extract_blobs(labels, count)
        else:
            blobs = extract_blobs_oracle(labels, count)
        blobs = filter_blobs_by_area(blobs, self.config.min_blob_area)
        self.metrics.record_stage("blobs", perf_counter() - tick)
        return blobs

    def extract_signature(self, image: np.ndarray, blob: Blob) -> BinarySignature:
        """Colour histogram + mean-threshold binarisation for one blob."""
        histogram = rgb_histogram(image, blob.mask, self.config.bins_per_channel)
        bits = binarize_histogram(histogram, self.strategy)
        return BinarySignature(bits=bits)

    def _frame_signatures(self, image: np.ndarray, blobs: list[Blob]) -> list[BinarySignature]:
        """Signatures for all of a frame's blobs.

        The vectorized path histograms every silhouette in one
        offset-``bincount`` call over the blobs' cropped masks; the oracle
        path recomputes each blob's full-frame histogram separately.
        """
        if not self.config.vectorized:
            return [self.extract_signature(image, blob) for blob in blobs]
        histograms = rgb_histogram_batch(
            image,
            [(blob.bounding_box, blob.crop_mask()) for blob in blobs],
            self.config.bins_per_channel,
        )
        return [
            BinarySignature(bits=bits)
            for bits in self.strategy.binarize_batch(histograms)
        ]

    def process_frame(self, frame: Frame) -> list[FrameObservation]:
        """Run the full pipeline on one frame and return the identifications.

        All of a frame's silhouettes are classified in one batch -- either
        through the attached streaming service or directly via
        :meth:`~repro.core.SomClassifier.predict_batch`.
        """
        frame_start = perf_counter()
        blobs = self.segment(frame.image)
        tick = perf_counter()
        assignments = self.tracker.update(frame.index, blobs)
        tock = perf_counter()
        self.metrics.record_stage("track", tock - tick)
        observations: list[FrameObservation] = []
        if assignments:
            tracked = list(assignments.items())
            signatures = self._frame_signatures(
                frame.image, [blob for _, blob in tracked]
            )
            stacked = np.vstack([signature.bits for signature in signatures])
            tick = perf_counter()
            self.metrics.record_stage("signature", tick - tock)
            labels, distances = self._classify_batch(stacked)
            self.metrics.record_stage("classify", perf_counter() - tick)
            for (track_id, blob), signature, label, distance in zip(
                tracked, signatures, labels, distances
            ):
                identity = self._identities[track_id]
                identity.track_id = track_id
                identity.add_vote(label, self.config.vote_window)
                observations.append(
                    FrameObservation(
                        frame_index=frame.index,
                        track_id=track_id,
                        label=int(label),
                        distance=float(distance),
                        signature=signature,
                        blob=blob,
                    )
                )
        self.frames_processed += 1
        self.metrics.record_frame(perf_counter() - frame_start)
        return observations

    def process_sequence(self, frames) -> list[FrameObservation]:
        """Process an iterable of frames and return all observations."""
        observations: list[FrameObservation] = []
        for frame in frames:
            observations.extend(self.process_frame(frame))
        return observations

    # ------------------------------------------------------------------ #
    # Track-level results
    # ------------------------------------------------------------------ #
    def track_identity(self, track_id: int) -> int:
        """Majority-vote identity of a track (unknown if never observed)."""
        if track_id not in self._identities:
            return UNKNOWN_LABEL
        return self._identities[track_id].label

    def track_identities(self) -> dict[int, int]:
        """Majority-vote identity of every track seen so far."""
        return {
            track_id: identity.label
            for track_id, identity in self._identities.items()
        }
