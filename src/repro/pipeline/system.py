"""The end-to-end object recognition system of figure 1 / figure 6.

The paper's deployment splits the work between a CPU-side tracking system
(segmentation, connected components, histogram extraction) and the FPGA
(the bSOM identification).  :class:`RecognitionSystem` reproduces the whole
chain in one object:

1. background differencing segments moving pixels,
2. morphology cleans the mask,
3. connected-components labelling and the minimum-size filter produce
   candidate silhouettes,
4. the tracker associates silhouettes with persistent track ids,
5. each silhouette's colour histogram is binarised into a 768-bit
   signature, and
6. a trained classifier (software bSOM, cSOM, or the cycle-accurate FPGA
   model through its software-compatible interface) assigns an identity,
   with per-track majority voting to smooth single-frame errors.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.classifier import SomClassifier, UNKNOWN_LABEL
from repro.errors import ConfigurationError, NotFittedError
from repro.signatures.binarize import MeanThreshold, ThresholdStrategy
from repro.signatures.histogram import rgb_histogram
from repro.signatures.binarize import binarize_histogram
from repro.signatures.signature import BinarySignature
from repro.vision.background import BackgroundSubtractor
from repro.vision.blobs import Blob, extract_blobs, filter_blobs_by_area
from repro.vision.connected_components import ConnectedComponentLabeller
from repro.vision.frame import Frame
from repro.vision.morphology import binary_close, binary_open
from repro.vision.tracker import ObjectTracker


@dataclass
class RecognitionSystemConfig:
    """Configuration of the end-to-end pipeline.

    Attributes
    ----------
    difference_threshold:
        Background-differencing threshold (0-255).
    morphology_radius:
        Radius of the opening/closing applied to the foreground mask.
    min_blob_area:
        Minimum silhouette size in pixels (the paper's rule scaled to the
        frame size; see :mod:`repro.vision.blobs`).
    bins_per_channel:
        Histogram resolution (256 in the paper, 768-bit signatures).
    vote_window:
        Number of recent per-frame identity votes kept per track for the
        majority decision.
    """

    difference_threshold: float = 28.0
    morphology_radius: int = 1
    min_blob_area: int = 150
    bins_per_channel: int = 256
    vote_window: int = 15

    def __post_init__(self) -> None:
        if self.min_blob_area < 0:
            raise ConfigurationError(
                f"min_blob_area must be non-negative, got {self.min_blob_area}"
            )
        if self.vote_window <= 0:
            raise ConfigurationError(
                f"vote_window must be positive, got {self.vote_window}"
            )


@dataclass(frozen=True)
class FrameObservation:
    """One identified object in one frame."""

    frame_index: int
    track_id: int
    label: int
    distance: float
    signature: BinarySignature
    blob: Blob


@dataclass
class TrackIdentity:
    """Accumulated identity evidence for one track."""

    track_id: int
    votes: list[int] = field(default_factory=list)

    def add_vote(self, label: int, window: int) -> None:
        self.votes.append(int(label))
        if len(self.votes) > window:
            del self.votes[: len(self.votes) - window]

    @property
    def label(self) -> int:
        """Majority label over the retained votes (unknown if no votes)."""
        if not self.votes:
            return UNKNOWN_LABEL
        counts = Counter(self.votes)
        label, _ = counts.most_common(1)[0]
        return int(label)


class RecognitionSystem:
    """Figure-1 pipeline: frames in, identified tracks out.

    Parameters
    ----------
    classifier:
        A fitted :class:`~repro.core.classifier.SomClassifier` (its SOM may
        be the software bSOM, the cSOM baseline, or the FPGA model wrapped
        through :meth:`repro.hw.fpga_bsom.FpgaBsomDesign.to_software`).
    config:
        Pipeline configuration.
    strategy:
        Histogram binarisation rule (paper: mean threshold).
    """

    def __init__(
        self,
        classifier: SomClassifier,
        config: RecognitionSystemConfig | None = None,
        strategy: ThresholdStrategy | None = None,
    ):
        if classifier.labelling is None:
            raise NotFittedError(
                "the classifier must be fitted (or labelled) before building the "
                "recognition system"
            )
        self.classifier = classifier
        self.config = config or RecognitionSystemConfig()
        self.strategy = strategy or MeanThreshold()
        self.subtractor = BackgroundSubtractor(
            threshold=self.config.difference_threshold
        )
        self.labeller = ConnectedComponentLabeller(connectivity=8)
        self.tracker = ObjectTracker()
        self._identities: dict[int, TrackIdentity] = defaultdict(
            lambda: TrackIdentity(track_id=-1)
        )
        self.frames_processed = 0

    # ------------------------------------------------------------------ #
    # Per-frame processing
    # ------------------------------------------------------------------ #
    def initialise_background(self, image: np.ndarray) -> None:
        """Prime the background model with a clean plate."""
        self.subtractor.initialise(image)

    def segment(self, image: np.ndarray) -> list[Blob]:
        """Segment candidate object silhouettes from one frame."""
        foreground = self.subtractor.apply(image)
        if self.config.morphology_radius > 0:
            foreground = binary_close(
                binary_open(foreground, self.config.morphology_radius),
                self.config.morphology_radius,
            )
        labels, count = self.labeller.label(foreground)
        blobs = extract_blobs(labels, count)
        return filter_blobs_by_area(blobs, self.config.min_blob_area)

    def extract_signature(self, image: np.ndarray, blob: Blob) -> BinarySignature:
        """Colour histogram + mean-threshold binarisation for one blob."""
        histogram = rgb_histogram(image, blob.mask, self.config.bins_per_channel)
        bits = binarize_histogram(histogram, self.strategy)
        return BinarySignature(bits=bits)

    def process_frame(self, frame: Frame) -> list[FrameObservation]:
        """Run the full pipeline on one frame and return the identifications."""
        blobs = self.segment(frame.image)
        assignments = self.tracker.update(frame.index, blobs)
        observations: list[FrameObservation] = []
        for track_id, blob in assignments.items():
            signature = self.extract_signature(frame.image, blob)
            prediction = self.classifier.predict_one(signature.bits)
            identity = self._identities[track_id]
            identity.track_id = track_id
            identity.add_vote(prediction.label, self.config.vote_window)
            observations.append(
                FrameObservation(
                    frame_index=frame.index,
                    track_id=track_id,
                    label=prediction.label,
                    distance=prediction.distance,
                    signature=signature,
                    blob=blob,
                )
            )
        self.frames_processed += 1
        return observations

    def process_sequence(self, frames) -> list[FrameObservation]:
        """Process an iterable of frames and return all observations."""
        observations: list[FrameObservation] = []
        for frame in frames:
            observations.extend(self.process_frame(frame))
        return observations

    # ------------------------------------------------------------------ #
    # Track-level results
    # ------------------------------------------------------------------ #
    def track_identity(self, track_id: int) -> int:
        """Majority-vote identity of a track (unknown if never observed)."""
        if track_id not in self._identities:
            return UNKNOWN_LABEL
        return self._identities[track_id].label

    def track_identities(self) -> dict[int, int]:
        """Majority-vote identity of every track seen so far."""
        return {
            track_id: identity.label
            for track_id, identity in self._identities.items()
        }
