"""repro -- Binary object recognition with a tri-state binary SOM (bSOM).

A from-scratch Python reproduction of *"Binary Object Recognition System on
FPGA with bSOM"* (Appiah, Hunter, Dickinson, Meng -- SOCC 2010).

The library is organised in layers that mirror the paper's figure 1:

* :mod:`repro.vision` -- the CPU-side substrate: synthetic surveillance
  video, background differencing, connected-components labelling and a
  frame-to-frame object tracker,
* :mod:`repro.signatures` -- 768-bin colour histograms and their
  mean-threshold binarisation into 768-bit binary signatures,
* :mod:`repro.core` -- the tri-state binary SOM (bSOM), the Kohonen SOM
  baseline (cSOM), node labelling, classification and novelty detection,
* :mod:`repro.hw` -- a cycle-accurate behavioural model of the paper's FPGA
  architecture (Virtex-4 XC4VLX160) with a resource and throughput model,
* :mod:`repro.datasets` -- paper-scale dataset construction (nine
  identities, ~2,248 training / ~1,139 test signatures),
* :mod:`repro.eval` -- metrics, the Wilcoxon rank-sum analysis of Table II
  and runnable reproductions of every table and figure,
* :mod:`repro.pipeline` -- the end-to-end identification system and the
  on-line learning extension sketched in the paper's conclusion.

Quick start
-----------
>>> from repro.datasets import make_surveillance_dataset
>>> from repro.core import BinarySom, SomClassifier
>>> data = make_surveillance_dataset(scale=0.1, seed=0)
>>> clf = SomClassifier(BinarySom(40, data.n_bits, seed=0))
>>> clf = clf.fit(data.train_signatures, data.train_labels, epochs=10)
>>> accuracy = clf.score(data.test_signatures, data.test_labels)
"""

from repro.errors import (
    ConfigurationError,
    DataError,
    DeviceCapacityError,
    DimensionMismatchError,
    HardwareModelError,
    NotFittedError,
    ReproError,
    TrackingError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "DataError",
    "DimensionMismatchError",
    "NotFittedError",
    "HardwareModelError",
    "DeviceCapacityError",
    "TrackingError",
]
