"""repro -- Binary object recognition with a tri-state binary SOM (bSOM).

A from-scratch Python reproduction of *"Binary Object Recognition System on
FPGA with bSOM"* (Appiah, Hunter, Dickinson, Meng -- SOCC 2010), grown into
a streaming multi-camera serving system.

The library is organised in layers that mirror the paper's figure 1:

* :mod:`repro.vision` -- the CPU-side substrate: synthetic surveillance
  video, background differencing, connected-components labelling and a
  frame-to-frame object tracker,
* :mod:`repro.signatures` -- 768-bin colour histograms and their
  mean-threshold binarisation into 768-bit binary signatures,
* :mod:`repro.core` -- the tri-state binary SOM (bSOM), the Kohonen SOM
  baseline (cSOM), node labelling, classification, novelty detection and
  the :class:`~repro.core.snapshot.ModelSnapshot` persistence/serving
  currency,
* :mod:`repro.hw` -- a cycle-accurate behavioural model of the paper's FPGA
  architecture (Virtex-4 XC4VLX160) with a resource and throughput model,
* :mod:`repro.datasets` -- paper-scale dataset construction (nine
  identities, ~2,248 training / ~1,139 test signatures),
* :mod:`repro.eval` -- metrics, the Wilcoxon rank-sum analysis of Table II
  and runnable reproductions of every table and figure,
* :mod:`repro.pipeline` -- the end-to-end identification system and the
  on-line learning extension sketched in the paper's conclusion,
* :mod:`repro.serve` -- the streaming inference service: micro-batching,
  sharded model registry with zero-drop hot-reload, signature cache,
  cross-request dedup, backpressure and telemetry, and
* :mod:`repro.api` -- the documented model-lifecycle facade
  (``train`` / ``save`` / ``load`` / ``serve`` / ``swap``).

Quick start (the lifecycle facade)
----------------------------------
>>> from repro import api
>>> from repro.datasets import make_surveillance_dataset
>>> data = make_surveillance_dataset(scale=0.1, seed=0)
>>> clf = api.train(data.train_signatures, data.train_labels, epochs=10, seed=0)
>>> path = api.save(clf, "/tmp/hall.npz")                   # doctest: +SKIP
>>> service = api.serve({"hall": api.load(path)})           # doctest: +SKIP
>>> api.swap(service, "hall", api.snapshot(clf))            # doctest: +SKIP

The convenience names ``train``/``snapshot``/``save``/``load``/``swap`` and
:class:`ModelSnapshot` are re-exported here lazily; ``api.serve`` stays
under :mod:`repro.api` because ``repro.serve`` names the serving package.
"""

import warnings

from repro.errors import (
    ConfigurationError,
    DataError,
    DeviceCapacityError,
    DimensionMismatchError,
    HardwareModelError,
    ModelEvictedError,
    NotFittedError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    TrackingError,
    UnknownModelError,
)

__version__ = "2.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "DataError",
    "DimensionMismatchError",
    "NotFittedError",
    "HardwareModelError",
    "DeviceCapacityError",
    "TrackingError",
    "ServiceError",
    "ServiceOverloadedError",
    "UnknownModelError",
    "ModelEvictedError",
    # Lifecycle facade (lazily re-exported; `serve` lives at repro.api.serve).
    "api",
    "ModelSnapshot",
    "train",
    "snapshot",
    "save",
    "load",
    "swap",
]

# Lazy facade re-exports (PEP 562): keep `import repro` light while making
# `repro.train(...)` / `repro.ModelSnapshot` work without a second import.
_LAZY_EXPORTS = {
    "api": ("repro.api", None),
    "ModelSnapshot": ("repro.core.snapshot", "ModelSnapshot"),
    "train": ("repro.api", "train"),
    "snapshot": ("repro.api", "snapshot"),
    "save": ("repro.api", "save"),
    "load": ("repro.api", "load"),
    "swap": ("repro.api", "swap"),
}

# Pre-facade entry points kept importable with a pointer to their successor.
_DEPRECATED_EXPORTS = {
    "save_model": ("repro.core.serialization", "save_model", "repro.api.save"),
    "load_model": ("repro.core.serialization", "load_model", "repro.api.load"),
}


def __getattr__(name):
    import importlib

    if name in _LAZY_EXPORTS:
        module_name, attribute = _LAZY_EXPORTS[name]
        module = importlib.import_module(module_name)
        value = module if attribute is None else getattr(module, attribute)
        globals()[name] = value
        return value
    if name in _DEPRECATED_EXPORTS:
        module_name, attribute, successor = _DEPRECATED_EXPORTS[name]
        warnings.warn(
            f"repro.{name} is deprecated; use {successor} (which speaks "
            f"ModelSnapshot, the lifecycle currency) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(globals()) | set(_DEPRECATED_EXPORTS))
