"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so downstream users can catch a single base class at
API boundaries while still being able to distinguish configuration mistakes
from data problems and hardware-model violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters.

    Examples include a SOM with zero neurons, a histogram with a
    non-positive number of bins, or an FPGA design whose vector width does
    not match the configured image size.
    """


class DimensionMismatchError(ReproError):
    """An input vector's length does not match what the model expects."""

    def __init__(self, expected: int, actual: int, what: str = "input vector"):
        self.expected = int(expected)
        self.actual = int(actual)
        self.what = what
        super().__init__(
            f"{what} has length {actual}, but the model expects length {expected}"
        )


class NotFittedError(ReproError):
    """A model was asked to predict or label before it was trained."""


class DataError(ReproError):
    """Input data is malformed (wrong dtype, empty, non-binary values...)."""


class HardwareModelError(ReproError):
    """The cycle-accurate hardware simulation was driven incorrectly.

    Raised for protocol violations such as presenting a new pattern while
    the winner-take-all block is still busy, or configuring a design that
    does not fit on the selected device.
    """


class DeviceCapacityError(HardwareModelError):
    """A synthesised design exceeds the resources of the target device."""

    def __init__(self, resource: str, required: int, available: int):
        self.resource = resource
        self.required = int(required)
        self.available = int(available)
        super().__init__(
            f"design requires {required} {resource}, but the device only has "
            f"{available}"
        )


class TrackingError(ReproError):
    """The object tracker was driven with inconsistent frame data."""


class ServiceError(ReproError):
    """Base class for errors raised by the streaming inference service."""


class UnknownModelError(ServiceError):
    """A request named a model that is not registered with the service.

    Carries the unknown name and the names that *are* registered so callers
    can report a useful error to the camera stream that sent the request.
    """

    def __init__(
        self, name: str, available: tuple[str, ...] = (), message: str | None = None
    ):
        self.name = name
        self.available = tuple(available)
        known = ", ".join(sorted(self.available)) or "none"
        super().__init__(
            message or f"no model named {name!r} is registered (available: {known})"
        )


class ModelEvictedError(UnknownModelError):
    """The model serving a queued request was evicted before its batch ran.

    Delivered to every future still queued behind an evicted model, so a
    caller waiting on ``result()`` gets a clear, catchable answer instead of
    hanging until its timeout.  Derives from :class:`UnknownModelError`
    because by the time the caller sees it, the name really is unknown.
    """

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        known = ", ".join(sorted(tuple(available))) or "none"
        super().__init__(
            name,
            available,
            message=(
                f"model {name!r} was evicted while requests were still queued "
                f"(available: {known})"
            ),
        )


class ServiceOverloadedError(ServiceError):
    """Backpressure: the service's queues are saturated.

    Raised instead of queueing unboundedly when either the service-wide
    pending budget or every worker shard's batch queue is full.  Callers are
    expected to shed load or retry after a delay.
    """

    def __init__(self, what: str, pending: int, capacity: int):
        self.what = what
        self.pending = int(pending)
        self.capacity = int(capacity)
        super().__init__(
            f"{what} saturated: {pending} pending against a capacity of {capacity}"
        )
