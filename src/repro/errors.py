"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so downstream users can catch a single base class at
API boundaries while still being able to distinguish configuration mistakes
from data problems and hardware-model violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters.

    Examples include a SOM with zero neurons, a histogram with a
    non-positive number of bins, or an FPGA design whose vector width does
    not match the configured image size.
    """


class DimensionMismatchError(ReproError):
    """An input vector's length does not match what the model expects."""

    def __init__(self, expected: int, actual: int, what: str = "input vector"):
        self.expected = int(expected)
        self.actual = int(actual)
        self.what = what
        super().__init__(
            f"{what} has length {actual}, but the model expects length {expected}"
        )


class NotFittedError(ReproError):
    """A model was asked to predict or label before it was trained."""


class DataError(ReproError):
    """Input data is malformed (wrong dtype, empty, non-binary values...)."""


class SnapshotCorruptionError(DataError):
    """A snapshot archive or delta failed an integrity check.

    Raised by the serialization layer when an ``.npz`` archive is truncated,
    bit-flipped or otherwise unreadable, when a per-array CRC32 recorded in
    the format-v2 header does not match the bytes actually read back, or
    when materialising a delta snapshot produces weights whose checksum
    disagrees with the one recorded at capture time.  Loading fails closed:
    a corrupt model never reaches the serving registry.
    """

    def __init__(self, path, detail: str):
        self.path = path
        self.detail = detail
        where = f"{path}: " if path is not None else ""
        super().__init__(f"snapshot corrupt: {where}{detail}")


class HardwareModelError(ReproError):
    """The cycle-accurate hardware simulation was driven incorrectly.

    Raised for protocol violations such as presenting a new pattern while
    the winner-take-all block is still busy, or configuring a design that
    does not fit on the selected device.
    """


class DeviceCapacityError(HardwareModelError):
    """A synthesised design exceeds the resources of the target device."""

    def __init__(self, resource: str, required: int, available: int):
        self.resource = resource
        self.required = int(required)
        self.available = int(available)
        super().__init__(
            f"design requires {required} {resource}, but the device only has "
            f"{available}"
        )


class TrackingError(ReproError):
    """The object tracker was driven with inconsistent frame data."""


class ServiceError(ReproError):
    """Base class for errors raised by the streaming inference service."""


class UnknownModelError(ServiceError):
    """A request named a model that is not registered with the service.

    Carries the unknown name and the names that *are* registered so callers
    can report a useful error to the camera stream that sent the request.
    """

    def __init__(
        self, name: str, available: tuple[str, ...] = (), message: str | None = None
    ):
        self.name = name
        self.available = tuple(available)
        known = ", ".join(sorted(self.available)) or "none"
        super().__init__(
            message or f"no model named {name!r} is registered (available: {known})"
        )


class ModelEvictedError(UnknownModelError):
    """The model serving a queued request was evicted before its batch ran.

    Delivered to every future still queued behind an evicted model, so a
    caller waiting on ``result()`` gets a clear, catchable answer instead of
    hanging until its timeout.  Derives from :class:`UnknownModelError`
    because by the time the caller sees it, the name really is unknown.
    """

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        known = ", ".join(sorted(tuple(available))) or "none"
        super().__init__(
            name,
            available,
            message=(
                f"model {name!r} was evicted while requests were still queued "
                f"(available: {known})"
            ),
        )


class ServiceOverloadedError(ServiceError):
    """Backpressure: the service's queues are saturated.

    Raised instead of queueing unboundedly when either the service-wide
    pending budget or every worker shard's batch queue is full.  Callers are
    expected to shed load or retry after a delay.
    """

    def __init__(self, what: str, pending: int, capacity: int):
        self.what = what
        self.pending = int(pending)
        self.capacity = int(capacity)
        super().__init__(
            f"{what} saturated: {pending} pending against a capacity of {capacity}"
        )


class CircuitOpenError(ServiceOverloadedError):
    """Every shard circuit breaker of the requested model is open.

    The scheduler routes around individually open shards; this error means
    no shard of the model is currently accepting work and no stale cache
    entry could answer the request.  Derives from
    :class:`ServiceOverloadedError` because the remedy is the same: back
    off and retry -- a half-open probe will test the shards again after the
    breaker's reset timeout.
    """

    def __init__(self, model: str, open_shards: int = 0, total_shards: int = 0):
        self.model = model
        self.open_shards = int(open_shards)
        self.total_shards = int(total_shards)
        self.what = f"model {model!r} circuit"
        self.pending = self.open_shards
        self.capacity = self.total_shards
        ServiceError.__init__(
            self,
            f"model {model!r} is unavailable: {open_shards}/{total_shards} "
            "shard circuit breakers are open",
        )


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before its batch reached a kernel.

    Expired requests are shed -- once before batching (at dispatch) and
    once more just before kernel launch -- so a deadline-carrying caller is
    guaranteed a terminal answer within its budget instead of paying for a
    classification it can no longer use.
    """

    def __init__(self, model: str = "", deadline_s: float | None = None):
        self.model = model
        self.deadline_s = deadline_s
        budget = f" of {deadline_s:.3f}s" if deadline_s is not None else ""
        super().__init__(
            f"request deadline{budget} expired before classification"
            + (f" (model {model!r})" if model else "")
        )


class ShardFailedError(ServiceError):
    """A worker shard died or wedged while a batch was in flight.

    Delivered by the shard supervisor to the futures of the batch the
    failed worker was holding; the shard itself is restarted (under a
    bounded restart budget) and its still-queued batches are re-dispatched.
    """

    def __init__(self, shard: str, reason: str = "failed"):
        self.shard = shard
        self.reason = reason
        super().__init__(f"worker shard {shard!r} {reason} while a batch was in flight")


class InjectedFaultError(ServiceError):
    """A deterministic test fault fired at a named injection site.

    Raised only when a :class:`repro.serve.resilience.FaultInjector` is
    armed (chaos tests and ``scripts/check_resilience.py``); production
    configurations never construct one.
    """

    def __init__(self, site: str, **context):
        self.site = site
        self.context = dict(context)
        detail = ", ".join(f"{k}={v!r}" for k, v in self.context.items())
        super().__init__(
            f"injected fault at site {site!r}" + (f" ({detail})" if detail else "")
        )


class ResultTimeoutError(ServiceError):
    """``PendingResult.result(timeout)`` gave up waiting.

    Distinguishes "the caller stopped waiting" from terminal service
    errors (shed, evicted, deadline-exceeded...): seeing this error means
    the future itself never completed -- the chaos gate treats it as a hung
    request, which the resilience layer must never produce.
    """

    def __init__(self, timeout: float | None):
        self.timeout = timeout
        super().__init__(f"request did not complete within {timeout} seconds")
