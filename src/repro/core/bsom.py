"""The tri-state rule binary Self-Organising Map (bSOM).

The bSOM (section III of the paper, after Appiah et al. [5]) takes binary
input vectors and maintains *tri-state* prototype vectors over ``{0, 1, #}``.
Matching uses the Hamming distance with ``#`` treated as a wildcard
(equation 3).  Training is competitive: the neuron with the minimum masked
Hamming distance wins, and the winner plus a shrinking neighbourhood are
updated with bit-wise tri-state rules.

Tri-state update rules
----------------------
The paper describes the update qualitatively ("tri-state rule"); the
concrete bit-level rules implemented here are reconstructed from the cited
bSOM paper and from the hardware description (one pass over the bits, no
arithmetic other than comparison), and are called out in DESIGN.md as an
ablation target:

*Full rule* (used for the winning neuron)
    ========================  =================
    current weight bit        new weight bit
    ========================  =================
    equal to the input bit    unchanged
    ``#`` (don't care)        the input bit
    opposite of the input     ``#``
    ========================  =================

    A bit that is consistently 0 (or 1) across the patterns a neuron wins
    stays committed; a bit that varies oscillates through ``#`` and spends
    its time in the wildcard state, which is exactly the "don't care"
    semantics the paper wants.

*Stochastic neighbourhood rule* (default for neighbours)
    Neurons other than the winner apply the full rule to each bit
    independently with probability ``neighbour_strength ** d`` where ``d``
    is the topological distance from the winner.  This is the binary
    counterpart of the Kohonen neighbourhood kernel: a real-valued SOM
    moves a neighbour a *fraction* of the way towards the input, and the
    only way to move a binary weight vector a fraction of the way is to
    update a random fraction of its bits.  In hardware this costs one LFSR
    bit-stream per grid distance -- the same pseudo-random machinery the
    weight-initialisation block already contains.  Without the distance
    attenuation the full rule erases the prototypes of neighbouring neurons
    on every update, which measurably destroys the map's class purity (see
    the update-rule ablation benchmark).

*Full rule* applied to every neighbour, and the *commit-only rule* (only
``#`` bits are resolved towards the input) are retained as ablation
settings via :class:`BsomUpdateRule`.

All rules are single-pass, bit-parallel and need no multipliers, matching
the hardware budget of the FPGA "neurons updating unit" (figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.core.backends import (
    BackendSpec,
    DistanceBackend,
    PackedBackend,
    PreparedOperandCache,
    resolve_backend,
)
from repro.core.som import SelfOrganisingMap, validate_binary_matrix
from repro.core.topology import (
    LinearTopology,
    NeighbourhoodSchedule,
    StepwiseNeighbourhoodSchedule,
    Topology,
)
from repro.core.tristate import DONT_CARE, TriStateWeights, random_tristate
from repro.errors import ConfigurationError

_VALID_WINNER_RULES = ("full", "commit")
_VALID_NEIGHBOUR_RULES = ("stochastic", "full", "commit")


@dataclass(frozen=True)
class BsomUpdateRule:
    """Configuration of the bit-level tri-state update rules.

    Attributes
    ----------
    winner_rule:
        ``"full"`` (paper behaviour) or ``"commit"`` -- rule applied to the
        winning neuron.
    neighbour_rule:
        ``"stochastic"`` (default: full rule applied to a random fraction
        ``neighbour_strength ** d`` of each neighbour's bits), ``"full"``
        or ``"commit"``.
    neighbour_strength:
        Base of the per-grid-distance attenuation used by the stochastic
        rule; 0.5 mirrors the halving-per-step kernel of the cSOM baseline.
    """

    winner_rule: str = "full"
    neighbour_rule: str = "stochastic"
    neighbour_strength: float = 0.5

    def __post_init__(self) -> None:
        if self.winner_rule not in _VALID_WINNER_RULES:
            raise ConfigurationError(
                f"winner_rule must be one of {_VALID_WINNER_RULES}, got "
                f"{self.winner_rule!r}"
            )
        if self.neighbour_rule not in _VALID_NEIGHBOUR_RULES:
            raise ConfigurationError(
                f"neighbour_rule must be one of {_VALID_NEIGHBOUR_RULES}, got "
                f"{self.neighbour_rule!r}"
            )
        if not 0.0 < self.neighbour_strength <= 1.0:
            raise ConfigurationError(
                f"neighbour_strength must lie in (0, 1], got {self.neighbour_strength}"
            )


def _apply_full_rule(
    rows: np.ndarray, x: np.ndarray, select: np.ndarray | None = None
) -> None:
    """Apply the full tri-state rule to ``rows`` in place.

    When ``select`` is given (a boolean matrix of the same shape as
    ``rows``), only the selected bits are updated -- this is how the
    stochastic neighbourhood rule attenuates the update with grid distance.
    """
    dont_care = rows == DONT_CARE
    mismatch = ~dont_care & (rows != x[np.newaxis, :])
    if select is not None:
        dont_care &= select
        mismatch &= select
    rows[dont_care] = np.broadcast_to(x, rows.shape)[dont_care]
    rows[mismatch] = DONT_CARE


def _apply_commit_rule(rows: np.ndarray, x: np.ndarray) -> None:
    """Apply the commit-only rule to ``rows`` in place."""
    dont_care = rows == DONT_CARE
    rows[dont_care] = np.broadcast_to(x, rows.shape)[dont_care]


class BinarySom(SelfOrganisingMap):
    """Tri-state binary Self-Organising Map.

    Parameters
    ----------
    n_neurons:
        Number of neurons in the competitive layer (40 in the paper).
    n_bits:
        Length of the binary input / weight vectors (768 in the paper).
    topology:
        Neuron arrangement; defaults to the FPGA's linear chain.
    schedule:
        Neighbourhood radius schedule; defaults to the paper's stepwise
        schedule with a maximum radius of 4.
    update_rule:
        Tri-state bit update rules for winner and neighbours.
    dont_care_probability:
        Fraction of weight bits initialised to ``#`` (paper default 0:
        purely random binary initialisation, as in the hardware
        weight-initialisation block).
    seed:
        Seed or generator used for weight initialisation.
    backend:
        Distance backend: a name (``"gemm"``, ``"packed"``, ``"naive"``,
        ``"auto"``), a :class:`~repro.core.backends.DistanceBackend`
        instance, or ``None`` to consult ``$REPRO_DISTANCE_BACKEND`` and
        fall back to the ``"auto"`` map-size heuristic.  All backends are
        bit-exact, so the choice affects speed only.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import BinarySom
    >>> rng = np.random.default_rng(0)
    >>> X = rng.integers(0, 2, size=(100, 64))
    >>> som = BinarySom(n_neurons=8, n_bits=64, seed=1).fit(X, epochs=5)
    >>> 0 <= som.winner(X[0]) < 8
    True
    """

    def __init__(
        self,
        n_neurons: int,
        n_bits: int,
        *,
        topology: Topology | None = None,
        schedule: NeighbourhoodSchedule | None = None,
        update_rule: BsomUpdateRule | None = None,
        dont_care_probability: float = 0.0,
        seed: SeedLike = None,
        backend: BackendSpec = None,
    ):
        super().__init__(n_neurons, n_bits)
        self.topology = topology or LinearTopology(n_neurons)
        if self.topology.n_neurons != n_neurons:
            raise ConfigurationError(
                f"topology covers {self.topology.n_neurons} neurons but the map has "
                f"{n_neurons}"
            )
        self.schedule = schedule or StepwiseNeighbourhoodSchedule(max_radius=4)
        self.update_rule = update_rule or BsomUpdateRule()
        rng = as_generator(seed)
        self._weights = random_tristate(
            n_neurons,
            n_bits,
            dont_care_probability=dont_care_probability,
            seed=rng,
        ).values
        # Dedicated stream for the stochastic neighbourhood rule (the
        # hardware equivalent is an LFSR separate from the one used for
        # weight initialisation).
        self._update_rng = as_generator(rng.integers(0, 2**63 - 1))
        self._neighbourhood_cache: dict[tuple[int, int], np.ndarray] = {}
        self._backend = resolve_backend(backend, n_neurons=n_neurons, n_bits=n_bits)
        # Fallback packed kernel for pre-packed (uint64 word) queries from
        # the serving layer when the main backend cannot take them
        # directly; created lazily, shares the version-keyed operand cache.
        self._fallback_packed: PackedBackend | None = None
        self._operand_cache = PreparedOperandCache()

    # ------------------------------------------------------------------ #
    # Weights
    # ------------------------------------------------------------------ #
    @property
    def weights(self) -> TriStateWeights:
        """The tri-state weight matrix (copy-free view wrapper)."""
        return TriStateWeights(self._weights)

    def set_weights(self, weights: TriStateWeights | np.ndarray) -> None:
        """Replace the weight matrix (used for serialisation and hardware sync)."""
        values = weights.values if isinstance(weights, TriStateWeights) else weights
        wrapped = TriStateWeights(np.asarray(values))
        if wrapped.n_neurons != self.n_neurons or wrapped.n_bits != self.n_bits:
            raise ConfigurationError(
                f"weights of shape {wrapped.values.shape} do not match a map with "
                f"{self.n_neurons} neurons of {self.n_bits} bits"
            )
        self._weights = wrapped.values.copy()
        self._bump_weights_version()
        self._operand_cache.invalidate()

    # ------------------------------------------------------------------ #
    # Distance backend
    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> DistanceBackend:
        """The distance backend answering this map's queries."""
        return self._backend

    def set_backend(self, backend: BackendSpec) -> None:
        """Switch distance backends (bit-exact; affects speed only).

        Prepared operands of the previous backend stay cached -- they are
        version-keyed, so switching back reuses them as long as the weights
        have not changed.
        """
        self._backend = resolve_backend(
            backend, n_neurons=self.n_neurons, n_bits=self.n_bits
        )

    def _operands(self, backend: DistanceBackend | None = None):
        """Version-checked prepared operands of ``backend`` (default: current)."""
        backend = backend or self._backend
        return self._operand_cache.operands(
            backend, self._weights, self._weights_version
        )

    def warm_operands(self) -> None:
        """Eagerly derive and cache every operand the serving paths need.

        The registry's hot-swap calls this *before* flipping shards to a
        new map, so the first micro-batch on the new weights scores against
        already-prepared operands instead of paying the ``prepare`` cost
        inside a worker's critical path.  Warms both the configured
        backend and, when that backend cannot take pre-packed ``uint64``
        queries, the packed fallback kernel behind
        :meth:`distance_matrix_packed`.
        """
        self._operands()
        if not hasattr(self._backend, "pairwise_packed"):
            if self._fallback_packed is None:
                self._fallback_packed = PackedBackend()
            self._operands(self._fallback_packed)

    def _note_weights_changed(self, rows: np.ndarray | None) -> None:
        """Bump the weights version; keep warm operands warm when possible."""
        old_version = self._weights_version
        new_version = self._bump_weights_version()
        if rows is None:
            self._operand_cache.invalidate()
        else:
            self._operand_cache.note_rows_changed(
                self._weights, rows, old_version, new_version
            )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def distances(self, x: np.ndarray) -> np.ndarray:
        x = self._validate_input(x)
        return self._backend.batch_one(self._operands(), x)

    def distance_matrix(self, X: np.ndarray, *, validate: bool = True) -> np.ndarray:
        X = validate_binary_matrix(X, self.n_bits, validate=validate)
        return self._backend.pairwise(self._operands(), X)

    def distance_matrix_packed(self, input_words: np.ndarray) -> np.ndarray:
        """Distances for signatures already packed into ``uint64`` words.

        The serving layer packs each signature once at ``submit`` time
        (producing the cache key and these words); this entry point scores
        the packed batch against the cached bit-planes without ever
        re-materialising the unpacked bits -- the zero-copy hot path.
        Runs on the configured backend when it accepts packed words
        (packed, hybrid) and otherwise on a dedicated packed kernel; the
        results are bit-identical either way.
        """
        backend = self._backend
        if not hasattr(backend, "pairwise_packed"):
            if self._fallback_packed is None:
                self._fallback_packed = PackedBackend()
            backend = self._fallback_packed
        return backend.pairwise_packed(self._operands(backend), np.asarray(input_words))

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def _current_radius(self, iteration: int, total_iterations: int) -> int:
        return self.schedule.radius(iteration, total_iterations)

    def _neighbourhood(self, winner: int, radius: int) -> np.ndarray:
        key = (winner, radius)
        cached = self._neighbourhood_cache.get(key)
        if cached is None:
            cached = self.topology.neighbourhood(winner, radius)
            self._neighbourhood_cache[key] = cached
        return cached

    def partial_fit(self, x: np.ndarray, iteration: int, total_iterations: int) -> int:
        """Present one pattern: find the winner and update its neighbourhood."""
        x = self._validate_input(x)
        return self._train_one(x, iteration, total_iterations)

    def _train_one(self, x: np.ndarray, iteration: int, total_iterations: int) -> int:
        # Winner search against the cached backend operands: the per-step
        # weight update below migrates the cache (patching only the touched
        # rows), so consecutive training steps never re-derive the packed
        # planes / GEMM operands from the full weight matrix.
        distances = self._backend.batch_one(self._operands(), x)
        winner = int(np.argmin(distances))
        radius = self.schedule.radius(iteration, total_iterations)
        members = self._neighbourhood(winner, radius)

        winner_row = self._weights[winner : winner + 1]
        if self.update_rule.winner_rule == "full":
            _apply_full_rule(winner_row, x)
        else:
            _apply_commit_rule(winner_row, x)

        neighbours = members[members != winner]
        if neighbours.size:
            neighbour_rows = self._weights[neighbours]
            rule = self.update_rule.neighbour_rule
            if rule == "stochastic":
                grid_distances = np.array(
                    [self.topology.grid_distance(winner, int(j)) for j in neighbours],
                    dtype=np.float64,
                )
                probabilities = self.update_rule.neighbour_strength ** grid_distances
                select = (
                    self._update_rng.random(size=neighbour_rows.shape)
                    < probabilities[:, np.newaxis]
                )
                _apply_full_rule(neighbour_rows, x, select)
            elif rule == "full":
                _apply_full_rule(neighbour_rows, x)
            else:
                _apply_commit_rule(neighbour_rows, x)
            self._weights[neighbours] = neighbour_rows
        self._note_weights_changed(members)
        return winner

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def dont_care_fraction(self) -> float:
        """Fraction of all weight bits currently in the ``#`` state."""
        return self.weights.dont_care_fraction()

    def neuron_usage(self, X: np.ndarray) -> np.ndarray:
        """How many samples of ``X`` each neuron wins (the paper notes that
        large maps leave some neurons unused)."""
        winners = self.winners(X)
        return np.bincount(winners, minlength=self.n_neurons).astype(np.int64)
