"""Neuron topologies and the shrinking neighbourhood schedule.

The FPGA design arranges its 40 neurons in a one-dimensional chain and
updates the winner together with up to four neighbours on either side
(Table III: "Maximum neighbourhood 4 neurons").  Section V-D describes the
schedule: with 100 total training iterations, the neighbourhood radius is 4
for the first quarter, 3 for the second, 2 for the third and 1 for the last.

This module generalises both ideas:

* a :class:`Topology` maps a winning neuron index and a radius to the set of
  neuron indices to update (linear chain, ring, or 2-D grid), and
* a :class:`NeighbourhoodSchedule` maps ``(iteration, total_iterations)`` to
  the radius for that iteration (the paper's stepwise rule, or a constant
  radius for ablations).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError


# --------------------------------------------------------------------------- #
# Topologies
# --------------------------------------------------------------------------- #
class Topology(ABC):
    """Maps neuron indices to neighbourhoods at a given radius."""

    def __init__(self, n_neurons: int):
        if n_neurons <= 0:
            raise ConfigurationError(f"n_neurons must be positive, got {n_neurons}")
        self.n_neurons = int(n_neurons)

    @abstractmethod
    def grid_distance(self, a: int, b: int) -> int:
        """Topological distance between neurons ``a`` and ``b``."""

    def neighbourhood(self, winner: int, radius: int) -> np.ndarray:
        """Indices of all neurons within ``radius`` of ``winner`` (inclusive).

        The winner itself is always included (radius 0 returns only the
        winner).  Results are sorted ascending for determinism.
        """
        self._check_index(winner)
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        members = [
            j for j in range(self.n_neurons) if self.grid_distance(winner, j) <= radius
        ]
        return np.array(sorted(members), dtype=np.int64)

    def distance_matrix(self) -> np.ndarray:
        """Full ``(n, n)`` matrix of topological distances."""
        matrix = np.zeros((self.n_neurons, self.n_neurons), dtype=np.int64)
        for a in range(self.n_neurons):
            for b in range(self.n_neurons):
                matrix[a, b] = self.grid_distance(a, b)
        return matrix

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_neurons:
            raise ConfigurationError(
                f"neuron index {index} out of range for a map with "
                f"{self.n_neurons} neurons"
            )


class LinearTopology(Topology):
    """A one-dimensional chain of neurons (the FPGA arrangement)."""

    def grid_distance(self, a: int, b: int) -> int:
        self._check_index(a)
        self._check_index(b)
        return abs(int(a) - int(b))


class RingTopology(Topology):
    """A one-dimensional ring: neuron 0 and neuron ``n - 1`` are adjacent."""

    def grid_distance(self, a: int, b: int) -> int:
        self._check_index(a)
        self._check_index(b)
        forward = abs(int(a) - int(b))
        return min(forward, self.n_neurons - forward)


class Grid2DTopology(Topology):
    """A rectangular grid with Chebyshev (square) neighbourhoods.

    Provided for experiments beyond the paper's 1-D chain; the classic
    Kohonen map is usually drawn as a 2-D lattice.
    """

    def __init__(self, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise ConfigurationError(
                f"rows and cols must be positive, got rows={rows}, cols={cols}"
            )
        super().__init__(rows * cols)
        self.rows = int(rows)
        self.cols = int(cols)

    def coordinates(self, index: int) -> tuple[int, int]:
        """Return the (row, col) of neuron ``index`` in row-major order."""
        self._check_index(index)
        return divmod(int(index), self.cols)

    def grid_distance(self, a: int, b: int) -> int:
        ra, ca = self.coordinates(a)
        rb, cb = self.coordinates(b)
        return max(abs(ra - rb), abs(ca - cb))


# --------------------------------------------------------------------------- #
# Neighbourhood schedules
# --------------------------------------------------------------------------- #
class NeighbourhoodSchedule(ABC):
    """Maps training progress to a neighbourhood radius."""

    @abstractmethod
    def radius(self, iteration: int, total_iterations: int) -> int:
        """Radius to use during ``iteration`` (0-based) of ``total_iterations``."""

    def _validate(self, iteration: int, total_iterations: int) -> None:
        if total_iterations <= 0:
            raise ConfigurationError(
                f"total_iterations must be positive, got {total_iterations}"
            )
        if not 0 <= iteration < total_iterations:
            raise ConfigurationError(
                f"iteration {iteration} out of range for {total_iterations} iterations"
            )


class StepwiseNeighbourhoodSchedule(NeighbourhoodSchedule):
    """The paper's schedule: radius steps down in equal segments.

    With ``max_radius = 4`` and 100 iterations the radius is 4 for
    iterations 0-24, 3 for 25-49, 2 for 50-74 and 1 for 75-99, exactly as
    section V-D describes.  For an arbitrary ``total_iterations`` the run is
    split into ``max_radius`` equal segments (the final segment absorbs any
    remainder) and the radius decreases by one per segment, never dropping
    below ``min_radius``.
    """

    def __init__(self, max_radius: int = 4, min_radius: int = 1):
        if max_radius < 0:
            raise ConfigurationError(f"max_radius must be non-negative, got {max_radius}")
        if min_radius < 0:
            raise ConfigurationError(f"min_radius must be non-negative, got {min_radius}")
        if min_radius > max_radius:
            raise ConfigurationError(
                f"min_radius ({min_radius}) must not exceed max_radius ({max_radius})"
            )
        self.max_radius = int(max_radius)
        self.min_radius = int(min_radius)

    def radius(self, iteration: int, total_iterations: int) -> int:
        self._validate(iteration, total_iterations)
        steps = self.max_radius - self.min_radius + 1
        segment_length = max(total_iterations // steps, 1)
        segment = min(iteration // segment_length, steps - 1)
        return self.max_radius - segment

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StepwiseNeighbourhoodSchedule(max_radius={self.max_radius}, "
            f"min_radius={self.min_radius})"
        )


class ConstantNeighbourhoodSchedule(NeighbourhoodSchedule):
    """A fixed radius throughout training (ablation alternative)."""

    def __init__(self, radius: int = 1):
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        self._radius = int(radius)

    def radius(self, iteration: int, total_iterations: int) -> int:
        self._validate(iteration, total_iterations)
        return self._radius

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantNeighbourhoodSchedule(radius={self._radius})"
