"""The conventional Kohonen SOM (cSOM) baseline of Table I.

The paper benchmarks the bSOM against "the conventional SOM (cSOM)
originally proposed by Kohonen".  This module implements that baseline: a
map of real-valued prototype vectors trained with the classic update

    w_j(t + 1) = w_j(t) + alpha(t) * h_j(t) * (x - w_j(t))

where ``alpha`` is a decaying learning rate and ``h_j`` is a neighbourhood
factor that shrinks over training.  The cSOM consumes exactly the same
768-bit binary signatures as the bSOM (treating the bits as real values in
{0.0, 1.0}) so the two maps are compared on identical data, as in the
paper's experiment.

The characteristic behaviour Table I demonstrates -- the cSOM keeps
improving as the number of training iterations grows, while the bSOM
plateaus almost immediately -- comes from this learning-rate annealing: with
only a handful of epochs the real-valued prototypes barely move from their
random initialisation, whereas the bSOM's tri-state rules snap to the data
within the first pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.core.som import SelfOrganisingMap, validate_binary_matrix
from repro.core.topology import (
    LinearTopology,
    NeighbourhoodSchedule,
    StepwiseNeighbourhoodSchedule,
    Topology,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LearningRateSchedule:
    """Linearly decaying learning rate ``alpha(t)``.

    ``alpha`` decays from :attr:`initial` to :attr:`final` over the total
    number of training iterations (epochs), which is Kohonen's standard
    recipe and gives the cSOM its strong dependence on the iteration budget.
    """

    initial: float = 0.5
    final: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.initial <= 1.0:
            raise ConfigurationError(
                f"initial learning rate must lie in (0, 1], got {self.initial}"
            )
        if not 0.0 <= self.final <= self.initial:
            raise ConfigurationError(
                f"final learning rate must lie in [0, initial], got {self.final}"
            )

    def rate(self, iteration: int, total_iterations: int) -> float:
        """Learning rate during ``iteration`` (0-based) of ``total_iterations``."""
        if total_iterations <= 0:
            raise ConfigurationError(
                f"total_iterations must be positive, got {total_iterations}"
            )
        if not 0 <= iteration < total_iterations:
            raise ConfigurationError(
                f"iteration {iteration} out of range for {total_iterations} iterations"
            )
        if total_iterations == 1:
            return self.initial
        progress = iteration / (total_iterations - 1)
        return self.initial + (self.final - self.initial) * progress


class KohonenSom(SelfOrganisingMap):
    """Conventional real-valued Kohonen SOM trained on binary signatures.

    Parameters
    ----------
    n_neurons, n_bits:
        Map size and input dimensionality (40 and 768 in the paper).
    topology:
        Neuron arrangement; defaults to the same linear chain as the bSOM so
        the comparison is like-for-like.
    schedule:
        Neighbourhood radius schedule (paper stepwise schedule by default).
    learning_rate:
        Learning-rate annealing schedule.
    neighbour_decay:
        Multiplicative attenuation applied per unit of topological distance
        from the winner (a rectangular-window approximation of the Gaussian
        neighbourhood kernel that keeps the arithmetic comparable with the
        hardware-friendly bSOM).
    seed:
        Seed or generator for the uniform random weight initialisation.
    """

    def __init__(
        self,
        n_neurons: int,
        n_bits: int,
        *,
        topology: Topology | None = None,
        schedule: NeighbourhoodSchedule | None = None,
        learning_rate: LearningRateSchedule | None = None,
        neighbour_decay: float = 0.5,
        seed: SeedLike = None,
    ):
        super().__init__(n_neurons, n_bits)
        self.topology = topology or LinearTopology(n_neurons)
        if self.topology.n_neurons != n_neurons:
            raise ConfigurationError(
                f"topology covers {self.topology.n_neurons} neurons but the map has "
                f"{n_neurons}"
            )
        self.schedule = schedule or StepwiseNeighbourhoodSchedule(max_radius=4)
        self.learning_rate = learning_rate or LearningRateSchedule()
        if not 0.0 < neighbour_decay <= 1.0:
            raise ConfigurationError(
                f"neighbour_decay must lie in (0, 1], got {neighbour_decay}"
            )
        self.neighbour_decay = float(neighbour_decay)
        rng = as_generator(seed)
        self._weights = rng.random(size=(n_neurons, n_bits))
        self._grid_distances = self.topology.distance_matrix()

    # ------------------------------------------------------------------ #
    # Weights
    # ------------------------------------------------------------------ #
    @property
    def weights(self) -> np.ndarray:
        """Copy of the real-valued weight matrix."""
        return self._weights.copy()

    def set_weights(self, weights: np.ndarray) -> None:
        """Replace the weight matrix (used for serialisation)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.n_neurons, self.n_bits):
            raise ConfigurationError(
                f"weights of shape {weights.shape} do not match a map with "
                f"{self.n_neurons} neurons of {self.n_bits} bits"
            )
        self._weights = weights.copy()
        self._bump_weights_version()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def distances(self, x: np.ndarray) -> np.ndarray:
        x = self._validate_input(x).astype(np.float64)
        diff = self._weights - x[np.newaxis, :]
        return np.einsum("ij,ij->i", diff, diff)

    def distance_matrix(self, X: np.ndarray, *, validate: bool = True) -> np.ndarray:
        X = validate_binary_matrix(X, self.n_bits, validate=validate).astype(np.float64)
        # Squared Euclidean distance via the expansion |w|^2 - 2 x.w + |x|^2.
        w_norms = np.einsum("ij,ij->i", self._weights, self._weights)
        x_norms = np.einsum("ij,ij->i", X, X)
        cross = X @ self._weights.T
        distances = x_norms[:, np.newaxis] - 2.0 * cross + w_norms[np.newaxis, :]
        return np.maximum(distances, 0.0)

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def _current_radius(self, iteration: int, total_iterations: int) -> int:
        return self.schedule.radius(iteration, total_iterations)

    def partial_fit(self, x: np.ndarray, iteration: int, total_iterations: int) -> int:
        """Present one pattern and apply the Kohonen update."""
        x = self._validate_input(x)
        return self._train_one(x, iteration, total_iterations)

    def _train_one(self, x: np.ndarray, iteration: int, total_iterations: int) -> int:
        x_real = x.astype(np.float64)
        diff_all = self._weights - x_real[np.newaxis, :]
        distances = np.einsum("ij,ij->i", diff_all, diff_all)
        winner = int(np.argmin(distances))
        radius = self.schedule.radius(iteration, total_iterations)
        alpha = self.learning_rate.rate(iteration, total_iterations)

        grid_distance = self._grid_distances[winner]
        in_window = grid_distance <= radius
        factors = alpha * np.power(self.neighbour_decay, grid_distance[in_window])
        rows = np.flatnonzero(in_window)
        self._weights[rows] += factors[:, np.newaxis] * (
            x_real[np.newaxis, :] - self._weights[rows]
        )
        self._bump_weights_version()
        return winner

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def neuron_usage(self, X: np.ndarray) -> np.ndarray:
        """How many samples of ``X`` each neuron wins."""
        winners = self.winners(X)
        return np.bincount(winners, minlength=self.n_neurons).astype(np.int64)
