"""Unknown-object rejection and novelty detection.

Section III-B: "If the minimum Hamming distance exceeds a threshold value
set during training, the object is classified as unknown."  The paper's
conclusion goes further and proposes using this novelty signal to discover
previously unseen objects and fold them into the map on-line.

This module provides both pieces:

* :func:`calibrate_rejection_threshold` chooses the distance threshold from
  the distribution of best-matching distances seen on the training set, and
* :class:`NoveltyDetector` wraps a trained SOM and flags inputs whose
  best-matching distance exceeds that threshold, keeping a small buffer of
  recent novel signatures for the on-line training extension in
  :mod:`repro.pipeline.online`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

import numpy as np

from repro.core.som import SelfOrganisingMap, validate_binary_matrix
from repro.errors import ConfigurationError


def calibrate_rejection_threshold(
    som: SelfOrganisingMap,
    X: np.ndarray,
    *,
    percentile: float = 99.0,
    margin: float = 1.0,
) -> float:
    """Choose the "unknown" rejection threshold from training distances.

    The threshold is the given ``percentile`` of the best-matching
    distances of the training set, scaled by ``margin``.  With the paper's
    defaults an input is rejected only when it matches the map worse than
    essentially every training signature did.

    Parameters
    ----------
    som:
        Trained SOM (bSOM or cSOM).
    X:
        Training signatures used for calibration.
    percentile:
        Percentile of the best-matching-distance distribution to use.
    margin:
        Multiplicative safety margin applied on top of the percentile.
    """
    if not 0.0 < percentile <= 100.0:
        raise ConfigurationError(
            f"percentile must lie in (0, 100], got {percentile}"
        )
    if margin <= 0.0:
        raise ConfigurationError(f"margin must be positive, got {margin}")
    X = validate_binary_matrix(X, som.n_bits)
    best = som.distance_matrix(X).min(axis=1)
    return float(np.percentile(best, percentile)) * float(margin)


@dataclass
class NoveltyEvent:
    """A signature flagged as novel, with the evidence for the decision."""

    signature: np.ndarray
    best_distance: float
    threshold: float
    winner: int


class NoveltyDetector:
    """Flags inputs that match the trained map poorly.

    Parameters
    ----------
    som:
        Trained SOM used to measure best-matching distances.
    threshold:
        Rejection threshold; inputs with a best-matching distance strictly
        greater than this are novel.  Usually produced by
        :func:`calibrate_rejection_threshold`.
    buffer_size:
        How many recent novel signatures to retain for later on-line
        training (the conclusion's "record the corresponding signatures").
    """

    def __init__(
        self,
        som: SelfOrganisingMap,
        threshold: float,
        *,
        buffer_size: int = 256,
    ):
        if threshold < 0:
            raise ConfigurationError(f"threshold must be non-negative, got {threshold}")
        if buffer_size <= 0:
            raise ConfigurationError(f"buffer_size must be positive, got {buffer_size}")
        self.som = som
        self.threshold = float(threshold)
        self._buffer: Deque[NoveltyEvent] = deque(maxlen=buffer_size)

    def is_novel(self, x: np.ndarray) -> bool:
        """Return ``True`` when ``x`` matches the map worse than the threshold."""
        distances = self.som.distances(x)
        winner = int(np.argmin(distances))
        best = float(distances[winner])
        novel = best > self.threshold
        if novel:
            self._buffer.append(
                NoveltyEvent(
                    signature=np.asarray(x, dtype=np.uint8).copy(),
                    best_distance=best,
                    threshold=self.threshold,
                    winner=winner,
                )
            )
        return novel

    def novel_mask(self, X: np.ndarray) -> np.ndarray:
        """Vectorised novelty decision for every row of ``X``."""
        X = validate_binary_matrix(X, self.som.n_bits)
        best = self.som.distance_matrix(X).min(axis=1)
        return best > self.threshold

    @property
    def buffered_events(self) -> list[NoveltyEvent]:
        """Recently observed novelty events (oldest first)."""
        return list(self._buffer)

    def drain(self) -> list[NoveltyEvent]:
        """Return and clear the buffered novelty events."""
        events = list(self._buffer)
        self._buffer.clear()
        return events
