"""The immutable :class:`ModelSnapshot` -- the unit that ships to serving.

The paper's deployment story is train-offline / serve-from-BlockRAM: what
moves from the training PC to the FPGA is a frozen bundle of weights, node
labels and the rejection threshold.  :class:`ModelSnapshot` is the software
equivalent and the *single currency* of the model lifecycle:

* training produces one (:func:`repro.api.train` + :func:`repro.api.snapshot`),
* persistence writes and reads one (:func:`repro.core.serialization.save_model`
  and :func:`~repro.core.serialization.load_snapshot` -- the ``.npz`` format
  v2 is just a snapshot on disk),
* serving consumes one (:meth:`repro.serve.ModelRegistry.register` /
  :meth:`~repro.serve.ModelRegistry.swap` accept snapshots directly), and
* the on-line learner emits one after each map update
  (:meth:`repro.pipeline.OnlineLearner.snapshot`) so a freshly learned
  object can be hot-swapped into the registry without dropping requests.

A snapshot is deliberately *dead data*: plain arrays and config mappings,
no live SOM, no threads, no operand caches.  Arrays are defensively copied
and marked read-only, so a snapshot taken before an on-line update is not
silently mutated by it -- reflashing semantics, not shared-pointer
semantics.  :meth:`ModelSnapshot.to_model` / :meth:`~ModelSnapshot.to_classifier`
materialise a fresh, independent live model on demand.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from repro.errors import DataError, SnapshotCorruptionError

#: Current on-disk format version written by the v2 codec layer.
SNAPSHOT_FORMAT_VERSION = 2


def _frozen_array(values: np.ndarray) -> np.ndarray:
    frozen = np.array(values, copy=True)
    frozen.setflags(write=False)
    return frozen


@dataclass(frozen=True)
class SnapshotLabelling:
    """Frozen copy of a :class:`~repro.core.labelling.LabelledMap`'s arrays."""

    node_labels: np.ndarray
    win_frequencies: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "node_labels", _frozen_array(self.node_labels))
        object.__setattr__(
            self, "win_frequencies", _frozen_array(self.win_frequencies)
        )
        object.__setattr__(self, "labels", _frozen_array(self.labels))


@dataclass(frozen=True)
class ModelSnapshot:
    """Immutable, self-describing state of a (possibly fitted) model.

    Attributes
    ----------
    kind:
        Registered SOM codec kind (``"BinarySom"`` or ``"KohonenSom"``; new
        map types join by registering a codec with
        :func:`repro.core.serialization.register_som_codec`).
    n_neurons, n_bits:
        Map shape.
    weights:
        Read-only copy of the weight matrix (``int8`` tri-state for the
        bSOM, ``float64`` for the cSOM).
    topology, schedule:
        Codec-encoded topology / neighbourhood-schedule configuration
        (``{"kind": ..., ...}`` mappings).
    config:
        SOM-kind-specific extra configuration (the bSOM's update rule, the
        cSOM's learning-rate schedule and neighbour decay).
    weights_version:
        The map's monotonic weights-version counter at snapshot time;
        restored on :meth:`to_model` so operand-cache bookkeeping and
        telemetry survive a save/load round-trip.  ``None`` for snapshots
        read from format-v1 archives, which did not record it.
    backend:
        Distance-backend name in force at snapshot time (``"packed"``,
        ``"gemm"``, ``"hybrid"``, ...); restored on :meth:`to_model`.
        ``None`` when the map has no pluggable backend (cSOM) or the
        snapshot predates format v2.
    classifier:
        Whether the snapshot carries classifier state (rejection config and
        possibly a labelling) on top of the bare map.
    rejection_percentile, rejection_margin, rejection_threshold:
        The classifier's rejection configuration (meaningful only when
        :attr:`classifier` is true).
    labelling:
        Frozen node-labelling arrays, or ``None`` for an unfitted
        classifier or a bare map.
    format_version:
        On-disk format version this snapshot was read from (or will be
        written as): 2 for snapshots taken in-process, 1 for legacy
        archives.
    metadata:
        Free-form string-keyed annotations carried through save/load
        (provenance, training-data notes, ...).
    """

    kind: str
    n_neurons: int
    n_bits: int
    weights: np.ndarray
    topology: Mapping[str, Any]
    schedule: Mapping[str, Any]
    config: Mapping[str, Any] = field(default_factory=dict)
    weights_version: Optional[int] = None
    backend: Optional[str] = None
    classifier: bool = False
    rejection_percentile: Optional[float] = None
    rejection_margin: float = 1.0
    rejection_threshold: Optional[float] = None
    labelling: Optional[SnapshotLabelling] = None
    format_version: int = SNAPSHOT_FORMAT_VERSION
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", _frozen_array(self.weights))
        object.__setattr__(self, "topology", dict(self.topology))
        object.__setattr__(self, "schedule", dict(self.schedule))
        object.__setattr__(self, "config", dict(self.config))
        object.__setattr__(self, "metadata", dict(self.metadata))
        if self.weights.shape != (self.n_neurons, self.n_bits):
            raise DataError(
                f"snapshot weights of shape {self.weights.shape} do not match "
                f"{self.n_neurons} neurons of {self.n_bits} bits"
            )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether the snapshot can serve (classifier with a labelling)."""
        return self.classifier and self.labelling is not None

    # ------------------------------------------------------------------ #
    # Conversions (delegated to the codec layer in core.serialization)
    # ------------------------------------------------------------------ #
    @classmethod
    def of(cls, model, *, metadata: Optional[Mapping[str, Any]] = None) -> "ModelSnapshot":
        """Snapshot a live model (map or classifier); snapshots pass through."""
        from repro.core.serialization import snapshot_model

        return snapshot_model(model, metadata=metadata)

    def to_model(self):
        """Materialise a fresh live model (classifier if one was captured)."""
        from repro.core.serialization import build_model

        return build_model(self)

    def to_classifier(self):
        """Materialise a fresh :class:`~repro.core.classifier.SomClassifier`.

        Raises :class:`~repro.errors.DataError` when the snapshot holds a
        bare map -- serving requires the classifier state.
        """
        from repro.core.classifier import SomClassifier
        from repro.core.serialization import build_model

        if not self.classifier:
            raise DataError(
                f"snapshot holds a bare {self.kind}, not a classifier; snapshot "
                "the fitted SomClassifier, not just its map"
            )
        model = build_model(self)
        assert isinstance(model, SomClassifier)
        return model

    def save(self, path) -> "Path":  # noqa: F821 - forward ref for docs
        """Write this snapshot to ``path`` as a format-v2 ``.npz`` archive."""
        from repro.core.serialization import save_model

        return save_model(self, path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fitted = "fitted" if self.is_fitted else ("classifier" if self.classifier else "map")
        return (
            f"ModelSnapshot({self.kind}, {self.n_neurons}x{self.n_bits}, {fitted}, "
            f"backend={self.backend!r}, weights_version={self.weights_version}, "
            f"v{self.format_version})"
        )


def weights_crc32(weights: np.ndarray) -> int:
    """CRC32 over a weight matrix's raw bytes (row-major, contiguous)."""
    return zlib.crc32(np.ascontiguousarray(weights).tobytes()) & 0xFFFFFFFF


@dataclass(frozen=True)
class DeltaSnapshot:
    """A model update expressed as touched neuron rows against a base.

    The on-line learner updates only the rows of the winning neuron and its
    neighbours per observation (the same locality the operand cache exploits
    for incremental migration), so between two nearby weights-versions most
    of the matrix is unchanged.  A delta ships just the changed rows plus
    the full (small) labelling and rejection state, and records a CRC32 of
    the *complete* materialised weight matrix: :meth:`apply` patches the
    base, re-derives the checksum and refuses
    (:class:`~repro.errors.SnapshotCorruptionError`) if they disagree, so a
    delta applied to the wrong base, or corrupted in transit, never becomes
    a servable model.

    Deltas are transport, not currency: :meth:`apply` produces an ordinary
    :class:`ModelSnapshot`, which is what the registry and rollout machinery
    consume.
    """

    kind: str
    n_neurons: int
    n_bits: int
    base_weights_version: int
    weights_version: int
    row_indices: np.ndarray
    rows: np.ndarray
    full_weights_crc32: int
    topology: Mapping[str, Any]
    schedule: Mapping[str, Any]
    config: Mapping[str, Any] = field(default_factory=dict)
    backend: Optional[str] = None
    classifier: bool = False
    rejection_percentile: Optional[float] = None
    rejection_margin: float = 1.0
    rejection_threshold: Optional[float] = None
    labelling: Optional[SnapshotLabelling] = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "row_indices", _frozen_array(np.asarray(self.row_indices, dtype=np.int64))
        )
        object.__setattr__(self, "rows", _frozen_array(self.rows))
        object.__setattr__(self, "topology", dict(self.topology))
        object.__setattr__(self, "schedule", dict(self.schedule))
        object.__setattr__(self, "config", dict(self.config))
        object.__setattr__(self, "metadata", dict(self.metadata))
        if self.rows.shape != (len(self.row_indices), self.n_bits):
            raise DataError(
                f"delta rows of shape {self.rows.shape} do not match "
                f"{len(self.row_indices)} touched rows of {self.n_bits} bits"
            )

    @property
    def n_rows(self) -> int:
        """Number of touched neuron rows carried by this delta."""
        return int(len(self.row_indices))

    @classmethod
    def between(
        cls,
        base: ModelSnapshot,
        current: ModelSnapshot,
        *,
        metadata: Optional[Mapping[str, Any]] = None,
    ) -> "DeltaSnapshot":
        """Diff two snapshots of the same map into a row-level delta.

        ``base`` must be an earlier snapshot of the *same* model (same kind
        and shape, with a recorded weights-version); ``current`` supplies
        the rows, labelling and rejection state the delta carries.
        """
        if base.kind != current.kind:
            raise DataError(
                f"cannot delta a {current.kind} against a {base.kind} base"
            )
        if (base.n_neurons, base.n_bits) != (current.n_neurons, current.n_bits):
            raise DataError(
                f"cannot delta a {current.n_neurons}x{current.n_bits} map "
                f"against a {base.n_neurons}x{base.n_bits} base"
            )
        if base.weights_version is None or current.weights_version is None:
            raise DataError(
                "delta snapshots need both endpoints to carry a "
                "weights_version (format-v2 snapshots)"
            )
        changed = np.flatnonzero(
            np.any(np.asarray(base.weights) != np.asarray(current.weights), axis=1)
        )
        return cls(
            kind=current.kind,
            n_neurons=current.n_neurons,
            n_bits=current.n_bits,
            base_weights_version=int(base.weights_version),
            weights_version=int(current.weights_version),
            row_indices=changed,
            rows=np.asarray(current.weights)[changed],
            full_weights_crc32=weights_crc32(current.weights),
            topology=current.topology,
            schedule=current.schedule,
            config=current.config,
            backend=current.backend,
            classifier=current.classifier,
            rejection_percentile=current.rejection_percentile,
            rejection_margin=current.rejection_margin,
            rejection_threshold=current.rejection_threshold,
            labelling=current.labelling,
            metadata=metadata if metadata is not None else current.metadata,
        )

    def apply(self, base: ModelSnapshot) -> ModelSnapshot:
        """Materialise a full :class:`ModelSnapshot` by patching ``base``.

        Validates that ``base`` really is the snapshot this delta was taken
        against (kind, shape, weights-version), patches the touched rows
        into a copy of its weights, and verifies the recorded CRC32 of the
        complete matrix before handing the result back.  Any mismatch
        raises :class:`~repro.errors.SnapshotCorruptionError` -- a delta
        never silently produces a wrong model.
        """
        if base.kind != self.kind:
            raise DataError(
                f"delta for a {self.kind} cannot apply to a {base.kind} base"
            )
        if (base.n_neurons, base.n_bits) != (self.n_neurons, self.n_bits):
            raise DataError(
                f"delta for a {self.n_neurons}x{self.n_bits} map cannot apply "
                f"to a {base.n_neurons}x{base.n_bits} base"
            )
        if base.weights_version != self.base_weights_version:
            raise DataError(
                f"delta was taken against weights_version "
                f"{self.base_weights_version}, but the base snapshot is at "
                f"{base.weights_version}"
            )
        weights = np.array(base.weights, copy=True)
        if self.n_rows:
            weights[np.asarray(self.row_indices)] = np.asarray(self.rows)
        actual = weights_crc32(weights)
        if actual != self.full_weights_crc32:
            raise SnapshotCorruptionError(
                None,
                f"materialised weights CRC32 {actual:#010x} does not match "
                f"the recorded {self.full_weights_crc32:#010x} "
                f"(weights_version {self.weights_version})",
            )
        return ModelSnapshot(
            kind=self.kind,
            n_neurons=self.n_neurons,
            n_bits=self.n_bits,
            weights=weights,
            topology=self.topology,
            schedule=self.schedule,
            config=self.config,
            weights_version=self.weights_version,
            backend=self.backend,
            classifier=self.classifier,
            rejection_percentile=self.rejection_percentile,
            rejection_margin=self.rejection_margin,
            rejection_threshold=self.rejection_threshold,
            labelling=self.labelling,
            metadata=self.metadata,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaSnapshot({self.kind}, {self.n_rows}/{self.n_neurons} rows, "
            f"v{self.base_weights_version}->v{self.weights_version})"
        )
