"""The immutable :class:`ModelSnapshot` -- the unit that ships to serving.

The paper's deployment story is train-offline / serve-from-BlockRAM: what
moves from the training PC to the FPGA is a frozen bundle of weights, node
labels and the rejection threshold.  :class:`ModelSnapshot` is the software
equivalent and the *single currency* of the model lifecycle:

* training produces one (:func:`repro.api.train` + :func:`repro.api.snapshot`),
* persistence writes and reads one (:func:`repro.core.serialization.save_model`
  and :func:`~repro.core.serialization.load_snapshot` -- the ``.npz`` format
  v2 is just a snapshot on disk),
* serving consumes one (:meth:`repro.serve.ModelRegistry.register` /
  :meth:`~repro.serve.ModelRegistry.swap` accept snapshots directly), and
* the on-line learner emits one after each map update
  (:meth:`repro.pipeline.OnlineLearner.snapshot`) so a freshly learned
  object can be hot-swapped into the registry without dropping requests.

A snapshot is deliberately *dead data*: plain arrays and config mappings,
no live SOM, no threads, no operand caches.  Arrays are defensively copied
and marked read-only, so a snapshot taken before an on-line update is not
silently mutated by it -- reflashing semantics, not shared-pointer
semantics.  :meth:`ModelSnapshot.to_model` / :meth:`~ModelSnapshot.to_classifier`
materialise a fresh, independent live model on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from repro.errors import DataError

#: Current on-disk format version written by the v2 codec layer.
SNAPSHOT_FORMAT_VERSION = 2


def _frozen_array(values: np.ndarray) -> np.ndarray:
    frozen = np.array(values, copy=True)
    frozen.setflags(write=False)
    return frozen


@dataclass(frozen=True)
class SnapshotLabelling:
    """Frozen copy of a :class:`~repro.core.labelling.LabelledMap`'s arrays."""

    node_labels: np.ndarray
    win_frequencies: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "node_labels", _frozen_array(self.node_labels))
        object.__setattr__(
            self, "win_frequencies", _frozen_array(self.win_frequencies)
        )
        object.__setattr__(self, "labels", _frozen_array(self.labels))


@dataclass(frozen=True)
class ModelSnapshot:
    """Immutable, self-describing state of a (possibly fitted) model.

    Attributes
    ----------
    kind:
        Registered SOM codec kind (``"BinarySom"`` or ``"KohonenSom"``; new
        map types join by registering a codec with
        :func:`repro.core.serialization.register_som_codec`).
    n_neurons, n_bits:
        Map shape.
    weights:
        Read-only copy of the weight matrix (``int8`` tri-state for the
        bSOM, ``float64`` for the cSOM).
    topology, schedule:
        Codec-encoded topology / neighbourhood-schedule configuration
        (``{"kind": ..., ...}`` mappings).
    config:
        SOM-kind-specific extra configuration (the bSOM's update rule, the
        cSOM's learning-rate schedule and neighbour decay).
    weights_version:
        The map's monotonic weights-version counter at snapshot time;
        restored on :meth:`to_model` so operand-cache bookkeeping and
        telemetry survive a save/load round-trip.  ``None`` for snapshots
        read from format-v1 archives, which did not record it.
    backend:
        Distance-backend name in force at snapshot time (``"packed"``,
        ``"gemm"``, ``"hybrid"``, ...); restored on :meth:`to_model`.
        ``None`` when the map has no pluggable backend (cSOM) or the
        snapshot predates format v2.
    classifier:
        Whether the snapshot carries classifier state (rejection config and
        possibly a labelling) on top of the bare map.
    rejection_percentile, rejection_margin, rejection_threshold:
        The classifier's rejection configuration (meaningful only when
        :attr:`classifier` is true).
    labelling:
        Frozen node-labelling arrays, or ``None`` for an unfitted
        classifier or a bare map.
    format_version:
        On-disk format version this snapshot was read from (or will be
        written as): 2 for snapshots taken in-process, 1 for legacy
        archives.
    metadata:
        Free-form string-keyed annotations carried through save/load
        (provenance, training-data notes, ...).
    """

    kind: str
    n_neurons: int
    n_bits: int
    weights: np.ndarray
    topology: Mapping[str, Any]
    schedule: Mapping[str, Any]
    config: Mapping[str, Any] = field(default_factory=dict)
    weights_version: Optional[int] = None
    backend: Optional[str] = None
    classifier: bool = False
    rejection_percentile: Optional[float] = None
    rejection_margin: float = 1.0
    rejection_threshold: Optional[float] = None
    labelling: Optional[SnapshotLabelling] = None
    format_version: int = SNAPSHOT_FORMAT_VERSION
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", _frozen_array(self.weights))
        object.__setattr__(self, "topology", dict(self.topology))
        object.__setattr__(self, "schedule", dict(self.schedule))
        object.__setattr__(self, "config", dict(self.config))
        object.__setattr__(self, "metadata", dict(self.metadata))
        if self.weights.shape != (self.n_neurons, self.n_bits):
            raise DataError(
                f"snapshot weights of shape {self.weights.shape} do not match "
                f"{self.n_neurons} neurons of {self.n_bits} bits"
            )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether the snapshot can serve (classifier with a labelling)."""
        return self.classifier and self.labelling is not None

    # ------------------------------------------------------------------ #
    # Conversions (delegated to the codec layer in core.serialization)
    # ------------------------------------------------------------------ #
    @classmethod
    def of(cls, model, *, metadata: Optional[Mapping[str, Any]] = None) -> "ModelSnapshot":
        """Snapshot a live model (map or classifier); snapshots pass through."""
        from repro.core.serialization import snapshot_model

        return snapshot_model(model, metadata=metadata)

    def to_model(self):
        """Materialise a fresh live model (classifier if one was captured)."""
        from repro.core.serialization import build_model

        return build_model(self)

    def to_classifier(self):
        """Materialise a fresh :class:`~repro.core.classifier.SomClassifier`.

        Raises :class:`~repro.errors.DataError` when the snapshot holds a
        bare map -- serving requires the classifier state.
        """
        from repro.core.classifier import SomClassifier
        from repro.core.serialization import build_model

        if not self.classifier:
            raise DataError(
                f"snapshot holds a bare {self.kind}, not a classifier; snapshot "
                "the fitted SomClassifier, not just its map"
            )
        model = build_model(self)
        assert isinstance(model, SomClassifier)
        return model

    def save(self, path) -> "Path":  # noqa: F821 - forward ref for docs
        """Write this snapshot to ``path`` as a format-v2 ``.npz`` archive."""
        from repro.core.serialization import save_model

        return save_model(self, path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fitted = "fitted" if self.is_fitted else ("classifier" if self.classifier else "map")
        return (
            f"ModelSnapshot({self.kind}, {self.n_neurons}x{self.n_bits}, {fitted}, "
            f"backend={self.backend!r}, weights_version={self.weights_version}, "
            f"v{self.format_version})"
        )
