"""The abstract Self-Organising Map interface shared by bSOM and cSOM.

Both the tri-state bSOM and the conventional Kohonen SOM expose the same
training and query surface so that the classifier, the node labeller, the
evaluation harness and the FPGA model can treat them interchangeably:

* ``fit(X, epochs)`` -- train on binary data for a number of epochs
  (the paper's "iterations" in Table I are full passes over the training
  set),
* ``partial_fit(x, iteration, total_iterations)`` -- present a single
  pattern (used by the on-line extension and by the hardware model),
* ``distances(x)`` -- the dissimilarity of every neuron to ``x``,
* ``winner(x)`` -- the index of the best-matching unit.

:class:`TrainingHistory` records per-epoch summary statistics so examples
and the EXPERIMENTS write-up can show how quickly each map converges.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.errors import ConfigurationError, DataError, DimensionMismatchError


@dataclass
class TrainingHistory:
    """Per-epoch training statistics collected by :meth:`SelfOrganisingMap.fit`.

    Attributes
    ----------
    quantisation_errors:
        Mean best-matching distance over the training set after each epoch.
    neighbourhood_radii:
        The neighbourhood radius in force during each epoch.
    epochs:
        Number of completed epochs.
    """

    quantisation_errors: list[float] = field(default_factory=list)
    neighbourhood_radii: list[int] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.quantisation_errors)

    def record(self, quantisation_error: float, radius: int) -> None:
        """Append one epoch's statistics."""
        self.quantisation_errors.append(float(quantisation_error))
        self.neighbourhood_radii.append(int(radius))


def validate_binary_matrix(
    X: np.ndarray, n_bits: int | None = None, *, validate: bool = True
) -> np.ndarray:
    """Validate a 2-D binary training matrix and return it as ``int8``.

    Parameters
    ----------
    X:
        ``(n_samples, n_bits)`` array of zeros and ones.
    n_bits:
        When given, the expected number of columns.
    validate:
        When ``False``, skip the O(n log n) zeros-and-ones value check
        (``np.unique``/``np.isin``) and only normalise shape and dtype.
        Trusted internal callers -- ``predict_batch`` re-scoring data it
        already validated, the serve shard scoring signatures validated at
        ``submit`` time -- use this fast path; API boundaries keep the
        default.
    """
    X = np.asarray(X)
    if X.ndim == 1:
        X = X[np.newaxis, :]
    if X.ndim != 2:
        raise DataError(f"training data must be a 2-D matrix, got shape {X.shape}")
    if X.shape[0] == 0 or X.shape[1] == 0:
        raise DataError(f"training data must be non-empty, got shape {X.shape}")
    if validate and not np.all(np.isin(np.unique(X), (0, 1))):
        raise DataError("training data must contain only zeros and ones")
    if n_bits is not None and X.shape[1] != n_bits:
        raise DimensionMismatchError(n_bits, X.shape[1], "training data")
    return X.astype(np.int8)


class SelfOrganisingMap(ABC):
    """Common interface of the bSOM and the cSOM baseline."""

    def __init__(self, n_neurons: int, n_bits: int):
        if n_neurons <= 0:
            raise ConfigurationError(f"n_neurons must be positive, got {n_neurons}")
        if n_bits <= 0:
            raise ConfigurationError(f"n_bits must be positive, got {n_bits}")
        self.n_neurons = int(n_neurons)
        self.n_bits = int(n_bits)
        self.history = TrainingHistory()
        self._trained_epochs = 0
        self._weights_version = 0

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @abstractmethod
    def distances(self, x: np.ndarray) -> np.ndarray:
        """Dissimilarity of every neuron to the binary input ``x``."""

    @abstractmethod
    def distance_matrix(self, X: np.ndarray, *, validate: bool = True) -> np.ndarray:
        """``(n_samples, n_neurons)`` dissimilarities for a whole dataset.

        ``validate=False`` skips the per-call zeros-and-ones scan for
        trusted callers that validated ``X`` at the API boundary already.
        """

    def winner(self, x: np.ndarray) -> int:
        """Index of the best-matching unit for ``x`` (ties -> lowest index).

        The lowest-index tie-break matches the FPGA comparator tree, which
        keeps the earlier neuron when two Hamming distances are equal.
        """
        return int(np.argmin(self.distances(x)))

    def winners(self, X: np.ndarray) -> np.ndarray:
        """Best-matching unit for every row of ``X``."""
        return np.argmin(self.distance_matrix(X), axis=1).astype(np.int64)

    def quantisation_error(self, X: np.ndarray) -> float:
        """Mean distance from each sample to its best-matching unit."""
        distances = self.distance_matrix(X)
        return float(distances.min(axis=1).mean())

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    @abstractmethod
    def partial_fit(self, x: np.ndarray, iteration: int, total_iterations: int) -> int:
        """Present a single pattern; returns the winning neuron index."""

    def fit(
        self,
        X: np.ndarray,
        epochs: int,
        *,
        shuffle: bool = True,
        seed: SeedLike = None,
        record_history: bool = True,
    ) -> "SelfOrganisingMap":
        """Train on ``X`` for ``epochs`` full passes.

        Table I of the paper reports accuracy as a function of this epoch
        count ("iterations"), so the same word is used here: one iteration
        is one presentation of every training pattern.

        Parameters
        ----------
        X:
            ``(n_samples, n_bits)`` binary training matrix.
        epochs:
            Number of full passes over ``X``.
        shuffle:
            Whether to re-shuffle the presentation order each epoch (the
            usual SOM practice; disable for strictly deterministic hardware
            comparison runs).
        seed:
            Seed or generator for the shuffle order.
        record_history:
            Record per-epoch quantisation error (costs one extra pass over
            the data per epoch; disable in tight benchmark loops).
        """
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {epochs}")
        X = validate_binary_matrix(X, self.n_bits)
        rng = as_generator(seed)
        n_samples = X.shape[0]
        for epoch in range(epochs):
            order = rng.permutation(n_samples) if shuffle else np.arange(n_samples)
            for sample_index in order:
                self.partial_fit(X[sample_index], epoch, epochs)
            self._trained_epochs += 1
            if record_history:
                radius = self._current_radius(epoch, epochs)
                self.history.record(self.quantisation_error(X), radius)
        return self

    @abstractmethod
    def _current_radius(self, iteration: int, total_iterations: int) -> int:
        """Neighbourhood radius in force during ``iteration``."""

    @property
    def trained_epochs(self) -> int:
        """Total number of epochs this map has been trained for."""
        return self._trained_epochs

    # ------------------------------------------------------------------ #
    # Weights versioning
    # ------------------------------------------------------------------ #
    @property
    def weights_version(self) -> int:
        """Monotonic counter bumped on every weight update.

        Distance backends cache their prepared operands (packed bit-planes,
        GEMM matrices) keyed on this counter, so the cache invalidates
        exactly when training or ``set_weights`` touches the weights and on
        nothing else.  Mutating the weight storage behind the map's back
        (rather than through ``set_weights``/``partial_fit``/``fit``)
        bypasses the counter and is unsupported.
        """
        return self._weights_version

    def _bump_weights_version(self) -> int:
        self._weights_version += 1
        return self._weights_version

    def _restore_weights_version(self, version: int) -> None:
        """Reset the counter to a persisted value (snapshot/archive restore).

        Only the serialization layer should call this, immediately after
        ``set_weights`` -- the operand caches were invalidated by that call,
        so re-pinning the counter cannot resurrect stale operands.
        """
        self._weights_version = int(version)

    # ------------------------------------------------------------------ #
    # Utilities
    # ------------------------------------------------------------------ #
    def _validate_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim != 1:
            raise DataError(f"input must be a one-dimensional vector, got shape {x.shape}")
        if x.shape[0] != self.n_bits:
            raise DimensionMismatchError(self.n_bits, x.shape[0])
        if not np.all(np.isin(np.unique(x), (0, 1))):
            raise DataError("input vector must contain only zeros and ones")
        return x.astype(np.int8)
