"""The paper's primary contribution: the tri-state binary SOM and baselines.

This subpackage contains everything needed to train and use the binary
Self-Organising Map (bSOM) described in the paper, alongside the
conventional Kohonen SOM (cSOM) it is benchmarked against in Table I:

* :mod:`repro.core.tristate` -- the {0, 1, #} weight representation,
* :mod:`repro.core.distance` -- Hamming distances with don't-care masking,
* :mod:`repro.core.backends` -- pluggable distance kernels (float32 GEMM,
  packed uint64 popcount, naive oracle) with version-invalidated operand
  caching,
* :mod:`repro.core.topology` -- neuron topologies and the shrinking
  neighbourhood schedule of section V-D,
* :mod:`repro.core.bsom` -- the tri-state training rules,
* :mod:`repro.core.csom` -- the real-valued Kohonen baseline,
* :mod:`repro.core.labelling` -- win-frequency node labelling,
* :mod:`repro.core.classifier` -- the identification wrapper with unknown
  rejection (section III-B),
* :mod:`repro.core.novelty` -- rejection-threshold calibration and novelty
  detection (used by the on-line extension),
* :mod:`repro.core.snapshot` -- the immutable :class:`ModelSnapshot`, the
  single currency persistence and serving exchange, and
* :mod:`repro.core.serialization` -- the codec registry turning models into
  snapshots and snapshots into self-describing ``.npz`` archives
  (format v2; v1 archives remain loadable).
"""

from repro.core.tristate import (
    DONT_CARE,
    TriStateWeights,
    random_tristate,
    tristate_from_binary,
)
from repro.core.distance import (
    hamming_distance,
    masked_hamming_distance,
    batch_masked_hamming,
    batch_binary_hamming,
)
from repro.core.backends import (
    DistanceBackend,
    GemmBackend,
    HybridBackend,
    NaiveBackend,
    PackedBackend,
    PreparedOperandCache,
    calibrate_backend,
    resolve_backend,
)
from repro.core.topology import (
    Topology,
    LinearTopology,
    RingTopology,
    Grid2DTopology,
    NeighbourhoodSchedule,
    StepwiseNeighbourhoodSchedule,
    ConstantNeighbourhoodSchedule,
)
from repro.core.som import SelfOrganisingMap, TrainingHistory
from repro.core.bsom import BinarySom, BsomUpdateRule
from repro.core.csom import KohonenSom, LearningRateSchedule
from repro.core.labelling import NodeLabeller, LabelledMap
from repro.core.classifier import (
    SomClassifier,
    PredictionResult,
    BatchPrediction,
    UNKNOWN_LABEL,
)
from repro.core.novelty import NoveltyDetector, calibrate_rejection_threshold
from repro.core.snapshot import DeltaSnapshot, ModelSnapshot, SnapshotLabelling
from repro.core.serialization import (
    LossySerializationWarning,
    build_model,
    load_delta,
    load_model,
    load_snapshot,
    register_schedule_codec,
    register_som_codec,
    register_topology_codec,
    save_delta,
    save_model,
    snapshot_model,
)

__all__ = [
    "DONT_CARE",
    "TriStateWeights",
    "random_tristate",
    "tristate_from_binary",
    "hamming_distance",
    "masked_hamming_distance",
    "batch_masked_hamming",
    "batch_binary_hamming",
    "DistanceBackend",
    "GemmBackend",
    "HybridBackend",
    "PackedBackend",
    "NaiveBackend",
    "PreparedOperandCache",
    "resolve_backend",
    "calibrate_backend",
    "Topology",
    "LinearTopology",
    "RingTopology",
    "Grid2DTopology",
    "NeighbourhoodSchedule",
    "StepwiseNeighbourhoodSchedule",
    "ConstantNeighbourhoodSchedule",
    "SelfOrganisingMap",
    "TrainingHistory",
    "BinarySom",
    "BsomUpdateRule",
    "KohonenSom",
    "LearningRateSchedule",
    "NodeLabeller",
    "LabelledMap",
    "SomClassifier",
    "PredictionResult",
    "BatchPrediction",
    "UNKNOWN_LABEL",
    "NoveltyDetector",
    "calibrate_rejection_threshold",
    "DeltaSnapshot",
    "ModelSnapshot",
    "SnapshotLabelling",
    "LossySerializationWarning",
    "snapshot_model",
    "build_model",
    "save_model",
    "load_model",
    "load_snapshot",
    "save_delta",
    "load_delta",
    "register_som_codec",
    "register_topology_codec",
    "register_schedule_codec",
]
