"""Hamming distances between binary inputs and (tri-state) neuron weights.

Equation 3 of the paper defines the match measure used throughout: the
Hamming distance between the input vector and a neuron, where components in
the ``#`` (don't care) state are skipped.  A neuron whose weight vector is
all ``#`` therefore has distance zero to every input -- a property the paper
calls out explicitly, and one the node-labelling stage has to cope with.

All functions here operate on plain numpy arrays so they can be shared by
the software bSOM, the classifier and the cycle-accurate hardware model
(which recomputes the same quantity bit-serially and is tested against
these reference implementations).
"""

from __future__ import annotations

import numpy as np

from repro.core.tristate import DONT_CARE
from repro.errors import DataError, DimensionMismatchError


def _as_binary_vector(x: np.ndarray, name: str = "input") -> np.ndarray:
    x = np.asarray(x)
    if x.ndim != 1:
        raise DataError(f"{name} must be a one-dimensional vector, got shape {x.shape}")
    if x.size == 0:
        raise DataError(f"{name} must not be empty")
    if not np.all(np.isin(np.unique(x), (0, 1))):
        raise DataError(f"{name} must contain only zeros and ones")
    return x.astype(np.int8)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Plain Hamming distance between two binary vectors of equal length."""
    a = _as_binary_vector(a, "first vector")
    b = _as_binary_vector(b, "second vector")
    if a.shape != b.shape:
        raise DimensionMismatchError(a.size, b.size, "second vector")
    return int(np.count_nonzero(a != b))


def masked_hamming_distance(weights: np.ndarray, x: np.ndarray) -> int:
    """Hamming distance between one tri-state weight vector and a binary input.

    Components where ``weights == DONT_CARE`` are ignored (equation 3).
    """
    weights = np.asarray(weights)
    x = _as_binary_vector(x)
    if weights.ndim != 1:
        raise DataError(
            f"weight vector must be one-dimensional, got shape {weights.shape}"
        )
    if weights.shape != x.shape:
        raise DimensionMismatchError(weights.size, x.size, "input vector")
    care = weights != DONT_CARE
    return int(np.count_nonzero(care & (weights != x)))


def batch_masked_hamming(weights: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Masked Hamming distance from every tri-state neuron to one input.

    This is the software equivalent of the FPGA's parallel Hamming-distance
    computation unit: all neurons are evaluated "at once".

    Parameters
    ----------
    weights:
        ``(n_neurons, n_bits)`` tri-state matrix over ``{0, 1, DONT_CARE}``.
    x:
        Binary input vector of length ``n_bits``.

    Returns
    -------
    numpy.ndarray
        Integer distances of shape ``(n_neurons,)``.
    """
    weights = np.asarray(weights)
    x = _as_binary_vector(x)
    if weights.ndim != 2:
        raise DataError(
            f"weights must be a 2-D (n_neurons, n_bits) matrix, got shape {weights.shape}"
        )
    if weights.shape[1] != x.size:
        raise DimensionMismatchError(weights.shape[1], x.size, "input vector")
    mismatch = (weights != DONT_CARE) & (weights != x[np.newaxis, :])
    return np.count_nonzero(mismatch, axis=1).astype(np.int64)


def batch_binary_hamming(weights: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Hamming distance from every *binary* neuron row to one binary input."""
    weights = np.asarray(weights)
    x = _as_binary_vector(x)
    if weights.ndim != 2:
        raise DataError(
            f"weights must be a 2-D (n_neurons, n_bits) matrix, got shape {weights.shape}"
        )
    if weights.shape[1] != x.size:
        raise DimensionMismatchError(weights.shape[1], x.size, "input vector")
    if weights.size and not np.all(np.isin(np.unique(weights), (0, 1))):
        raise DataError("binary weights must contain only zeros and ones")
    return np.count_nonzero(weights != x[np.newaxis, :], axis=1).astype(np.int64)


def pairwise_masked_hamming(weights: np.ndarray, inputs: np.ndarray) -> np.ndarray:
    """Masked Hamming distances between every neuron and every input.

    Parameters
    ----------
    weights:
        ``(n_neurons, n_bits)`` tri-state matrix.
    inputs:
        ``(n_samples, n_bits)`` binary matrix.

    Returns
    -------
    numpy.ndarray
        ``(n_samples, n_neurons)`` matrix of distances.  Used by the node
        labeller, by evaluation code and by the serving layer's
        micro-batched ``predict_batch`` to score whole batches at once.

    Notes
    -----
    For a binary input ``x`` the masked mismatch of one bit is
    ``(w == 1) & (x == 0)  |  (w == 0) & (x == 1)``, so the whole distance
    matrix decomposes into one matrix product::

        D = rowsum(W1) + X @ (W0 - W1)^T,   W1 = (W == 1), W0 = (W == 0)

    which runs as a single BLAS GEMM instead of materialising the
    ``(n_samples, n_neurons, n_bits)`` comparison tensor.  ``float32`` is
    exact here: every product is 0 or 1 and every sum is bounded by
    ``n_bits``, far inside the 24-bit integer range of ``float32``.
    """
    weights = np.asarray(weights, dtype=np.int8)
    inputs = np.asarray(inputs)
    if weights.ndim != 2 or inputs.ndim != 2:
        raise DataError("weights and inputs must both be 2-D matrices")
    if weights.shape[1] != inputs.shape[1]:
        raise DimensionMismatchError(weights.shape[1], inputs.shape[1], "input matrix")
    if inputs.size and not np.all(np.isin(np.unique(inputs), (0, 1))):
        raise DataError("inputs must contain only zeros and ones")
    ones = (weights == 1).astype(np.float32)
    zeros = (weights == 0).astype(np.float32)
    distances = inputs.astype(np.float32) @ (zeros - ones).T
    distances += ones.sum(axis=1)[np.newaxis, :]
    return np.rint(distances).astype(np.int64)
