"""The packed ``uint64`` popcount distance backend.

This is the software twin of the paper's Hamming-distance unit: the FPGA
stores each tri-state neuron as two BlockRAM bit-planes (a *value* plane
and a *care* plane) and computes the masked distance bit-parallel.  Here
the same two planes are packed 64 bits to a machine word, and the masked
mismatch of 64 components collapses to three word operations::

    mismatch_words = (x_words XOR value_words) AND care_words
    distance       = popcount(mismatch_words)

Don't-care components have ``care == 0`` and drop out of the AND -- as does
the zero padding in the final word, so any ``n_bits`` works, not just
multiples of 64.  A 768-bit signature is 12 words instead of 768 float32
lanes; per the measured grid in ``BENCH_distance.json`` that wins over the
GEMM backend exactly where memory traffic (not BLAS throughput) dominates:
single-signature queries and small batches against large maps -- the
FPGA-shaped workload of classifying one silhouette at a time, and the
bSOM training loop's winner search.

The planes are stored *word-major* (``(n_words, n_neurons)``): NumPy
reduces over the leading axis with contiguous row adds, which makes the
per-word popcount accumulation several times faster than reducing a
trailing 12-element axis.

Popcount uses :func:`numpy.bitwise_count` when available (NumPy >= 2.0)
and otherwise falls back to a 16-bit lookup table over the ``uint16`` view
of the words; both paths are exercised by the parity tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backends.base import DistanceBackend
from repro.core.tristate import DONT_CARE

#: Whether the native vectorised popcount ufunc is available.
HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Number of ones in every 16-bit value -- the fallback popcount table.
_POPCOUNT16 = np.bitwise_count(np.arange(65536, dtype=np.uint16)).astype(
    np.uint8
) if HAS_BITWISE_COUNT else np.array(
    [bin(v).count("1") for v in range(65536)], dtype=np.uint8
)

#: Soft bound on the mismatch temporary in bytes; pairwise chunks the input
#: batch so the ``(n_words, chunk, n_neurons)`` intermediates stay bounded.
_CHUNK_BYTES = 4 << 20


def popcount_words(words: np.ndarray, *, use_native: bool | None = None) -> np.ndarray:
    """Per-word population count of a ``uint64`` array (``uint8`` result).

    Parameters
    ----------
    words:
        Array of ``uint64`` words.
    use_native:
        Force (``True``) or forbid (``False``) :func:`numpy.bitwise_count`;
        ``None`` auto-selects.  The lookup-table path exists both as the
        pre-NumPy-2.0 fallback and as an independent implementation for the
        parity tests.
    """
    if use_native is None:
        use_native = HAS_BITWISE_COUNT
    if use_native:
        return np.bitwise_count(words)
    halves = np.ascontiguousarray(words).view(np.uint16).reshape(*words.shape, 4)
    return _POPCOUNT16[halves].sum(axis=-1, dtype=np.uint8)


def words_per_vector(n_bits: int) -> int:
    """Number of ``uint64`` words needed to hold ``n_bits`` packed bits."""
    return (int(n_bits) + 63) // 64


def pack_bits_to_words(bits: np.ndarray) -> np.ndarray:
    """Pack trusted binary arrays into ``uint64`` words along the last axis.

    ``bits`` may be 1-D (one vector) or 2-D (a batch); the result replaces
    the ``n_bits`` axis with ``ceil(n_bits / 64)`` words.  Bits are packed
    big-endian within each byte (:func:`numpy.packbits` order) and padded
    with zeros, so two equal-length bit vectors are equal exactly when
    their word arrays are -- the serving layer uses the raw word bytes as
    its cache key for this reason.  Inputs are *trusted*: validation
    happens once at the API boundary, not here.
    """
    packed = np.packbits(np.asarray(bits, dtype=np.uint8), axis=-1)
    pad = (-packed.shape[-1]) % 8
    if pad:
        pad_widths = [(0, 0)] * (packed.ndim - 1) + [(0, pad)]
        packed = np.pad(packed, pad_widths)
    packed = np.ascontiguousarray(packed)
    return packed.view(np.uint64)


def unpack_words_to_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits_to_words`: recover the ``uint8`` bits.

    Used by maps without a packed query path (e.g. the real-valued cSOM)
    when they receive pre-packed signatures from the serving layer.
    """
    words = np.atleast_2d(np.asarray(words, dtype=np.uint64))
    bit_bytes = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(bit_bytes, axis=-1)[:, : int(n_bits)]


@dataclass
class PackedOperands:
    """Packed, word-major bit-plane operands for one weights snapshot.

    Attributes
    ----------
    value_words:
        ``(n_words, n_neurons)`` ``uint64`` -- committed bit values
        (zero on don't-care components), one row per packed word index.
    care_words:
        ``(n_words, n_neurons)`` ``uint64`` -- one where the component is
        committed (0 or 1), zero on ``#`` and on the padding bits.
    n_bits:
        Unpacked vector length the planes were built for.
    """

    value_words: np.ndarray
    care_words: np.ndarray
    n_bits: int


class PackedBackend(DistanceBackend):
    """Masked Hamming distances via XOR/AND over packed words + popcount."""

    name = "packed"

    def __init__(self, *, use_native_popcount: bool | None = None):
        self._use_native = use_native_popcount

    def prepare(self, weights: np.ndarray) -> PackedOperands:
        weights = np.asarray(weights, dtype=np.int8)
        care = weights != DONT_CARE
        value = care & (weights == 1)
        return PackedOperands(
            value_words=np.ascontiguousarray(pack_bits_to_words(value).T),
            care_words=np.ascontiguousarray(pack_bits_to_words(care).T),
            n_bits=int(weights.shape[1]),
        )

    # ------------------------------------------------------------------ #
    # Distance kernels
    # ------------------------------------------------------------------ #
    def _popcount(self, words: np.ndarray) -> np.ndarray:
        return popcount_words(words, use_native=self._use_native)

    def _one_packed(self, prepared: PackedOperands, x_words: np.ndarray) -> np.ndarray:
        """Distances of one packed input against every neuron column."""
        mismatch = x_words[:, np.newaxis] ^ prepared.value_words
        mismatch &= prepared.care_words
        return self._popcount(mismatch).sum(axis=0, dtype=np.int64)

    def pairwise(self, prepared: PackedOperands, inputs: np.ndarray) -> np.ndarray:
        return self.pairwise_packed(prepared, pack_bits_to_words(inputs))

    def pairwise_packed(
        self, prepared: PackedOperands, input_words: np.ndarray
    ) -> np.ndarray:
        """Distances for inputs already packed by :func:`pack_bits_to_words`.

        The zero-copy serving path: the service packs each signature once
        (producing both the cache key and these words), so the shard's
        batch never re-packs.
        """
        input_words = np.atleast_2d(input_words)
        n_samples = input_words.shape[0]
        if n_samples == 1:
            return self._one_packed(prepared, input_words[0])[np.newaxis, :]
        n_words, n_neurons = prepared.value_words.shape
        value = prepared.value_words[:, np.newaxis, :]
        care = prepared.care_words[:, np.newaxis, :]
        out = np.empty((n_samples, n_neurons), dtype=np.int64)
        chunk = max(1, _CHUNK_BYTES // max(1, n_words * n_neurons * 8))
        mismatch = np.empty((n_words, min(chunk, n_samples), n_neurons), np.uint64)
        for start in range(0, n_samples, chunk):
            block = input_words[start : start + chunk]
            rows = block.shape[0]
            buffer = mismatch[:, :rows, :]
            np.bitwise_xor(block.T[:, :, np.newaxis], value, out=buffer)
            np.bitwise_and(buffer, care, out=buffer)
            out[start : start + rows] = self._popcount(buffer).sum(
                axis=0, dtype=np.int64
            )
        return out

    def batch_one(self, prepared: PackedOperands, x: np.ndarray) -> np.ndarray:
        return self._one_packed(
            prepared, pack_bits_to_words(np.asarray(x, dtype=np.uint8))
        )

    # ------------------------------------------------------------------ #
    # Incremental refresh
    # ------------------------------------------------------------------ #
    def update_rows(
        self, prepared: PackedOperands, weights: np.ndarray, rows: np.ndarray
    ) -> bool:
        touched = np.asarray(weights[rows], dtype=np.int8)
        care = touched != DONT_CARE
        value = care & (touched == 1)
        prepared.value_words[:, rows] = pack_bits_to_words(value).T
        prepared.care_words[:, rows] = pack_bits_to_words(care).T
        return True
