"""The pluggable distance-backend interface.

A *distance backend* computes masked Hamming distances between tri-state
neuron weights and binary inputs (equation 3 of the paper) in one of several
internal representations.  The split mirrors the paper's hardware design:
the FPGA stores each neuron as two BlockRAM bit-planes and a dedicated
Hamming unit consumes them bit-parallel, while the software reproduction
can choose between a float32 GEMM, a packed-``uint64`` popcount kernel, or
a naive comparison oracle, all producing bit-identical integers.

Every backend exposes the same three-operation surface:

* :meth:`DistanceBackend.prepare` -- derive the backend's internal operands
  from a tri-state weight matrix (GEMM operand matrices, packed bit-planes,
  or a plain reference).  Preparation is the expensive, per-weights step
  that the SOM caches keyed on its weights-version counter.
* :meth:`DistanceBackend.pairwise` -- ``(n_samples, n_neurons)`` distances
  for a whole input batch (the serving layer's hot path).
* :meth:`DistanceBackend.batch_one` -- ``(n_neurons,)`` distances for a
  single input (the training-loop winner search).

Backends that can patch their prepared operands in place after a training
step touched a few neuron rows additionally implement
:meth:`DistanceBackend.update_rows`; the bSOM uses it to keep the cached
operands warm across ``partial_fit`` steps instead of re-deriving them from
scratch (the software analogue of the FPGA updating individual BlockRAM
words).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np


class DistanceBackend(ABC):
    """Abstract masked-Hamming distance kernel over prepared weight operands.

    Concrete backends are stateless: all per-weights state lives in the
    prepared-operand object returned by :meth:`prepare`, so one backend
    instance can serve any number of maps and the SOM-side cache can key
    entries on :attr:`name` alone.
    """

    #: Stable identifier used for selection and operand-cache keys.
    name: str = "abstract"

    @abstractmethod
    def prepare(self, weights: np.ndarray) -> Any:
        """Derive this backend's operands from a tri-state weight matrix.

        Parameters
        ----------
        weights:
            ``(n_neurons, n_bits)`` ``int8`` matrix over ``{0, 1, DONT_CARE}``.
        """

    @abstractmethod
    def pairwise(self, prepared: Any, inputs: np.ndarray) -> np.ndarray:
        """``(n_samples, n_neurons)`` ``int64`` distances for a binary batch.

        ``inputs`` is trusted to be a validated ``(n_samples, n_bits)``
        binary matrix -- validation happens once at the API boundary
        (:func:`repro.core.som.validate_binary_matrix`), not per call.
        """

    @abstractmethod
    def batch_one(self, prepared: Any, x: np.ndarray) -> np.ndarray:
        """``(n_neurons,)`` ``int64`` distances for one binary input vector."""

    def update_rows(self, prepared: Any, weights: np.ndarray, rows: np.ndarray) -> bool:
        """Patch ``prepared`` in place after ``weights[rows]`` changed.

        Returns ``True`` when the operands were refreshed incrementally and
        remain valid for the new weights; ``False`` when this backend cannot
        (the caller must drop the cache entry and re-``prepare``).
        """
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
