"""The naive comparison backend -- retained as the correctness oracle.

This is equation 3 written the obvious way: broadcast the input against
every tri-state weight row, mask the don't-care components, count
mismatches.  It is what :func:`repro.core.distance.batch_masked_hamming`
has always computed and what the cycle-accurate hardware model is tested
against; the GEMM and packed backends must agree with it bit for bit
(asserted by the parity tests and the benchmark suite).

Preparation is zero-copy: the "operands" are the weight matrix itself, so
the prepared object stays valid even while training mutates the weights in
place, and ``update_rows`` is a trivially-successful no-op.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backends.base import DistanceBackend
from repro.core.tristate import DONT_CARE

#: Row-block size for pairwise: bounds the (block, n_neurons, n_bits)
#: comparison tensor without falling back to a per-sample Python loop.
_BLOCK_ROWS = 64


@dataclass
class NaiveOperands:
    """A bare reference to the weight matrix (no derived state)."""

    weights: np.ndarray


class NaiveBackend(DistanceBackend):
    """Direct broadcast-and-count masked Hamming distances."""

    name = "naive"

    def prepare(self, weights: np.ndarray) -> NaiveOperands:
        return NaiveOperands(weights=np.asarray(weights, dtype=np.int8))

    def pairwise(self, prepared: NaiveOperands, inputs: np.ndarray) -> np.ndarray:
        weights = prepared.weights
        inputs = np.asarray(inputs, dtype=np.int8)
        out = np.empty((inputs.shape[0], weights.shape[0]), dtype=np.int64)
        committed = weights != DONT_CARE
        for start in range(0, inputs.shape[0], _BLOCK_ROWS):
            block = inputs[start : start + _BLOCK_ROWS]
            mismatch = committed[np.newaxis, :, :] & (
                weights[np.newaxis, :, :] != block[:, np.newaxis, :]
            )
            out[start : start + block.shape[0]] = np.count_nonzero(mismatch, axis=2)
        return out

    def batch_one(self, prepared: NaiveOperands, x: np.ndarray) -> np.ndarray:
        weights = prepared.weights
        mismatch = (weights != DONT_CARE) & (weights != np.asarray(x)[np.newaxis, :])
        return np.count_nonzero(mismatch, axis=1).astype(np.int64)

    def update_rows(
        self, prepared: NaiveOperands, weights: np.ndarray, rows: np.ndarray
    ) -> bool:
        # The operands alias the live weight matrix; nothing to refresh as
        # long as the reference is the same array object.
        return prepared.weights is weights
