"""The hybrid backend: per-call routing between GEMM and packed kernels.

The measured grid in ``BENCH_distance.json`` shows a division of labour
on a single core: the packed ``uint64`` kernel wins wherever memory
traffic dominates (single-signature queries and small batches against
large maps -- 3.7x at 1024 neurons x batch 1 on the committed grid),
while the float32 GEMM wins large batches, where BLAS register blocking
runs near peak FLOPs.  Neither kernel dominates the whole (map size,
batch size) plane, so ``"auto"`` resolves to this backend: it prepares
both operand sets once (cached and version-invalidated together) and
routes every call by shape.

The routing rule distilled from the grid::

    batch_one          -> packed for maps of >= 256 neurons, else GEMM
    pairwise (n rows)  -> packed when the map has >= 512 neurons and
                          n <= 16, else GEMM
    pairwise_packed    -> same rule; word inputs feed the packed kernel
                          directly, and unpack (a cheap ``unpackbits``)
                          into the GEMM when the batch is GEMM-shaped

The thresholds are deliberately *conservative*: they only claim the
region where packed is at or above parity across all neighbouring
measured shapes.  BLAS also has slow skinny-batch islands (e.g. the
256-neuron x batch-8 cell, where packed measures ~2x faster) that the
rule leaves to the GEMM because the win does not hold at the surrounding
batch sizes (256 x 2 and 256 x 4 measure ~0.7x).  Hosts whose
BLAS/popcount balance differs can bypass the rule with
:func:`repro.core.backends.calibrate_backend` or by pinning ``"gemm"`` /
``"packed"`` explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backends.base import DistanceBackend
from repro.core.backends.gemm import GemmBackend, GemmOperands
from repro.core.backends.packed import (
    PackedBackend,
    PackedOperands,
    unpack_words_to_bits,
)

#: Minimum map size for packed ``batch_one``; below it both kernels sit in
#: the microsecond-overhead regime and the GEMM matvec is ahead (measured
#: ratio 0.8x at 128 neurons, 1.2x at 256, 3.4x at 1024).
_PACKED_ONE_MIN_NEURONS = 256

#: Packed ``pairwise`` region: >= this many neurons and <= this many rows.
_PACKED_PAIRWISE_MIN_NEURONS = 512
_PACKED_PAIRWISE_MAX_ROWS = 16


def _use_packed_pairwise(n_neurons: int, n_rows: int) -> bool:
    return (
        n_neurons >= _PACKED_PAIRWISE_MIN_NEURONS
        and n_rows <= _PACKED_PAIRWISE_MAX_ROWS
    )


@dataclass
class HybridOperands:
    """Both kernels' prepared operands for one weights snapshot."""

    gemm: GemmOperands
    packed: PackedOperands


class HybridBackend(DistanceBackend):
    """Route each call to the measured-fastest kernel for its shape."""

    name = "hybrid"

    def __init__(self):
        self._gemm = GemmBackend()
        self._packed = PackedBackend()

    def prepare(self, weights: np.ndarray) -> HybridOperands:
        return HybridOperands(
            gemm=self._gemm.prepare(weights), packed=self._packed.prepare(weights)
        )

    def pairwise(self, prepared: HybridOperands, inputs: np.ndarray) -> np.ndarray:
        n_neurons = prepared.gemm.diff.shape[0]
        if _use_packed_pairwise(n_neurons, inputs.shape[0]):
            return self._packed.pairwise(prepared.packed, inputs)
        return self._gemm.pairwise(prepared.gemm, inputs)

    def pairwise_packed(
        self, prepared: HybridOperands, input_words: np.ndarray
    ) -> np.ndarray:
        input_words = np.atleast_2d(input_words)
        n_neurons = prepared.gemm.diff.shape[0]
        if _use_packed_pairwise(n_neurons, input_words.shape[0]):
            return self._packed.pairwise_packed(prepared.packed, input_words)
        # GEMM-shaped batch: unpacking the words costs microseconds, the
        # kernel choice costs milliseconds -- route on shape here too.
        bits = unpack_words_to_bits(input_words, prepared.packed.n_bits)
        return self._gemm.pairwise(prepared.gemm, bits)

    def batch_one(self, prepared: HybridOperands, x: np.ndarray) -> np.ndarray:
        if prepared.gemm.diff.shape[0] >= _PACKED_ONE_MIN_NEURONS:
            return self._packed.batch_one(prepared.packed, x)
        return self._gemm.batch_one(prepared.gemm, x)

    def update_rows(
        self, prepared: HybridOperands, weights: np.ndarray, rows: np.ndarray
    ) -> bool:
        gemm_ok = self._gemm.update_rows(prepared.gemm, weights, rows)
        packed_ok = self._packed.update_rows(prepared.packed, weights, rows)
        return gemm_ok and packed_ok
