"""Pluggable masked-Hamming distance backends and operand caching.

The paper's FPGA computes masked Hamming distances bit-parallel over packed
BlockRAM words; the software reproduction chooses between three
interchangeable kernels behind one interface
(:class:`~repro.core.backends.base.DistanceBackend`):

``gemm``
    One float32 BLAS GEMM over ``(W0 - W1)`` operand matrices -- the PR-1
    hot path, strongest when a large batch meets a BLAS with wide SIMD.
``packed``
    Tri-state weights as two ``uint64`` bit-planes (*care*, *value*);
    distances via ``XOR``/``AND`` plus a vectorised popcount
    (:func:`numpy.bitwise_count`, or a 16-bit lookup table on older
    NumPy).  64 components per word instead of one per float32 lane.
``naive``
    The broadcast-and-count oracle every other backend is tested against.
``hybrid``
    Prepares both GEMM and packed operands and routes each call to the
    measured winner for its shape (packed for single queries and small
    batches on large maps, GEMM for large batches).

Selection (:func:`resolve_backend`) is by explicit name, by the
``REPRO_DISTANCE_BACKEND`` environment variable, or ``"auto"``, which
resolves to the hybrid router; its thresholds come from the measured
crossover points recorded in ``BENCH_distance.json`` (see the benchmark
``benchmarks/test_distance_backends.py``).  :func:`calibrate_backend` is
the opt-in empirical variant: it times the candidates on synthetic data of
the actual map shape and picks the winner.

:class:`PreparedOperandCache` holds each backend's prepared operands keyed
on the SOM's weights-version counter, so classifiers, serve shards and the
training loop reuse packed planes / GEMM operands across calls and
invalidate exactly when training touches the weights.
"""

from __future__ import annotations

import os
import time
from typing import Any, Optional, Union

import numpy as np

from repro.core.backends.base import DistanceBackend
from repro.core.backends.gemm import GemmBackend, GemmOperands
from repro.core.backends.hybrid import HybridBackend, HybridOperands
from repro.core.backends.naive import NaiveBackend, NaiveOperands
from repro.core.backends.packed import (
    HAS_BITWISE_COUNT,
    PackedBackend,
    PackedOperands,
    pack_bits_to_words,
    popcount_words,
    unpack_words_to_bits,
    words_per_vector,
)
# ConfigurationError is consumed internally by resolve_backend, not
# re-exported API: callers import it from repro.errors directly.
# repro: allow[export-surface]
from repro.errors import ConfigurationError

#: Environment variable consulted when no backend is specified explicitly.
BACKEND_ENV_VAR = "REPRO_DISTANCE_BACKEND"

#: Registered backend factories by name.
BACKEND_NAMES = ("gemm", "packed", "naive", "hybrid")

BackendSpec = Union[str, DistanceBackend, None]


def make_backend(name: str) -> DistanceBackend:
    """Instantiate a backend by registered name."""
    if name == "gemm":
        return GemmBackend()
    if name == "packed":
        return PackedBackend()
    if name == "naive":
        return NaiveBackend()
    if name == "hybrid":
        return HybridBackend()
    raise ConfigurationError(
        f"unknown distance backend {name!r}; expected one of "
        f"{BACKEND_NAMES + ('auto',)}"
    )


def resolve_backend(
    spec: BackendSpec = None,
    *,
    n_neurons: Optional[int] = None,
    n_bits: Optional[int] = None,
) -> DistanceBackend:
    """Resolve a backend from a name, an instance, the environment, or auto.

    Resolution order: an explicit :class:`DistanceBackend` instance or name
    wins; ``None`` falls back to ``$REPRO_DISTANCE_BACKEND``; an unset
    environment defaults to ``"auto"``, the hybrid router that picks the
    measured-fastest kernel per call (``n_neurons``/``n_bits`` are accepted
    for signature stability; the hybrid routes on the shapes it sees at
    call time).
    """
    if isinstance(spec, DistanceBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR, "") or "auto"
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"backend must be a name or DistanceBackend, got {type(spec).__name__}"
        )
    name = spec.strip().lower()
    if name == "auto":
        return HybridBackend()
    return make_backend(name)


def calibrate_backend(
    n_neurons: int,
    n_bits: int,
    *,
    batch_size: int = 256,
    repeats: int = 3,
    candidates: tuple[str, ...] = ("gemm", "packed"),
    seed: int = 0,
) -> DistanceBackend:
    """Empirically pick the fastest backend for a map shape.

    Times each candidate's ``prepare`` + ``pairwise`` on synthetic
    tri-state weights and binary inputs of the given shape and returns the
    backend with the best wall-clock time.  This is the opt-in empirical
    counterpart of the static routing rule inside
    :class:`~repro.core.backends.hybrid.HybridBackend` (what ``"auto"``
    resolves to), useful on hosts whose BLAS/popcount balance differs from
    the recorded benchmarks.
    """
    rng = np.random.default_rng(seed)
    weights = rng.integers(0, 3, size=(n_neurons, n_bits), dtype=np.int8)
    inputs = rng.integers(0, 2, size=(batch_size, n_bits), dtype=np.int8)
    best_name, best_time = None, float("inf")
    for name in candidates:
        backend = make_backend(name)
        prepared = backend.prepare(weights)
        backend.pairwise(prepared, inputs)  # warm-up
        elapsed = float("inf")
        for _ in range(max(1, int(repeats))):
            start = time.perf_counter()
            backend.pairwise(prepared, inputs)
            elapsed = min(elapsed, time.perf_counter() - start)
        if elapsed < best_time:
            best_name, best_time = name, elapsed
    assert best_name is not None
    return make_backend(best_name)


class PreparedOperandCache:
    """Per-map cache of prepared backend operands, versioned by weights.

    Entries are keyed on the backend name and carry the weights-version
    counter they were prepared at.  :meth:`operands` returns a cached
    entry only when its version matches the map's current one;
    :meth:`note_rows_changed` lets the training loop migrate still-warm
    entries across a weight update by patching just the touched neuron
    rows (backends that cannot are dropped and re-prepared lazily).

    Concurrency contract: single writer, and readers must not overlap an
    in-flight weight update.  This is the same discipline the raw weight
    matrix has always required -- training mutates it in place, so a query
    racing a ``partial_fit`` could already read a torn weight snapshot
    before backends existed; ``update_rows`` patching cached planes in
    place has identical semantics.  The version keys prevent *reuse of
    stale operands across calls* (a query after training always sees
    re-derived or migrated operands); they cannot protect a reader that
    overlaps the update itself.  The stock deployments respect this:
    serve shards share a classifier that is fitted before registration,
    and the on-line learner classifies and trains sequentially in one
    thread.
    """

    def __init__(self) -> None:
        self._entries: dict[str, tuple[int, Any, DistanceBackend]] = {}

    def operands(self, backend: DistanceBackend, weights: np.ndarray, version: int):
        """Prepared operands for ``weights`` at ``version`` (cached or fresh)."""
        entry = self._entries.get(backend.name)
        if entry is not None and entry[0] == version:
            return entry[1]
        operands = backend.prepare(weights)
        self._entries[backend.name] = (version, operands, backend)
        return operands

    def note_rows_changed(
        self,
        weights: np.ndarray,
        rows: np.ndarray,
        old_version: int,
        new_version: int,
    ) -> None:
        """Migrate warm entries across an in-place update of ``weights[rows]``."""
        for name, (version, operands, backend) in list(self._entries.items()):
            if version == old_version and backend.update_rows(operands, weights, rows):
                self._entries[name] = (new_version, operands, backend)
            else:
                del self._entries[name]

    def invalidate(self) -> None:
        """Drop every entry (wholesale weight replacement)."""
        self._entries.clear()

    def cached_versions(self) -> dict[str, int]:
        """Backend name -> version of its cached operands (introspection)."""
        return {name: entry[0] for name, entry in self._entries.items()}

    def __len__(self) -> int:
        return len(self._entries)


__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "BackendSpec",
    "DistanceBackend",
    "GemmBackend",
    "GemmOperands",
    "HAS_BITWISE_COUNT",
    "HybridBackend",
    "HybridOperands",
    "NaiveBackend",
    "NaiveOperands",
    "PackedBackend",
    "PackedOperands",
    "PreparedOperandCache",
    "calibrate_backend",
    "make_backend",
    "pack_bits_to_words",
    "popcount_words",
    "resolve_backend",
    "unpack_words_to_bits",
    "words_per_vector",
]
