"""The float32 GEMM distance backend (the PR-1 hot path, now pluggable).

For a binary input ``x`` the masked mismatch of one bit is
``(w == 1) & (x == 0)  |  (w == 0) & (x == 1)``, so the whole distance
matrix decomposes into one matrix product::

    D = rowsum(W1) + X @ (W0 - W1)^T,   W1 = (W == 1), W0 = (W == 0)

which runs as a single BLAS GEMM instead of materialising the
``(n_samples, n_neurons, n_bits)`` comparison tensor.  ``float32`` is exact
here: every product is 0 or 1 and every sum is bounded by ``n_bits``, far
inside the 24-bit integer range of ``float32``.

The prepared operands are the ``(n_neurons, n_bits)`` difference matrix
``W0 - W1`` and the per-neuron ones count -- exactly the quantities the
ROADMAP flagged for caching with invalidation on weight updates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backends.base import DistanceBackend


@dataclass
class GemmOperands:
    """Prepared GEMM operands for one weights snapshot.

    Attributes
    ----------
    diff:
        ``(n_neurons, n_bits)`` ``float32`` matrix ``(W == 0) - (W == 1)``.
    ones_count:
        ``(n_neurons,)`` ``float32`` count of committed-one bits per neuron.
    """

    diff: np.ndarray
    ones_count: np.ndarray


class GemmBackend(DistanceBackend):
    """Masked Hamming distances via one float32 BLAS GEMM."""

    name = "gemm"

    def prepare(self, weights: np.ndarray) -> GemmOperands:
        weights = np.asarray(weights, dtype=np.int8)
        ones = weights == 1
        diff = (weights == 0).astype(np.float32)
        diff -= ones
        return GemmOperands(
            diff=diff, ones_count=ones.sum(axis=1, dtype=np.int64).astype(np.float32)
        )

    def pairwise(self, prepared: GemmOperands, inputs: np.ndarray) -> np.ndarray:
        distances = inputs.astype(np.float32) @ prepared.diff.T
        distances += prepared.ones_count[np.newaxis, :]
        return np.rint(distances).astype(np.int64)

    def batch_one(self, prepared: GemmOperands, x: np.ndarray) -> np.ndarray:
        distances = prepared.diff @ x.astype(np.float32)
        distances += prepared.ones_count
        return np.rint(distances).astype(np.int64)

    def update_rows(
        self, prepared: GemmOperands, weights: np.ndarray, rows: np.ndarray
    ) -> bool:
        touched = np.asarray(weights[rows], dtype=np.int8)
        ones = touched == 1
        diff = (touched == 0).astype(np.float32)
        diff -= ones
        prepared.diff[rows] = diff
        prepared.ones_count[rows] = ones.sum(axis=1, dtype=np.int64)
        return True
