"""Saving and loading trained maps and classifiers (format v2, codec-based).

Models are stored as ``.npz`` archives with a JSON header describing the
model class and its configuration.  The format stores everything a deployed
identification system needs to resume: the weight matrix (tri-state or
real), the node labels, the win-frequency table, the rejection threshold,
and -- new in format v2 -- the distance-backend selection and the map's
weights-version counter, so a loaded model serves exactly like the one that
was saved.  This mirrors the paper's deployment story: the map is trained
off-line on a PC and the resulting weights/labels are what actually lives
in the FPGA's BlockRAM.

The module is organised around two ideas:

* :class:`~repro.core.snapshot.ModelSnapshot` is the single currency: a
  live model is first frozen into a snapshot (:func:`snapshot_model`), the
  snapshot is what goes to and comes from disk (:func:`load_snapshot`), and
  :func:`build_model` materialises a live model from one.
* Codec registries map model / topology / schedule *classes* to their
  encoded configuration and back (:func:`register_som_codec`,
  :func:`register_topology_codec`, :func:`register_schedule_codec`).  New
  map types, topologies or schedules join the format by registering a
  codec -- no ``isinstance`` chain to extend.

Format-v1 archives (written before the codec layer existed) remain
loadable; they simply come back with ``backend=None`` and
``weights_version=None``.  Schedules without a registered codec are
collapsed to a constant-radius stepwise schedule, with an explicit
:class:`LossySerializationWarning` so the loss is never silent.
"""

from __future__ import annotations

import json
import os
import warnings
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Union

import numpy as np

from repro.core.bsom import BinarySom, BsomUpdateRule
from repro.core.classifier import SomClassifier
from repro.core.csom import KohonenSom, LearningRateSchedule
from repro.core.labelling import LabelledMap
from repro.core.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    DeltaSnapshot,
    ModelSnapshot,
    SnapshotLabelling,
)
from repro.core.som import SelfOrganisingMap
from repro.core.topology import (
    ConstantNeighbourhoodSchedule,
    Grid2DTopology,
    LinearTopology,
    RingTopology,
    StepwiseNeighbourhoodSchedule,
)
from repro.errors import DataError, SnapshotCorruptionError

PathLike = Union[str, Path]

#: Fault-injection site name fired by :func:`load_snapshot` when an armed
#: :class:`repro.serve.resilience.FaultInjector` is passed in.  Declared
#: here (and mirrored as ``repro.serve.resilience.SNAPSHOT_CORRUPT``) so the
#: core layer never imports the serve layer.
SNAPSHOT_CORRUPT_SITE = "snapshot_corrupt"


class LossySerializationWarning(UserWarning):
    """A model component could not round-trip exactly and was approximated.

    Emitted (never silently) when e.g. a custom neighbourhood schedule has
    no registered codec and is collapsed to a constant-radius stepwise
    schedule in the archive.
    """


# --------------------------------------------------------------------------- #
# Component codec registries (topologies and schedules)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ComponentCodec:
    """One class's encode/decode pair in a :class:`CodecRegistry`."""

    kind: str
    cls: type
    encode: Callable[[Any], dict]
    decode: Callable[[Mapping[str, Any]], Any]


class CodecRegistry:
    """Class-keyed codec lookup replacing ``isinstance`` dispatch chains."""

    def __init__(self, what: str):
        self.what = what
        self._by_class: dict[type, ComponentCodec] = {}
        self._by_kind: dict[str, ComponentCodec] = {}

    def register(self, codec: ComponentCodec) -> ComponentCodec:
        self._by_class[codec.cls] = codec
        self._by_kind[codec.kind] = codec
        return codec

    def codec_for(self, obj: Any) -> Optional[ComponentCodec]:
        """Codec registered for ``type(obj)`` (exact class match), if any."""
        return self._by_class.get(type(obj))

    def codec_for_kind(self, kind: str) -> Optional[ComponentCodec]:
        """Codec registered under ``kind``, if any."""
        return self._by_kind.get(kind)

    def kinds(self) -> tuple[str, ...]:
        return tuple(sorted(self._by_kind))

    def encode(self, obj: Any) -> dict:
        codec = self.codec_for(obj)
        if codec is None:
            raise DataError(
                f"cannot serialise {self.what} of type {type(obj).__name__}; "
                f"registered kinds: {', '.join(self.kinds())}"
            )
        config = dict(codec.encode(obj))
        config["kind"] = codec.kind
        return config

    def decode(self, config: Mapping[str, Any]) -> Any:
        kind = config.get("kind")
        codec = self._by_kind.get(kind)
        if codec is None:
            raise DataError(
                f"unknown {self.what} kind {kind!r} in saved model; "
                f"registered kinds: {', '.join(self.kinds())}"
            )
        return codec.decode(config)


TOPOLOGY_CODECS = CodecRegistry("topology")
SCHEDULE_CODECS = CodecRegistry("neighbourhood schedule")


def register_topology_codec(
    kind: str, cls: type, encode: Callable[[Any], dict], decode: Callable[[Mapping], Any]
) -> None:
    """Register a topology class with the archive format."""
    TOPOLOGY_CODECS.register(ComponentCodec(kind, cls, encode, decode))


def register_schedule_codec(
    kind: str, cls: type, encode: Callable[[Any], dict], decode: Callable[[Mapping], Any]
) -> None:
    """Register a neighbourhood-schedule class with the archive format."""
    SCHEDULE_CODECS.register(ComponentCodec(kind, cls, encode, decode))


register_topology_codec(
    "grid2d",
    Grid2DTopology,
    lambda topology: {"rows": topology.rows, "cols": topology.cols},
    lambda config: Grid2DTopology(config["rows"], config["cols"]),
)
register_topology_codec(
    "ring",
    RingTopology,
    lambda topology: {"n_neurons": topology.n_neurons},
    lambda config: RingTopology(config["n_neurons"]),
)
register_topology_codec(
    "linear",
    LinearTopology,
    lambda topology: {"n_neurons": topology.n_neurons},
    lambda config: LinearTopology(config["n_neurons"]),
)

register_schedule_codec(
    "stepwise",
    StepwiseNeighbourhoodSchedule,
    lambda schedule: {
        "max_radius": schedule.max_radius,
        "min_radius": schedule.min_radius,
    },
    lambda config: StepwiseNeighbourhoodSchedule(
        max_radius=config["max_radius"], min_radius=config["min_radius"]
    ),
)
register_schedule_codec(
    "constant",
    ConstantNeighbourhoodSchedule,
    lambda schedule: {"radius": schedule.radius(0, 1)},
    lambda config: ConstantNeighbourhoodSchedule(radius=config["radius"]),
)


def _encode_schedule(schedule) -> dict:
    try:
        return SCHEDULE_CODECS.encode(schedule)
    except DataError:
        pass
    # No codec for this schedule class: collapse to its iteration-0 radius.
    radius = schedule.radius(0, 1)
    warnings.warn(
        f"neighbourhood schedule of type {type(schedule).__name__} has no "
        f"registered codec and was lossily collapsed to a stepwise schedule "
        f"with constant radius {radius}; register_schedule_codec() makes it "
        f"round-trip exactly",
        LossySerializationWarning,
        stacklevel=3,
    )
    return {"kind": "stepwise", "max_radius": radius, "min_radius": radius}


# --------------------------------------------------------------------------- #
# SOM codecs (per-model-class)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SomCodec:
    """Encode/build pair for one :class:`SelfOrganisingMap` subclass.

    ``encode_config`` extracts the kind-specific configuration mapping;
    ``build`` constructs a fresh map from a :class:`ModelSnapshot` (weights
    already validated against the snapshot's shape).
    """

    kind: str
    cls: type
    encode_config: Callable[[Any], dict]
    build: Callable[[ModelSnapshot], SelfOrganisingMap]


SOM_CODECS = CodecRegistry("model")


def register_som_codec(codec: SomCodec) -> None:
    """Register a SOM class with the snapshot/archive layer."""
    SOM_CODECS.register(
        ComponentCodec(codec.kind, codec.cls, codec.encode_config, codec.build)
    )


def _build_bsom(snapshot: ModelSnapshot) -> BinarySom:
    som = BinarySom(
        snapshot.n_neurons,
        snapshot.n_bits,
        topology=TOPOLOGY_CODECS.decode(snapshot.topology),
        schedule=SCHEDULE_CODECS.decode(snapshot.schedule),
        update_rule=BsomUpdateRule(**snapshot.config["update_rule"]),
    )
    som.set_weights(np.asarray(snapshot.weights).astype(np.int8))
    if snapshot.backend is not None:
        som.set_backend(snapshot.backend)
    return som


def _build_csom(snapshot: ModelSnapshot) -> KohonenSom:
    som = KohonenSom(
        snapshot.n_neurons,
        snapshot.n_bits,
        topology=TOPOLOGY_CODECS.decode(snapshot.topology),
        schedule=SCHEDULE_CODECS.decode(snapshot.schedule),
        learning_rate=LearningRateSchedule(**snapshot.config["learning_rate"]),
        neighbour_decay=snapshot.config["neighbour_decay"],
    )
    som.set_weights(np.asarray(snapshot.weights, dtype=np.float64))
    return som


register_som_codec(
    SomCodec(
        kind="BinarySom",
        cls=BinarySom,
        encode_config=lambda som: {
            "update_rule": {
                "winner_rule": som.update_rule.winner_rule,
                "neighbour_rule": som.update_rule.neighbour_rule,
                "neighbour_strength": som.update_rule.neighbour_strength,
            }
        },
        build=_build_bsom,
    )
)
register_som_codec(
    SomCodec(
        kind="KohonenSom",
        cls=KohonenSom,
        encode_config=lambda som: {
            "learning_rate": {
                "initial": som.learning_rate.initial,
                "final": som.learning_rate.final,
            },
            "neighbour_decay": som.neighbour_decay,
        },
        build=_build_csom,
    )
)


# --------------------------------------------------------------------------- #
# Live model <-> snapshot
# --------------------------------------------------------------------------- #
def _backend_name(som) -> Optional[str]:
    backend = getattr(som, "backend", None)
    return getattr(backend, "name", None)


def _raw_weights(som) -> np.ndarray:
    weights = som.weights
    # The bSOM's `weights` property wraps the matrix in TriStateWeights.
    return getattr(weights, "values", weights)


def snapshot_model(
    model: Union[ModelSnapshot, SelfOrganisingMap, SomClassifier],
    *,
    metadata: Optional[Mapping[str, Any]] = None,
) -> ModelSnapshot:
    """Freeze a live map or classifier into a :class:`ModelSnapshot`.

    Snapshots pass through unchanged (with ``metadata`` merged in when
    given), so every lifecycle entry point can accept either form.
    """
    if isinstance(model, ModelSnapshot):
        if not metadata:
            return model
        import dataclasses

        return dataclasses.replace(
            model, metadata={**model.metadata, **dict(metadata)}
        )

    if isinstance(model, SomClassifier):
        inner = model.som
        classifier = True
    else:
        inner = model
        classifier = False

    codec = SOM_CODECS.codec_for(inner)
    if codec is None:
        raise DataError(
            f"cannot serialise model of type {type(inner).__name__}; "
            f"registered kinds: {', '.join(SOM_CODECS.kinds())}"
        )

    labelling = None
    rejection_percentile: Optional[float] = None
    rejection_margin = 1.0
    rejection_threshold: Optional[float] = None
    if classifier:
        rejection_percentile = model.rejection_percentile
        rejection_margin = model.rejection_margin
        rejection_threshold = model.rejection_threshold
        if model.labelling is not None:
            labelling = SnapshotLabelling(
                node_labels=model.labelling.node_labels,
                win_frequencies=model.labelling.win_frequencies,
                labels=model.labelling.labels,
            )

    return ModelSnapshot(
        kind=codec.kind,
        n_neurons=inner.n_neurons,
        n_bits=inner.n_bits,
        weights=_raw_weights(inner),
        topology=TOPOLOGY_CODECS.encode(inner.topology),
        schedule=_encode_schedule(inner.schedule),
        config=dict(codec.encode(inner)),
        weights_version=inner.weights_version,
        backend=_backend_name(inner),
        classifier=classifier,
        rejection_percentile=rejection_percentile,
        rejection_margin=rejection_margin,
        rejection_threshold=rejection_threshold,
        labelling=labelling,
        metadata=dict(metadata or {}),
    )


def build_model(
    snapshot: ModelSnapshot,
) -> Union[BinarySom, KohonenSom, SomClassifier]:
    """Materialise a fresh live model from a snapshot.

    Returns the bare map for map snapshots and a
    :class:`~repro.core.classifier.SomClassifier` (with its labelling and
    rejection state restored) for classifier snapshots.  The map's
    weights-version counter and distance-backend selection are restored
    when the snapshot recorded them (format v2).
    """
    codec = SOM_CODECS.codec_for_kind(snapshot.kind)
    if codec is None:
        raise DataError(
            f"unknown model kind {snapshot.kind!r} in snapshot; "
            f"registered kinds: {', '.join(SOM_CODECS.kinds())}"
        )
    som = codec.decode(snapshot)
    if snapshot.weights_version is not None:
        som._restore_weights_version(snapshot.weights_version)
    if not snapshot.classifier:
        return som
    classifier = SomClassifier(
        som,
        rejection_percentile=snapshot.rejection_percentile,
        rejection_margin=snapshot.rejection_margin,
    )
    classifier.rejection_threshold = snapshot.rejection_threshold
    if snapshot.labelling is not None:
        classifier.labelling = LabelledMap(
            node_labels=snapshot.labelling.node_labels.copy(),
            win_frequencies=snapshot.labelling.win_frequencies.copy(),
            labels=snapshot.labelling.labels.copy(),
        )
    return classifier


# --------------------------------------------------------------------------- #
# Snapshot <-> .npz archive
# --------------------------------------------------------------------------- #
def _array_crc32(values: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(values).tobytes()) & 0xFFFFFFFF


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry so an atomic rename survives a crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on directories
        pass
    finally:
        os.close(fd)


def _atomic_write_npz(path: Path, arrays: Mapping[str, np.ndarray]) -> None:
    """Write an ``.npz`` crash-safely: temp file, fsync, atomic rename.

    A reader racing a writer (or a writer killed mid-save) either sees the
    complete previous archive or the complete new one -- never a truncated
    in-between state under the final name.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_directory(path.parent)


def _with_checksums(
    header: dict, arrays: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Record per-array CRC32s in the header and append the header array."""
    header["checksums"] = {
        name: _array_crc32(values) for name, values in arrays.items()
    }
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    return arrays


def save_model(
    model: Union[ModelSnapshot, BinarySom, KohonenSom, SomClassifier],
    path: PathLike,
) -> Path:
    """Serialise ``model`` to ``path`` (``.npz``, format v2); return the path.

    Accepts a bare map, a (fitted or unfitted) :class:`SomClassifier`, or a
    :class:`ModelSnapshot` -- everything is first frozen into a snapshot,
    which is what the archive actually stores.
    """
    snapshot = snapshot_model(model)
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")

    header: dict[str, Any] = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "kind": snapshot.kind,
        "n_neurons": snapshot.n_neurons,
        "n_bits": snapshot.n_bits,
        "topology": dict(snapshot.topology),
        "schedule": dict(snapshot.schedule),
        "config": dict(snapshot.config),
        "weights_version": snapshot.weights_version,
        "backend": snapshot.backend,
        "classifier": snapshot.classifier,
        "metadata": dict(snapshot.metadata),
    }
    arrays: dict[str, np.ndarray] = {"weights": np.asarray(snapshot.weights)}
    if snapshot.classifier:
        header["rejection"] = {
            "percentile": snapshot.rejection_percentile,
            "margin": snapshot.rejection_margin,
            "threshold": snapshot.rejection_threshold,
        }
        if snapshot.labelling is not None:
            arrays["node_labels"] = np.asarray(snapshot.labelling.node_labels)
            arrays["win_frequencies"] = np.asarray(
                snapshot.labelling.win_frequencies
            )
            arrays["labels"] = np.asarray(snapshot.labelling.labels)

    _atomic_write_npz(path, _with_checksums(header, arrays))
    return path


def save_delta(delta: DeltaSnapshot, path: PathLike) -> Path:
    """Serialise a :class:`~repro.core.snapshot.DeltaSnapshot` to ``path``.

    Delta archives reuse the ``.npz``-with-JSON-header layout (and the same
    crash-safe write and per-array checksums) but are a distinct artefact:
    :func:`load_delta` reads them back, and :func:`load_snapshot` refuses
    them with a pointer here, since a delta cannot serve without its base.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")

    header: dict[str, Any] = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "delta": True,
        "kind": delta.kind,
        "n_neurons": delta.n_neurons,
        "n_bits": delta.n_bits,
        "base_weights_version": delta.base_weights_version,
        "weights_version": delta.weights_version,
        "full_weights_crc32": delta.full_weights_crc32,
        "topology": dict(delta.topology),
        "schedule": dict(delta.schedule),
        "config": dict(delta.config),
        "backend": delta.backend,
        "classifier": delta.classifier,
        "metadata": dict(delta.metadata),
    }
    arrays: dict[str, np.ndarray] = {
        "row_indices": np.asarray(delta.row_indices),
        "rows": np.asarray(delta.rows),
    }
    if delta.classifier:
        header["rejection"] = {
            "percentile": delta.rejection_percentile,
            "margin": delta.rejection_margin,
            "threshold": delta.rejection_threshold,
        }
        if delta.labelling is not None:
            arrays["node_labels"] = np.asarray(delta.labelling.node_labels)
            arrays["win_frequencies"] = np.asarray(
                delta.labelling.win_frequencies
            )
            arrays["labels"] = np.asarray(delta.labelling.labels)

    _atomic_write_npz(path, _with_checksums(header, arrays))
    return path


def _snapshot_from_v2(header: dict, archive) -> ModelSnapshot:
    labelling = None
    if "node_labels" in archive:
        labelling = SnapshotLabelling(
            node_labels=archive["node_labels"],
            win_frequencies=archive["win_frequencies"],
            labels=archive["labels"],
        )
    rejection = header.get("rejection") or {}
    return ModelSnapshot(
        kind=header["kind"],
        n_neurons=header["n_neurons"],
        n_bits=header["n_bits"],
        weights=archive["weights"],
        topology=header["topology"],
        schedule=header["schedule"],
        config=header["config"],
        weights_version=header.get("weights_version"),
        backend=header.get("backend"),
        classifier=bool(header.get("classifier")),
        rejection_percentile=rejection.get("percentile"),
        rejection_margin=rejection.get("margin", 1.0),
        rejection_threshold=rejection.get("threshold"),
        labelling=labelling,
        format_version=2,
        metadata=header.get("metadata") or {},
    )


def _snapshot_from_v1(header: dict, archive) -> ModelSnapshot:
    """Translate a legacy (format-v1) archive into a snapshot.

    v1 recorded neither the backend nor the weights version; both come back
    as ``None`` and :func:`build_model` leaves the loaded map's defaults in
    force.
    """
    kind = header["som"]
    if kind == "BinarySom":
        config = {"update_rule": header["update_rule"]}
    elif kind == "KohonenSom":
        config = {
            "learning_rate": header["learning_rate"],
            "neighbour_decay": header["neighbour_decay"],
        }
    else:
        raise DataError(f"unknown SOM type {kind!r} in saved model")

    labelling = None
    if "node_labels" in archive:
        labelling = SnapshotLabelling(
            node_labels=archive["node_labels"],
            win_frequencies=archive["win_frequencies"],
            labels=archive["labels"],
        )
    classifier = header.get("model") == "SomClassifier"
    return ModelSnapshot(
        kind=kind,
        n_neurons=header["n_neurons"],
        n_bits=header["n_bits"],
        weights=archive["weights"],
        topology=header["topology"],
        schedule=header["schedule"],
        config=config,
        weights_version=None,
        backend=None,
        classifier=classifier,
        rejection_percentile=header.get("rejection_percentile"),
        rejection_margin=header.get("rejection_margin", 1.0),
        rejection_threshold=header.get("rejection_threshold"),
        labelling=labelling,
        format_version=1,
        metadata={},
    )


#: Low-level failures that mean "the archive's bytes are damaged" rather
#: than "the caller made a mistake": truncated or bit-flipped zip members
#: (``BadZipFile``), short reads (``EOFError``/``OSError``), and malformed
#: pickled/JSON payloads surfacing as ``ValueError``.
_CORRUPTION_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    ValueError,
    EOFError,
    OSError,
    KeyError,
)


def _read_archive(path: Path, fault_injector=None) -> tuple[dict, dict[str, np.ndarray]]:
    """Read an archive's header and arrays, verifying recorded checksums.

    Every byte-level failure mode -- unreadable zip, missing members,
    undecodable header, CRC mismatch -- surfaces as
    :class:`~repro.errors.SnapshotCorruptionError`, so callers fail closed
    instead of deserializing garbage.  ``fault_injector`` (an armed
    :class:`repro.serve.resilience.FaultInjector`, duck-typed so the core
    layer stays serve-free) lets the chaos gate exercise this path
    deterministically via the :data:`SNAPSHOT_CORRUPT_SITE` site.
    """
    if fault_injector is not None and fault_injector.fires(SNAPSHOT_CORRUPT_SITE):
        raise SnapshotCorruptionError(
            path, f"injected fault at site {SNAPSHOT_CORRUPT_SITE!r}"
        )
    try:
        with np.load(path, allow_pickle=False) as archive:
            if "header" not in archive.files:
                raise SnapshotCorruptionError(path, "archive has no header member")
            header = json.loads(
                bytes(archive["header"].tobytes()).decode("utf-8")
            )
            arrays = {
                name: archive[name] for name in archive.files if name != "header"
            }
    except SnapshotCorruptionError:
        raise
    except FileNotFoundError:
        raise DataError(f"model file {path} does not exist") from None
    except _CORRUPTION_ERRORS as exc:
        raise SnapshotCorruptionError(
            path, f"unreadable archive ({type(exc).__name__}: {exc})"
        ) from exc

    checksums = header.get("checksums")
    if checksums:
        for name, expected in checksums.items():
            if name not in arrays:
                raise SnapshotCorruptionError(
                    path, f"array {name!r} recorded in header is missing"
                )
            actual = _array_crc32(arrays[name])
            if actual != int(expected):
                raise SnapshotCorruptionError(
                    path,
                    f"array {name!r} CRC32 {actual:#010x} does not match the "
                    f"recorded {int(expected):#010x}",
                )
    return header, arrays


def load_snapshot(path: PathLike, *, fault_injector=None) -> ModelSnapshot:
    """Read a ``.npz`` archive (format v1 or v2) into a :class:`ModelSnapshot`.

    Verifies the per-array CRC32 checksums recorded in the v2 header (older
    archives without checksums still load) and raises
    :class:`~repro.errors.SnapshotCorruptionError` on truncated, bit-flipped
    or otherwise damaged files instead of deserializing garbage.
    """
    path = Path(path)
    if not path.exists():
        raise DataError(f"model file {path} does not exist")
    header, arrays = _read_archive(path, fault_injector=fault_injector)
    if header.get("delta"):
        raise DataError(
            f"{path} holds a delta snapshot, not a full model; read it with "
            "load_delta() and apply() it to its base snapshot"
        )
    version = header.get("format_version")
    if version == 2:
        return _snapshot_from_v2(header, arrays)
    if version == 1:
        return _snapshot_from_v1(header, arrays)
    raise DataError(f"unsupported model format version {version!r}")


def load_delta(path: PathLike, *, fault_injector=None) -> DeltaSnapshot:
    """Read a delta archive written by :func:`save_delta`.

    The same integrity guarantees as :func:`load_snapshot` apply; the
    returned :class:`~repro.core.snapshot.DeltaSnapshot` additionally
    verifies the full-matrix checksum when :meth:`~DeltaSnapshot.apply`-ed
    to its base.
    """
    path = Path(path)
    if not path.exists():
        raise DataError(f"delta file {path} does not exist")
    header, arrays = _read_archive(path, fault_injector=fault_injector)
    if not header.get("delta"):
        raise DataError(
            f"{path} holds a full model archive, not a delta; read it with "
            "load_snapshot()"
        )
    labelling = None
    if "node_labels" in arrays:
        labelling = SnapshotLabelling(
            node_labels=arrays["node_labels"],
            win_frequencies=arrays["win_frequencies"],
            labels=arrays["labels"],
        )
    rejection = header.get("rejection") or {}
    return DeltaSnapshot(
        kind=header["kind"],
        n_neurons=header["n_neurons"],
        n_bits=header["n_bits"],
        base_weights_version=header["base_weights_version"],
        weights_version=header["weights_version"],
        row_indices=arrays["row_indices"],
        rows=arrays["rows"],
        full_weights_crc32=int(header["full_weights_crc32"]),
        topology=header["topology"],
        schedule=header["schedule"],
        config=header["config"],
        backend=header.get("backend"),
        classifier=bool(header.get("classifier")),
        rejection_percentile=rejection.get("percentile"),
        rejection_margin=rejection.get("margin", 1.0),
        rejection_threshold=rejection.get("threshold"),
        labelling=labelling,
        metadata=header.get("metadata") or {},
    )


def load_model(path: PathLike) -> Union[BinarySom, KohonenSom, SomClassifier]:
    """Load a live model previously written by :func:`save_model`.

    Reads both format v2 and legacy v1 archives.  Prefer
    :func:`load_snapshot` (or :func:`repro.api.load`) when the model is
    headed for the serving registry -- the snapshot is the currency
    :meth:`repro.serve.ModelRegistry.register` and
    :meth:`~repro.serve.ModelRegistry.swap` accept directly.
    """
    return build_model(load_snapshot(path))
