"""Saving and loading trained maps and classifiers.

Models are stored as ``.npz`` archives with a small JSON header describing
the model class and its configuration.  The format stores everything a
deployed identification system needs to resume: the weight matrix (tri-state
or real), the node labels, the win-frequency table and the rejection
threshold.  This mirrors the paper's deployment story -- the map is trained
off-line on a PC and the resulting weights/labels are what actually lives in
the FPGA's BlockRAM.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.bsom import BinarySom, BsomUpdateRule
from repro.core.classifier import SomClassifier
from repro.core.csom import KohonenSom, LearningRateSchedule
from repro.core.labelling import LabelledMap
from repro.core.topology import (
    Grid2DTopology,
    LinearTopology,
    RingTopology,
    StepwiseNeighbourhoodSchedule,
)
from repro.errors import DataError

_FORMAT_VERSION = 1

PathLike = Union[str, Path]


def _topology_config(topology) -> dict:
    if isinstance(topology, Grid2DTopology):
        return {"kind": "grid2d", "rows": topology.rows, "cols": topology.cols}
    if isinstance(topology, RingTopology):
        return {"kind": "ring", "n_neurons": topology.n_neurons}
    if isinstance(topology, LinearTopology):
        return {"kind": "linear", "n_neurons": topology.n_neurons}
    raise DataError(f"cannot serialise topology of type {type(topology).__name__}")


def _topology_from_config(config: dict):
    kind = config["kind"]
    if kind == "grid2d":
        return Grid2DTopology(config["rows"], config["cols"])
    if kind == "ring":
        return RingTopology(config["n_neurons"])
    if kind == "linear":
        return LinearTopology(config["n_neurons"])
    raise DataError(f"unknown topology kind {kind!r} in saved model")


def _schedule_config(schedule) -> dict:
    if isinstance(schedule, StepwiseNeighbourhoodSchedule):
        return {
            "kind": "stepwise",
            "max_radius": schedule.max_radius,
            "min_radius": schedule.min_radius,
        }
    # Constant and custom schedules round-trip as stepwise with equal radii.
    radius = schedule.radius(0, 1)
    return {"kind": "stepwise", "max_radius": radius, "min_radius": radius}


def _schedule_from_config(config: dict) -> StepwiseNeighbourhoodSchedule:
    return StepwiseNeighbourhoodSchedule(
        max_radius=config["max_radius"], min_radius=config["min_radius"]
    )


def save_model(model: Union[BinarySom, KohonenSom, SomClassifier], path: PathLike) -> Path:
    """Serialise ``model`` to ``path`` (``.npz``) and return the path written.

    Both bare maps and fitted :class:`SomClassifier` instances are
    supported; classifiers additionally store their labelling and rejection
    threshold.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")

    arrays: dict[str, np.ndarray] = {}
    header: dict = {"format_version": _FORMAT_VERSION}

    if isinstance(model, SomClassifier):
        header["model"] = "SomClassifier"
        header["rejection_percentile"] = model.rejection_percentile
        header["rejection_margin"] = model.rejection_margin
        header["rejection_threshold"] = model.rejection_threshold
        if model.labelling is not None:
            arrays["node_labels"] = model.labelling.node_labels
            arrays["win_frequencies"] = model.labelling.win_frequencies
            arrays["labels"] = model.labelling.labels
        inner = model.som
    else:
        inner = model

    if isinstance(inner, BinarySom):
        header["som"] = "BinarySom"
        header["n_neurons"] = inner.n_neurons
        header["n_bits"] = inner.n_bits
        header["topology"] = _topology_config(inner.topology)
        header["schedule"] = _schedule_config(inner.schedule)
        header["update_rule"] = {
            "winner_rule": inner.update_rule.winner_rule,
            "neighbour_rule": inner.update_rule.neighbour_rule,
            "neighbour_strength": inner.update_rule.neighbour_strength,
        }
        arrays["weights"] = inner.weights.values
    elif isinstance(inner, KohonenSom):
        header["som"] = "KohonenSom"
        header["n_neurons"] = inner.n_neurons
        header["n_bits"] = inner.n_bits
        header["topology"] = _topology_config(inner.topology)
        header["schedule"] = _schedule_config(inner.schedule)
        header["learning_rate"] = {
            "initial": inner.learning_rate.initial,
            "final": inner.learning_rate.final,
        }
        header["neighbour_decay"] = inner.neighbour_decay
        arrays["weights"] = inner.weights
    else:
        raise DataError(f"cannot serialise model of type {type(inner).__name__}")

    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def _rebuild_som(header: dict, weights: np.ndarray):
    topology = _topology_from_config(header["topology"])
    schedule = _schedule_from_config(header["schedule"])
    if header["som"] == "BinarySom":
        som = BinarySom(
            header["n_neurons"],
            header["n_bits"],
            topology=topology,
            schedule=schedule,
            update_rule=BsomUpdateRule(**header["update_rule"]),
        )
        som.set_weights(weights.astype(np.int8))
        return som
    if header["som"] == "KohonenSom":
        som = KohonenSom(
            header["n_neurons"],
            header["n_bits"],
            topology=topology,
            schedule=schedule,
            learning_rate=LearningRateSchedule(**header["learning_rate"]),
            neighbour_decay=header["neighbour_decay"],
        )
        som.set_weights(weights)
        return som
    raise DataError(f"unknown SOM type {header['som']!r} in saved model")


def load_model(path: PathLike) -> Union[BinarySom, KohonenSom, SomClassifier]:
    """Load a model previously written by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"model file {path} does not exist")
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
        if header.get("format_version") != _FORMAT_VERSION:
            raise DataError(
                f"unsupported model format version {header.get('format_version')!r}"
            )
        weights = archive["weights"]
        som = _rebuild_som(header, weights)
        if header.get("model") != "SomClassifier":
            return som
        classifier = SomClassifier(
            som,
            rejection_percentile=header.get("rejection_percentile"),
            rejection_margin=header.get("rejection_margin", 1.0),
        )
        classifier.rejection_threshold = header.get("rejection_threshold")
        if "node_labels" in archive:
            classifier.labelling = LabelledMap(
                node_labels=archive["node_labels"],
                win_frequencies=archive["win_frequencies"],
                labels=archive["labels"],
            )
        return classifier
