"""The identification classifier built on a SOM (section III-B).

The paper turns either SOM into an identifier with three ingredients:

1. unsupervised training of the map on binary signatures,
2. win-frequency node labelling against the labelled training set, and
3. nearest-neuron prediction with an "unknown" rejection threshold.

:class:`SomClassifier` packages those three steps behind a small
scikit-learn-like ``fit`` / ``predict`` / ``score`` surface and works with
any :class:`~repro.core.som.SelfOrganisingMap` implementation -- the
software bSOM, the cSOM baseline, or the cycle-accurate FPGA model (which
exposes the same interface through an adapter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro._rng import SeedLike
from repro.core.backends import BackendSpec, unpack_words_to_bits
from repro.core.labelling import LabelledMap, NodeLabeller
from repro.core.novelty import calibrate_rejection_threshold
from repro.core.som import SelfOrganisingMap, validate_binary_matrix
from repro.errors import ConfigurationError, DataError, NotFittedError

#: Label returned for inputs rejected as unknown.
UNKNOWN_LABEL: int = -1


@dataclass(frozen=True)
class PredictionResult:
    """Full prediction detail for a single signature.

    Attributes
    ----------
    label:
        Predicted object label, or :data:`UNKNOWN_LABEL` when rejected.
    neuron:
        Index of the winning (minimum-distance) neuron.
    distance:
        The winning distance (Hamming for the bSOM, squared Euclidean for
        the cSOM).
    rejected:
        Whether the rejection threshold fired.
    """

    label: int
    neuron: int
    distance: float
    rejected: bool


@dataclass(frozen=True)
class BatchPrediction:
    """Vectorised prediction detail for a whole batch of signatures.

    The column-oriented counterpart of :class:`PredictionResult`: every
    attribute is an array with one entry per input row.  The serving layer
    (:mod:`repro.serve`) works exclusively in this representation so that a
    micro-batch of requests costs one ``pairwise_masked_hamming`` call
    instead of one SOM query per request.

    Attributes
    ----------
    labels:
        Predicted labels; :data:`UNKNOWN_LABEL` where rejected.
    neurons:
        Winning (minimum-distance) neuron index per input.
    distances:
        The winning distance per input.
    rejected:
        Boolean rejection mask (threshold fired or the winner is
        unlabelled).
    confidences:
        Win-frequency purity of each winning neuron's label (0 where
        rejected); see :meth:`LabelledMap.confidences_for`.
    """

    labels: np.ndarray
    neurons: np.ndarray
    distances: np.ndarray
    rejected: np.ndarray
    confidences: np.ndarray

    def __len__(self) -> int:
        return int(self.labels.size)

    def __getitem__(self, index: int) -> PredictionResult:
        """Row view as the single-sample :class:`PredictionResult`."""
        return PredictionResult(
            label=int(self.labels[index]),
            neuron=int(self.neurons[index]),
            distance=float(self.distances[index]),
            rejected=bool(self.rejected[index]),
        )

    def __iter__(self) -> Iterator[PredictionResult]:
        return (self[i] for i in range(len(self)))


class SomClassifier:
    """Appearance-based object identifier backed by a SOM.

    Parameters
    ----------
    som:
        An (untrained) SOM instance -- typically
        :class:`~repro.core.bsom.BinarySom` with 40 neurons and 768-bit
        vectors, or :class:`~repro.core.csom.KohonenSom` for the baseline.
    rejection_percentile:
        Percentile of training best-matching distances used to calibrate
        the "unknown" rejection threshold; ``None`` disables rejection
        entirely (every input is assigned some known label, matching the
        accuracy protocol of Table I where all test objects are known).
    rejection_margin:
        Multiplicative margin on the calibrated threshold.
    backend:
        Distance-backend selection forwarded to the SOM when it supports
        pluggable backends (the bSOM does; the real-valued cSOM computes
        Euclidean distances and ignores it).  A name (``"gemm"``,
        ``"packed"``, ``"naive"``, ``"auto"``) or a
        :class:`~repro.core.backends.DistanceBackend` instance.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import BinarySom, SomClassifier
    >>> rng = np.random.default_rng(0)
    >>> X = np.vstack([rng.integers(0, 2, (50, 32)) for _ in range(2)])
    >>> y = np.repeat([0, 1], 50)
    >>> clf = SomClassifier(BinarySom(8, 32, seed=1))
    >>> clf = clf.fit(X, y, epochs=5)
    >>> clf.predict(X).shape
    (100,)
    """

    def __init__(
        self,
        som: SelfOrganisingMap,
        *,
        rejection_percentile: Optional[float] = None,
        rejection_margin: float = 1.0,
        backend: BackendSpec = None,
    ):
        if rejection_percentile is not None and not 0.0 < rejection_percentile <= 100.0:
            raise ConfigurationError(
                f"rejection_percentile must lie in (0, 100], got {rejection_percentile}"
            )
        self.som = som
        if backend is not None and hasattr(som, "set_backend"):
            som.set_backend(backend)
        self.rejection_percentile = rejection_percentile
        self.rejection_margin = float(rejection_margin)
        self.labelling: Optional[LabelledMap] = None
        self.rejection_threshold: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 50,
        shuffle: bool = True,
        seed: SeedLike = None,
        record_history: bool = False,
    ) -> "SomClassifier":
        """Train the map, label its neurons and calibrate rejection.

        Parameters
        ----------
        X, y:
            Binary training signatures and their integer identity labels.
        epochs:
            Training iterations (full passes), the independent variable of
            Table I.
        shuffle, seed:
            Presentation-order control forwarded to the SOM.
        record_history:
            Record per-epoch quantisation error on the underlying map.
        """
        X = validate_binary_matrix(X, self.som.n_bits)
        y = np.asarray(y)
        if y.shape[0] != X.shape[0]:
            raise DataError(
                f"got {X.shape[0]} signatures but {y.shape[0]} labels"
            )
        self.som.fit(
            X, epochs, shuffle=shuffle, seed=seed, record_history=record_history
        )
        self.labelling = NodeLabeller().label(self.som, X, y)
        if self.rejection_percentile is not None:
            self.rejection_threshold = calibrate_rejection_threshold(
                self.som,
                X,
                percentile=self.rejection_percentile,
                margin=self.rejection_margin,
            )
        return self

    def label_nodes(self, X: np.ndarray, y: np.ndarray) -> LabelledMap:
        """(Re-)label the neurons without retraining the map.

        Used by the FPGA workflow, where training may have happened on the
        hardware model and only the labelling is (re)run in software.
        """
        self.labelling = NodeLabeller().label(self.som, X, y)
        return self.labelling

    def _require_fitted(self) -> LabelledMap:
        if self.labelling is None:
            raise NotFittedError(
                "this classifier has not been fitted; call fit() or label_nodes() first"
            )
        return self.labelling

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict_one(self, x: np.ndarray) -> PredictionResult:
        """Classify a single signature, returning full detail."""
        labelling = self._require_fitted()
        distances = self.som.distances(x)
        neuron = int(np.argmin(distances))
        distance = float(distances[neuron])
        rejected = (
            self.rejection_threshold is not None and distance > self.rejection_threshold
        )
        node_label = labelling.label_of(neuron)
        if rejected or node_label is None:
            label = UNKNOWN_LABEL
            rejected = True
        else:
            label = int(node_label)
        return PredictionResult(
            label=label, neuron=neuron, distance=distance, rejected=rejected
        )

    def predict_batch(self, X: np.ndarray, *, validate: bool = True) -> BatchPrediction:
        """Classify every row of ``X`` in one vectorised pass.

        A single ``distance_matrix`` call (one distance-backend kernel
        invocation for the bSOM) scores the whole batch against every
        neuron at once; the winner, rejection and label lookups are then
        pure array operations.  Semantically identical to calling
        :meth:`predict_one` per row -- the regression tests assert exact
        agreement, including rejection and unlabelled-winner cases.

        ``validate=False`` skips the zeros-and-ones scan of ``X`` for
        trusted internal callers (the serve shard validates each signature
        once at ``submit`` time); shape and width are still checked.
        """
        self._require_fitted()
        X = validate_binary_matrix(X, self.som.n_bits, validate=validate)
        # X is validated (or trusted) here, so the map may skip re-scanning.
        distances = self.som.distance_matrix(X, validate=False)
        return self._predict_from_distances(distances)

    def predict_batch_packed(self, input_words: np.ndarray) -> BatchPrediction:
        """Classify signatures already packed into ``uint64`` words.

        The zero-copy serving path: the service packs each signature once
        (deriving both the cache key and these words), the shard stacks the
        word rows, and the bSOM scores them straight against its cached
        packed bit-planes -- no per-request re-packing or re-validation.
        Maps without a packed query path (the cSOM) transparently unpack
        and fall back to :meth:`predict_batch`.
        """
        self._require_fitted()
        input_words = np.atleast_2d(np.asarray(input_words, dtype=np.uint64))
        packed_query = getattr(self.som, "distance_matrix_packed", None)
        if packed_query is None:
            return self.predict_batch(
                unpack_words_to_bits(input_words, self.som.n_bits), validate=False
            )
        return self._predict_from_distances(packed_query(input_words))

    def _predict_from_distances(self, distances: np.ndarray) -> BatchPrediction:
        """Winner/rejection/label lookups shared by the batch entry points."""
        labelling = self._require_fitted()
        neurons = np.argmin(distances, axis=1).astype(np.int64)
        best = distances[np.arange(distances.shape[0]), neurons].astype(np.float64)
        labels = labelling.labels_for(neurons)
        rejected = labels == LabelledMap.UNLABELLED
        if self.rejection_threshold is not None:
            rejected |= best > self.rejection_threshold
        labels = np.where(rejected, UNKNOWN_LABEL, labels).astype(np.int64)
        confidences = labelling.confidences_for(neurons)
        confidences = np.where(rejected, 0.0, confidences)
        return BatchPrediction(
            labels=labels,
            neurons=neurons,
            distances=best,
            rejected=rejected,
            confidences=confidences,
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels for every row of ``X`` (vectorised)."""
        return self.predict_batch(X).labels

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Recognition accuracy on a labelled test set (the paper's metric)."""
        y = np.asarray(y)
        predictions = self.predict(X)
        if predictions.shape != y.shape:
            raise DataError(
                f"got {predictions.shape[0]} predictions but {y.shape[0]} labels"
            )
        return float(np.mean(predictions == y))
