"""Tri-state weight vectors: the {0, 1, #} representation of bSOM neurons.

Each bSOM neuron holds a *tri-state* prototype vector the same length as the
binary input signature.  A component may be ``0``, ``1`` or ``#`` ("don't
care"); the ``#`` state matches either input value and contributes nothing
to the Hamming distance (section III of the paper).

Internally a tri-state vector is stored as an ``int8`` numpy array with the
sentinel value :data:`DONT_CARE` (2) for ``#``.  The FPGA BlockRAM model in
:mod:`repro.hw` stores the same information as two bit-planes (a value plane
and a care plane); :meth:`TriStateWeights.to_bitplanes` /
:meth:`TriStateWeights.from_bitplanes` convert between the two layouts and
are exercised by the hardware tests to keep software and hardware views
consistent.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.errors import ConfigurationError, DataError

#: Sentinel value used for the ``#`` (don't care) state in int8 arrays.
DONT_CARE: int = 2

_VALID_STATES = (0, 1, DONT_CARE)


def _validate_states(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values)
    if values.size and not np.all(np.isin(np.unique(values), _VALID_STATES)):
        raise DataError(
            f"tri-state values must be 0, 1 or {DONT_CARE} (don't care); got "
            f"values {sorted(np.unique(values).tolist())}"
        )
    return values.astype(np.int8)


class TriStateWeights:
    """A matrix of tri-state neuron weight vectors.

    Parameters
    ----------
    values:
        ``(n_neurons, n_bits)`` array over ``{0, 1, DONT_CARE}``.  A single
        vector may be passed and is promoted to a one-row matrix.

    Notes
    -----
    The class is a thin, validated wrapper over the underlying ``int8``
    array; the training loops in :mod:`repro.core.bsom` operate on
    :attr:`values` directly for speed, while tests and the hardware model
    use the richer helpers here.
    """

    def __init__(self, values: np.ndarray):
        values = _validate_states(values)
        if values.ndim == 1:
            values = values[np.newaxis, :]
        if values.ndim != 2:
            raise DataError(
                f"tri-state weights must be a 1-D or 2-D array, got shape {values.shape}"
            )
        if values.shape[1] == 0:
            raise DataError("tri-state weight vectors must have at least one bit")
        self.values = values

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_neurons(self) -> int:
        """Number of neuron rows."""
        return int(self.values.shape[0])

    @property
    def n_bits(self) -> int:
        """Length of each weight vector."""
        return int(self.values.shape[1])

    def dont_care_counts(self) -> np.ndarray:
        """Number of ``#`` components in each neuron."""
        return np.count_nonzero(self.values == DONT_CARE, axis=1)

    def dont_care_fraction(self) -> float:
        """Overall fraction of components in the ``#`` state."""
        return float(np.count_nonzero(self.values == DONT_CARE)) / float(
            self.values.size
        )

    def committed_bits(self) -> np.ndarray:
        """Boolean mask of components that are 0 or 1 (not ``#``)."""
        return self.values != DONT_CARE

    def copy(self) -> "TriStateWeights":
        """Deep copy of the weights."""
        return TriStateWeights(self.values.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TriStateWeights):
            return NotImplemented
        return self.values.shape == other.values.shape and bool(
            np.all(self.values == other.values)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TriStateWeights(n_neurons={self.n_neurons}, n_bits={self.n_bits}, "
            f"dont_care_fraction={self.dont_care_fraction():.3f})"
        )

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_bitplanes(self) -> tuple[np.ndarray, np.ndarray]:
        """Split into (value plane, care plane) -- the hardware layout.

        ``care == 0`` marks a ``#`` component; wherever ``care == 1`` the
        value plane holds the committed bit.  The value plane is zero for
        don't-care components so the two planes round-trip exactly.
        """
        care = (self.values != DONT_CARE).astype(np.uint8)
        value = np.where(care == 1, self.values, 0).astype(np.uint8)
        return value, care

    @classmethod
    def from_bitplanes(cls, value: np.ndarray, care: np.ndarray) -> "TriStateWeights":
        """Rebuild tri-state weights from (value, care) bit-planes."""
        value = np.asarray(value)
        care = np.asarray(care)
        if value.shape != care.shape:
            raise DataError(
                f"value plane shape {value.shape} does not match care plane shape "
                f"{care.shape}"
            )
        if value.size and not np.all(np.isin(np.unique(value), (0, 1))):
            raise DataError("value plane must be binary")
        if care.size and not np.all(np.isin(np.unique(care), (0, 1))):
            raise DataError("care plane must be binary")
        states = np.where(care == 1, value, DONT_CARE)
        return cls(states.astype(np.int8))

    def to_strings(self) -> list[str]:
        """Render each neuron as a string of ``0``/``1``/``#`` characters."""
        table = {0: "0", 1: "1", DONT_CARE: "#"}
        return ["".join(table[int(v)] for v in row) for row in self.values]

    @classmethod
    def from_strings(cls, rows: Iterable[str]) -> "TriStateWeights":
        """Parse neurons from strings of ``0``/``1``/``#`` characters."""
        table = {"0": 0, "1": 1, "#": DONT_CARE}
        parsed: list[list[int]] = []
        for row in rows:
            try:
                parsed.append([table[ch] for ch in row])
            except KeyError as exc:  # pragma: no cover - defensive
                raise DataError(f"invalid tri-state character {exc.args[0]!r}") from exc
        if not parsed:
            raise DataError("at least one neuron string is required")
        lengths = {len(p) for p in parsed}
        if len(lengths) != 1:
            raise DataError("all neuron strings must have the same length")
        return cls(np.array(parsed, dtype=np.int8))


def tristate_from_binary(bits: np.ndarray) -> TriStateWeights:
    """Promote plain binary vectors to tri-state weights (no ``#`` states)."""
    bits = np.asarray(bits)
    if bits.size and not np.all(np.isin(np.unique(bits), (0, 1))):
        raise DataError("binary weights must contain only zeros and ones")
    return TriStateWeights(bits.astype(np.int8))


def random_tristate(
    n_neurons: int,
    n_bits: int,
    *,
    dont_care_probability: float = 0.0,
    seed: SeedLike = None,
) -> TriStateWeights:
    """Randomly initialise tri-state weights.

    The FPGA design (section V-A) initialises every neuron with random
    binary values; ``dont_care_probability`` optionally seeds a fraction of
    components in the ``#`` state, which is useful for experiments on how
    quickly the map commits.

    Parameters
    ----------
    n_neurons, n_bits:
        Shape of the weight matrix.
    dont_care_probability:
        Probability that a component starts as ``#`` rather than a random
        bit (paper default 0).
    seed:
        Seed or generator for reproducibility.
    """
    if n_neurons <= 0:
        raise ConfigurationError(f"n_neurons must be positive, got {n_neurons}")
    if n_bits <= 0:
        raise ConfigurationError(f"n_bits must be positive, got {n_bits}")
    if not 0.0 <= dont_care_probability <= 1.0:
        raise ConfigurationError(
            f"dont_care_probability must lie in [0, 1], got {dont_care_probability}"
        )
    rng = as_generator(seed)
    values = rng.integers(0, 2, size=(n_neurons, n_bits), dtype=np.int8)
    if dont_care_probability > 0.0:
        mask = rng.random(size=values.shape) < dont_care_probability
        values = np.where(mask, np.int8(DONT_CARE), values)
    return TriStateWeights(values)
