"""Win-frequency node labelling (section III-B of the paper).

After the SOM has been trained (unsupervised), the labelled training set is
replayed through the map once more.  For every neuron a *win frequency*
table is accumulated: how many times each object label was associated with
that neuron in a winner-takes-all competition.  Each neuron is then assigned
the label it won most often; neurons that never win any training pattern
stay unlabelled (the paper observes such unused neurons for large maps).

The labeller is deliberately independent of the SOM class -- it only needs a
``winners(X)`` function -- so the same code labels the software bSOM, the
cSOM baseline and the cycle-accurate FPGA model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.som import SelfOrganisingMap, validate_binary_matrix
from repro.errors import ConfigurationError, DataError, NotFittedError


@dataclass
class LabelledMap:
    """The result of node labelling.

    Attributes
    ----------
    node_labels:
        Array of length ``n_neurons``; entry ``j`` is the label assigned to
        neuron ``j`` or ``-1`` when the neuron never won a training pattern.
    win_frequencies:
        ``(n_neurons, n_labels)`` count matrix: how often each label was
        associated with each neuron during labelling.
    labels:
        Sorted array of the distinct training labels, giving the meaning of
        the columns of :attr:`win_frequencies`.
    """

    node_labels: np.ndarray
    win_frequencies: np.ndarray
    labels: np.ndarray

    UNLABELLED: int = field(default=-1, init=False, repr=False)

    # Lazily computed per-neuron confidence vector; win_frequencies is
    # fixed once labelling has run, so computing it once per map (instead
    # of once per predict_batch call) is safe.
    _confidence_cache: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_neurons(self) -> int:
        return int(self.node_labels.size)

    @property
    def unused_neurons(self) -> np.ndarray:
        """Indices of neurons that never won a training pattern."""
        return np.flatnonzero(self.node_labels == self.UNLABELLED)

    @property
    def used_neuron_count(self) -> int:
        """Number of neurons that won at least one training pattern."""
        return int(np.count_nonzero(self.node_labels != self.UNLABELLED))

    def label_of(self, neuron: int) -> Optional[int]:
        """Label of ``neuron``, or ``None`` if it is unlabelled."""
        if not 0 <= neuron < self.n_neurons:
            raise ConfigurationError(
                f"neuron index {neuron} out of range for {self.n_neurons} neurons"
            )
        value = int(self.node_labels[neuron])
        return None if value == self.UNLABELLED else value

    def _validate_winners(self, winners: np.ndarray) -> np.ndarray:
        winners = np.asarray(winners)
        if winners.ndim != 1:
            raise DataError(
                f"winners must be a one-dimensional index vector, got shape {winners.shape}"
            )
        if not np.issubdtype(winners.dtype, np.integer):
            raise DataError("winners must be integer neuron indices")
        if winners.size and (winners.min() < 0 or winners.max() >= self.n_neurons):
            raise ConfigurationError(
                f"winner indices must lie in [0, {self.n_neurons}), got range "
                f"[{winners.min()}, {winners.max()}]"
            )
        return winners.astype(np.int64)

    def labels_for(self, winners: np.ndarray) -> np.ndarray:
        """Node labels for a whole vector of winning-neuron indices.

        The vectorised counterpart of :meth:`label_of`: entry ``i`` is the
        label of neuron ``winners[i]``, or :attr:`UNLABELLED` when that
        neuron never won a training pattern.  This is the lookup the batch
        classification path uses, one ``take`` instead of a Python loop.
        """
        winners = self._validate_winners(winners)
        return self.node_labels[winners].astype(np.int64)

    def confidences_for(self, winners: np.ndarray) -> np.ndarray:
        """Win-frequency confidence of each winning neuron's label.

        For neuron ``j`` the confidence is the fraction of labelling-time
        wins that agree with its assigned label (its per-neuron purity);
        unlabelled neurons score 0.  The serving layer reports this next to
        every batched prediction so downstream consumers can threshold on
        evidence quality without re-deriving it from the win table.
        """
        winners = self._validate_winners(winners)
        if self._confidence_cache is None:
            totals = self.win_frequencies.sum(axis=1).astype(np.float64)
            best = self.win_frequencies.max(axis=1).astype(np.float64)
            self._confidence_cache = np.divide(
                best, totals, out=np.zeros_like(best), where=totals > 0
            )
        return self._confidence_cache[winners]

    def purity(self) -> float:
        """Fraction of labelling-time wins that agree with the node label.

        A purity of 1.0 means every neuron only ever won patterns of a
        single class; lower values indicate neurons shared between classes,
        which is the main source of identification errors.
        """
        total = self.win_frequencies.sum()
        if total == 0:
            return 0.0
        best = self.win_frequencies.max(axis=1).sum()
        return float(best) / float(total)


class NodeLabeller:
    """Assigns object labels to SOM neurons by win frequency."""

    def __init__(self) -> None:
        self._result: Optional[LabelledMap] = None

    def label(
        self,
        som: SelfOrganisingMap,
        X: np.ndarray,
        y: np.ndarray,
    ) -> LabelledMap:
        """Label every neuron of ``som`` from the labelled set ``(X, y)``.

        Parameters
        ----------
        som:
            A trained map exposing ``winners`` and ``n_neurons``.
        X:
            ``(n_samples, n_bits)`` binary training signatures.
        y:
            Integer labels, one per row of ``X`` (the paper uses the nine
            manually assigned person identities).
        """
        X = validate_binary_matrix(X, som.n_bits)
        y = np.asarray(y)
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise DataError(
                f"labels must be a vector with one entry per sample; got shape "
                f"{y.shape} for {X.shape[0]} samples"
            )
        if not np.issubdtype(y.dtype, np.integer):
            raise DataError("labels must be integers")

        labels = np.unique(y)
        label_to_column = {int(label): column for column, label in enumerate(labels)}
        win_frequencies = np.zeros((som.n_neurons, labels.size), dtype=np.int64)

        winners = som.winners(X)
        for winner, label in zip(winners, y):
            win_frequencies[int(winner), label_to_column[int(label)]] += 1

        node_labels = np.full(som.n_neurons, LabelledMap.UNLABELLED, dtype=np.int64)
        used = win_frequencies.sum(axis=1) > 0
        best_columns = np.argmax(win_frequencies, axis=1)
        node_labels[used] = labels[best_columns[used]]

        self._result = LabelledMap(
            node_labels=node_labels,
            win_frequencies=win_frequencies,
            labels=labels,
        )
        return self._result

    @property
    def result(self) -> LabelledMap:
        """The most recent labelling (raises if :meth:`label` was never called)."""
        if self._result is None:
            raise NotFittedError("NodeLabeller.label() has not been called yet")
        return self._result
