"""Two-pass connected-components labelling with union-find.

Connected components analysis is the second stage of the paper's upstream
pipeline (and the subject of the authors' companion FPGA paper [2]).  This
is the classic two-pass algorithm:

1. scan the mask in raster order, assigning provisional labels and
   recording equivalences between neighbouring labels in a union-find
   structure, then
2. re-scan, replacing each provisional label with the representative of its
   equivalence class and compacting labels to ``1..n``.

Both 4- and 8-connectivity are supported; the default is 8-connectivity,
which is what silhouette extraction wants (diagonal limb pixels stay part
of the same person).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError


class UnionFind:
    """Disjoint-set forest with path compression and union by rank."""

    def __init__(self) -> None:
        self._parent: list[int] = []
        self._rank: list[int] = []

    def make_set(self) -> int:
        """Create a new singleton set and return its element id."""
        element = len(self._parent)
        self._parent.append(element)
        self._rank.append(0)
        return element

    def find(self, element: int) -> int:
        """Return the representative of ``element``'s set (with compression)."""
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets containing ``a`` and ``b``; return the new root."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return root_a
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        return root_a

    def __len__(self) -> int:
        return len(self._parent)


class ConnectedComponentLabeller:
    """Two-pass connected-components labeller.

    Parameters
    ----------
    connectivity:
        4 or 8 (default 8).
    """

    def __init__(self, connectivity: int = 8):
        if connectivity not in (4, 8):
            raise ConfigurationError(
                f"connectivity must be 4 or 8, got {connectivity}"
            )
        self.connectivity = connectivity

    def label(self, mask: np.ndarray) -> tuple[np.ndarray, int]:
        """Label ``mask``; returns ``(labels, count)``.

        ``labels`` has the same shape as ``mask`` with background pixels 0
        and each connected foreground region numbered ``1..count``.
        """
        mask = np.asarray(mask)
        if mask.ndim != 2:
            raise DataError(f"expected a 2-D binary mask, got shape {mask.shape}")
        mask = mask.astype(bool)
        height, width = mask.shape
        provisional = np.zeros((height, width), dtype=np.int64)
        uf = UnionFind()
        uf.make_set()  # element 0 is the background label

        if self.connectivity == 4:
            neighbour_offsets = ((-1, 0), (0, -1))
        else:
            neighbour_offsets = ((-1, -1), (-1, 0), (-1, 1), (0, -1))

        for row in range(height):
            for col in range(width):
                if not mask[row, col]:
                    continue
                neighbour_labels = []
                for dy, dx in neighbour_offsets:
                    nr, nc = row + dy, col + dx
                    if 0 <= nr < height and 0 <= nc < width and provisional[nr, nc]:
                        neighbour_labels.append(provisional[nr, nc])
                if not neighbour_labels:
                    provisional[row, col] = uf.make_set()
                else:
                    smallest = min(neighbour_labels)
                    provisional[row, col] = smallest
                    for other in neighbour_labels:
                        uf.union(smallest, other)

        # Second pass: map provisional labels to compact 1..n representatives.
        representative_of: dict[int, int] = {}
        labels = np.zeros((height, width), dtype=np.int64)
        next_label = 0
        rows, cols = np.nonzero(provisional)
        for row, col in zip(rows, cols):
            root = uf.find(int(provisional[row, col]))
            label = representative_of.get(root)
            if label is None:
                next_label += 1
                label = next_label
                representative_of[root] = label
            labels[row, col] = label
        return labels, next_label


def label_components(mask: np.ndarray, connectivity: int = 8) -> tuple[np.ndarray, int]:
    """Convenience wrapper: label ``mask`` and return ``(labels, count)``."""
    return ConnectedComponentLabeller(connectivity).label(mask)
