"""Connected-components labelling: vectorized run-based CCL + two-pass oracle.

Connected components analysis is the second stage of the paper's upstream
pipeline (and the subject of the authors' companion FPGA paper [2]).  Two
implementations live here:

* the **vectorized run-based labeller** (the default): row runs are derived
  with shifted-array comparisons, inter-row run adjacencies become edges of
  an equivalence graph, the graph is resolved with an array union-find
  (min-label propagation with pointer jumping), and the final label image
  is produced by one ``np.take`` through the run-id image.  Everything is
  O(pixels) numpy work with no per-pixel Python, which is what makes the
  320x240 many-camera serving path feasible (see ``BENCH_vision.json``);
* the classic **two-pass oracle** with a scalar union-find, retained
  verbatim from the seed implementation.  It is bit-exact with the
  vectorized path (identical label images, not merely equal up to
  renumbering -- both number components by the raster position of their
  first pixel) and is what the property tests and ``scripts/check_vision.py``
  verify against.

Both 4- and 8-connectivity are supported; the default is 8-connectivity,
which is what silhouette extraction wants (diagonal limb pixels stay part
of the same person).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError


class UnionFind:
    """Disjoint-set forest with path compression and union by rank."""

    def __init__(self) -> None:
        self._parent: list[int] = []
        self._rank: list[int] = []

    def make_set(self) -> int:
        """Create a new singleton set and return its element id."""
        element = len(self._parent)
        self._parent.append(element)
        self._rank.append(0)
        return element

    def find(self, element: int) -> int:
        """Return the representative of ``element``'s set (with compression)."""
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets containing ``a`` and ``b``; return the new root."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return root_a
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        return root_a

    def __len__(self) -> int:
        return len(self._parent)


def _validate_mask(mask: np.ndarray) -> np.ndarray:
    mask = np.asarray(mask)
    if mask.ndim != 2:
        raise DataError(f"expected a 2-D binary mask, got shape {mask.shape}")
    if mask.dtype != np.bool_:
        mask = mask.astype(bool)
    return mask


def _resolve_equivalences(
    n_runs: int, edge_a: np.ndarray, edge_b: np.ndarray
) -> np.ndarray:
    """Array union-find: representative (minimum member id) per run.

    ``edge_a``/``edge_b`` are equal-length arrays of equivalent run ids
    (1-based).  Resolution alternates edge relaxation (each endpoint pulls
    the smaller label across the edge with ``np.minimum.at``) with pointer
    jumping (``labels = labels[labels]`` until a fixed point), which
    converges in O(log n) rounds even on adversarial spirals.
    """
    labels = np.arange(n_runs + 1, dtype=np.int64)
    if edge_a.size == 0:
        return labels
    while True:
        before = labels.copy()
        smaller = np.minimum(labels[edge_a], labels[edge_b])
        np.minimum.at(labels, edge_a, smaller)
        np.minimum.at(labels, edge_b, smaller)
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels = jumped
        if np.array_equal(labels, before):
            return labels


def _label_vectorized(mask: np.ndarray, connectivity: int) -> tuple[np.ndarray, int]:
    """Run-based two-pass CCL in pure array operations."""
    height, width = mask.shape
    # A False separator column keeps runs from spanning row boundaries when
    # the mask is flattened.
    separated = np.zeros((height, width + 1), dtype=bool)
    separated[:, :width] = mask
    flat = separated.ravel()
    if flat.size == 0:
        return np.zeros((height, width), dtype=np.int64), 0
    run_starts = np.empty_like(flat)
    run_starts[0] = flat[0]
    np.greater(flat[1:], flat[:-1], out=run_starts[1:])
    n_runs = int(np.count_nonzero(run_starts))
    if n_runs == 0:
        return np.zeros((height, width), dtype=np.int64), 0

    # Per-pixel run ids (1..n_runs, background 0) from one cumulative sum;
    # int32 halves the memory traffic of every pass below and comfortably
    # holds any frame's run count.
    run_image = np.cumsum(run_starts, dtype=np.int32)
    np.multiply(run_image, flat, out=run_image)
    run_image = run_image.reshape(height, width + 1)[:, :width]

    # Inter-row adjacencies: a run in row r is equivalent to every run its
    # pixels touch in row r-1 (directly above for 4-connectivity, plus the
    # two diagonals for 8-connectivity).
    upper, lower = run_image[:-1], run_image[1:]
    aligned_pairs = [(lower, upper)]
    if connectivity == 8 and width > 1:
        aligned_pairs.append((lower[:, 1:], upper[:, :-1]))
        aligned_pairs.append((lower[:, :-1], upper[:, 1:]))
    edges_a, edges_b = [], []
    for a, b in aligned_pairs:
        both = np.logical_and(a, b)
        pair_a = a[both]
        pair_b = b[both]
        # Two runs that overlap along k columns emit k consecutive copies
        # of the same pair; dropping consecutive duplicates removes almost
        # all redundancy in O(E) without a sort (the union-find tolerates
        # the rare repeats that survive).
        if pair_a.size > 1:
            keep = np.empty(pair_a.size, dtype=bool)
            keep[0] = True
            np.logical_or(
                pair_a[1:] != pair_a[:-1], pair_b[1:] != pair_b[:-1], out=keep[1:]
            )
            pair_a = pair_a[keep]
            pair_b = pair_b[keep]
        edges_a.append(pair_a)
        edges_b.append(pair_b)
    edge_a = np.concatenate(edges_a)
    edge_b = np.concatenate(edges_b)

    roots = _resolve_equivalences(n_runs, edge_a, edge_b)

    # Compact representatives to 1..count.  Run ids increase in raster
    # order and each component's root is its minimum run id, so ascending
    # roots reproduce the oracle's first-pixel-in-raster-order numbering.
    component_roots = np.unique(roots[1:])
    remap = np.zeros(n_runs + 1, dtype=np.int64)
    remap[component_roots] = np.arange(1, component_roots.size + 1)
    run_to_label = remap[roots]
    return run_to_label.take(run_image), int(component_roots.size)


class ConnectedComponentLabeller:
    """Connected-components labeller.

    Parameters
    ----------
    connectivity:
        4 or 8 (default 8).
    vectorized:
        ``True`` (default) runs the run-based array implementation;
        ``False`` runs the retained two-pass scalar oracle.  Both produce
        identical label images.
    """

    def __init__(self, connectivity: int = 8, vectorized: bool = True):
        if connectivity not in (4, 8):
            raise ConfigurationError(
                f"connectivity must be 4 or 8, got {connectivity}"
            )
        self.connectivity = connectivity
        self.vectorized = bool(vectorized)

    def label(self, mask: np.ndarray) -> tuple[np.ndarray, int]:
        """Label ``mask``; returns ``(labels, count)``.

        ``labels`` has the same shape as ``mask`` with background pixels 0
        and each connected foreground region numbered ``1..count``.
        """
        mask = _validate_mask(mask)
        if self.vectorized:
            return _label_vectorized(mask, self.connectivity)
        return self.label_oracle(mask)

    def label_oracle(self, mask: np.ndarray) -> tuple[np.ndarray, int]:
        """The seed's per-pixel two-pass labeller (parity oracle)."""
        mask = _validate_mask(mask)
        height, width = mask.shape
        provisional = np.zeros((height, width), dtype=np.int64)
        uf = UnionFind()
        uf.make_set()  # element 0 is the background label

        if self.connectivity == 4:
            neighbour_offsets = ((-1, 0), (0, -1))
        else:
            neighbour_offsets = ((-1, -1), (-1, 0), (-1, 1), (0, -1))

        for row in range(height):
            for col in range(width):
                if not mask[row, col]:
                    continue
                neighbour_labels = []
                for dy, dx in neighbour_offsets:
                    nr, nc = row + dy, col + dx
                    if 0 <= nr < height and 0 <= nc < width and provisional[nr, nc]:
                        neighbour_labels.append(provisional[nr, nc])
                if not neighbour_labels:
                    provisional[row, col] = uf.make_set()
                else:
                    smallest = min(neighbour_labels)
                    provisional[row, col] = smallest
                    for other in neighbour_labels:
                        uf.union(smallest, other)

        # Second pass: map provisional labels to compact 1..n representatives.
        representative_of: dict[int, int] = {}
        labels = np.zeros((height, width), dtype=np.int64)
        next_label = 0
        rows, cols = np.nonzero(provisional)
        for row, col in zip(rows, cols):
            root = uf.find(int(provisional[row, col]))
            label = representative_of.get(root)
            if label is None:
                next_label += 1
                label = next_label
                representative_of[root] = label
            labels[row, col] = label
        return labels, next_label


def label_components(
    mask: np.ndarray, connectivity: int = 8, *, vectorized: bool = True
) -> tuple[np.ndarray, int]:
    """Convenience wrapper: label ``mask`` and return ``(labels, count)``."""
    return ConnectedComponentLabeller(connectivity, vectorized=vectorized).label(mask)
