"""Frame-to-frame object tracker.

The paper's identification stage sits on top of "a robust tracking
algorithm capable of extracting the colour histogram for every moving
object" (Owens et al.).  This module implements a compact, model-free
tracker in that spirit:

* blobs in each new frame are matched to existing tracks by greedy
  nearest-centroid assignment, gated by a maximum movement distance and a
  loose area-ratio check,
* unmatched blobs open new tracks,
* tracks that go unmatched are kept alive for a configurable number of
  frames (so a person passing behind furniture keeps their identity) and
  are closed afterwards.

The tracker's job in this library is to group the per-frame silhouettes of
the same physical object so their binary signatures can be associated with
one track id -- which is exactly what the FPGA identification stage consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, TrackingError
from repro.vision.blobs import Blob


class TrackState(Enum):
    """Lifecycle state of a track."""

    ACTIVE = "active"
    LOST = "lost"
    CLOSED = "closed"


@dataclass
class Track:
    """A single tracked object.

    Attributes
    ----------
    track_id:
        Persistent identifier assigned by the tracker.
    centroid:
        Last known ``(row, column)`` position.
    area:
        Last known silhouette area.
    state:
        Current lifecycle state.
    age:
        Number of frames since the track was opened.
    missed_frames:
        Consecutive frames without a matching blob.
    history:
        Frame indices at which the track was observed.
    last_blob:
        The most recent matched blob (``None`` while lost).
    """

    track_id: int
    centroid: tuple[float, float]
    area: int
    state: TrackState = TrackState.ACTIVE
    age: int = 0
    missed_frames: int = 0
    history: list[int] = field(default_factory=list)
    last_blob: Optional[Blob] = None

    def distance_to(self, blob: Blob) -> float:
        """Euclidean centroid distance from this track to ``blob``."""
        dy = self.centroid[0] - blob.centroid[0]
        dx = self.centroid[1] - blob.centroid[1]
        return float(np.hypot(dy, dx))


class ObjectTracker:
    """Greedy nearest-neighbour blob tracker.

    Parameters
    ----------
    max_distance:
        Maximum centroid movement (pixels) for a blob to match a track.
    max_missed_frames:
        How many consecutive frames a track may go unobserved before it is
        closed.
    max_area_ratio:
        Maximum allowed ratio between matched areas (larger / smaller); a
        loose gate that stops a person being matched onto a tiny noise blob.
    """

    def __init__(
        self,
        max_distance: float = 25.0,
        max_missed_frames: int = 10,
        max_area_ratio: float = 4.0,
    ):
        if max_distance <= 0:
            raise ConfigurationError(f"max_distance must be positive, got {max_distance}")
        if max_missed_frames < 0:
            raise ConfigurationError(
                f"max_missed_frames must be non-negative, got {max_missed_frames}"
            )
        if max_area_ratio < 1.0:
            raise ConfigurationError(
                f"max_area_ratio must be at least 1, got {max_area_ratio}"
            )
        self.max_distance = float(max_distance)
        self.max_missed_frames = int(max_missed_frames)
        self.max_area_ratio = float(max_area_ratio)
        self._tracks: dict[int, Track] = {}
        self._next_id = 1
        self._last_frame_index: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def tracks(self) -> list[Track]:
        """All tracks that are not closed (active + lost)."""
        return [t for t in self._tracks.values() if t.state != TrackState.CLOSED]

    @property
    def active_tracks(self) -> list[Track]:
        """Tracks matched in the most recent update."""
        return [t for t in self._tracks.values() if t.state == TrackState.ACTIVE]

    @property
    def closed_tracks(self) -> list[Track]:
        """Tracks that have been terminated."""
        return [t for t in self._tracks.values() if t.state == TrackState.CLOSED]

    def track(self, track_id: int) -> Track:
        """Look up a track by id."""
        try:
            return self._tracks[track_id]
        except KeyError as exc:
            raise TrackingError(f"no track with id {track_id}") from exc

    # ------------------------------------------------------------------ #
    # Update
    # ------------------------------------------------------------------ #
    def _area_compatible(self, track: Track, blob: Blob) -> bool:
        larger = max(track.area, blob.area)
        smaller = max(min(track.area, blob.area), 1)
        return larger / smaller <= self.max_area_ratio

    def update(self, frame_index: int, blobs: list[Blob]) -> dict[int, Blob]:
        """Advance the tracker by one frame.

        Parameters
        ----------
        frame_index:
            Index of the frame the blobs came from; must be strictly
            increasing across calls.
        blobs:
            Size-filtered blobs detected in this frame.

        Returns
        -------
        dict
            Mapping of ``track_id -> blob`` for every blob, including blobs
            that opened a brand-new track this frame.
        """
        if self._last_frame_index is not None and frame_index <= self._last_frame_index:
            raise TrackingError(
                f"frame index {frame_index} is not after the previous frame "
                f"{self._last_frame_index}"
            )
        self._last_frame_index = frame_index

        open_tracks = [t for t in self._tracks.values() if t.state != TrackState.CLOSED]
        assignments: dict[int, Blob] = {}
        unmatched_blobs = list(blobs)

        # Greedy assignment: repeatedly take the globally closest
        # (track, blob) pair that passes the gates.
        candidate_pairs: list[tuple[float, Track, Blob]] = []
        for track in open_tracks:
            for blob in unmatched_blobs:
                distance = track.distance_to(blob)
                if distance <= self.max_distance and self._area_compatible(track, blob):
                    candidate_pairs.append((distance, track, blob))
        candidate_pairs.sort(key=lambda pair: pair[0])

        matched_tracks: set[int] = set()
        matched_blob_ids: set[int] = set()
        for distance, track, blob in candidate_pairs:
            if track.track_id in matched_tracks or id(blob) in matched_blob_ids:
                continue
            matched_tracks.add(track.track_id)
            matched_blob_ids.add(id(blob))
            track.centroid = blob.centroid
            track.area = blob.area
            track.state = TrackState.ACTIVE
            track.missed_frames = 0
            track.history.append(frame_index)
            track.last_blob = blob
            assignments[track.track_id] = blob

        # Unmatched existing tracks age and eventually close.
        for track in open_tracks:
            track.age += 1
            if track.track_id in matched_tracks:
                continue
            track.missed_frames += 1
            track.last_blob = None
            if track.missed_frames > self.max_missed_frames:
                track.state = TrackState.CLOSED
            else:
                track.state = TrackState.LOST

        # Unmatched blobs open new tracks.
        for blob in unmatched_blobs:
            if id(blob) in matched_blob_ids:
                continue
            track = Track(
                track_id=self._next_id,
                centroid=blob.centroid,
                area=blob.area,
                history=[frame_index],
                last_blob=blob,
            )
            self._tracks[track.track_id] = track
            assignments[track.track_id] = blob
            self._next_id += 1

        return assignments
