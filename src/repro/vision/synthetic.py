"""Synthetic indoor surveillance scene generator.

The paper's evaluation uses a two-hour recording of a building entrance:
nine different people walk in and out past office furniture, with lighting
variation from large windows, camera jitter, partial occlusion and the
over-/under-segmentation artefacts any real background-subtraction pipeline
produces.  That recording is not available, so this module generates a
synthetic scene with the same *structure*:

* a static office background with textured regions,
* static foreground "furniture" occluders that clip silhouettes,
* person-like actors, each with a stable per-identity clothing colour
  palette (which is exactly the cue the paper's colour-histogram signature
  keys on) plus per-frame colour jitter,
* global lighting drift over time (the windows),
* small random camera jitter, and
* pixel noise.

The generator is fully deterministic given a seed, so the paper-scale
dataset in :mod:`repro.datasets` is reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.errors import ConfigurationError
from repro.vision.frame import Frame


@dataclass(frozen=True)
class ActorSpec:
    """Appearance and motion description of one synthetic person.

    Attributes
    ----------
    identity:
        Ground-truth label carried through to the dataset.
    torso_colour, legs_colour, head_colour:
        RGB tuples for the three body regions -- the clothing colours are
        the appearance cue the binary signature captures.
    height, width:
        Actor size in pixels.
    speed:
        Horizontal speed in pixels per frame (sign gives direction).
    entry_row:
        Vertical position of the top of the actor.
    colour_jitter:
        Standard deviation of the per-frame RGB offset applied to the whole
        actor (models shadows, auto-exposure and compression noise).
    texture_scale:
        Standard deviation of the *static* per-pixel colour texture applied
        to the actor's clothing.  Real clothing spreads an object's colour
        histogram over a band of neighbouring bins; this parameter controls
        the width of that band and therefore how stable the binary
        signature is from frame to frame.
    """

    identity: int
    torso_colour: tuple[int, int, int]
    legs_colour: tuple[int, int, int]
    head_colour: tuple[int, int, int] = (205, 180, 160)
    height: int = 48
    width: int = 20
    speed: float = 2.0
    entry_row: int = 30
    colour_jitter: float = 5.0
    texture_scale: float = 12.0


@dataclass
class SceneConfig:
    """Configuration of the synthetic surveillance scene.

    The defaults produce a small (96x128) scene that keeps the whole
    paper-scale dataset generation fast while preserving the statistics the
    recognition task depends on.
    """

    height: int = 96
    width: int = 128
    lighting_amplitude: float = 10.0
    lighting_period_frames: int = 400
    camera_jitter_pixels: int = 1
    pixel_noise_std: float = 3.0
    furniture_occluders: int = 2
    background_seed: int = 7
    initial_pause_max_frames: int = 300

    def __post_init__(self) -> None:
        if self.height < 32 or self.width < 32:
            raise ConfigurationError(
                f"scene must be at least 32x32 pixels, got {self.height}x{self.width}"
            )
        if self.lighting_period_frames <= 0:
            raise ConfigurationError(
                "lighting_period_frames must be positive, got "
                f"{self.lighting_period_frames}"
            )
        if self.camera_jitter_pixels < 0:
            raise ConfigurationError(
                f"camera_jitter_pixels must be non-negative, got {self.camera_jitter_pixels}"
            )
        if self.pixel_noise_std < 0:
            raise ConfigurationError(
                f"pixel_noise_std must be non-negative, got {self.pixel_noise_std}"
            )
        if self.furniture_occluders < 0:
            raise ConfigurationError(
                f"furniture_occluders must be non-negative, got {self.furniture_occluders}"
            )
        if self.initial_pause_max_frames < 0:
            raise ConfigurationError(
                "initial_pause_max_frames must be non-negative, got "
                f"{self.initial_pause_max_frames}"
            )


def default_actor_palette(n_actors: int = 9, seed: SeedLike = 2010) -> list[ActorSpec]:
    """Create ``n_actors`` actor specifications with well-spread clothing colours.

    Colours are drawn from a fixed palette of saturated and muted tones and
    then perturbed, so identities are distinguishable but not trivially so
    (several actors share similar trousers, as real crowds do).
    """
    if n_actors <= 0:
        raise ConfigurationError(f"n_actors must be positive, got {n_actors}")
    rng = as_generator(seed)
    base_palette = [
        (200, 40, 40),    # red jacket
        (40, 90, 190),    # blue jacket
        (40, 160, 70),    # green coat
        (230, 200, 60),   # yellow hi-vis
        (150, 60, 170),   # purple jumper
        (240, 140, 40),   # orange coat
        (90, 200, 200),   # teal shirt
        (120, 120, 120),  # grey hoodie
        (235, 235, 235),  # white shirt
        (60, 60, 60),     # black coat
        (180, 120, 80),   # brown jacket
        (250, 150, 180),  # pink top
    ]
    trousers = [(50, 50, 70), (90, 90, 100), (40, 40, 45), (120, 110, 90)]
    actors = []
    for identity in range(n_actors):
        torso = base_palette[identity % len(base_palette)]
        torso = tuple(
            int(np.clip(channel + rng.integers(-15, 16), 0, 255)) for channel in torso
        )
        legs = trousers[int(rng.integers(0, len(trousers)))]
        actors.append(
            ActorSpec(
                identity=identity,
                torso_colour=torso,  # type: ignore[arg-type]
                legs_colour=legs,
                height=int(rng.integers(40, 56)),
                width=int(rng.integers(16, 24)),
                speed=float(rng.uniform(1.5, 3.0)) * (1 if identity % 2 == 0 else -1),
                entry_row=int(rng.integers(20, 40)),
                colour_jitter=float(rng.uniform(3.0, 7.0)),
                texture_scale=float(rng.uniform(9.0, 15.0)),
            )
        )
    return actors


class SyntheticSurveillanceScene:
    """Renders frames of the synthetic entrance scene.

    Parameters
    ----------
    actors:
        Actor specifications; defaults to the paper's nine identities.
    config:
        Scene geometry and noise configuration.
    seed:
        Seed for all per-frame randomness (jitter, noise, walk phase).

    Notes
    -----
    Actors walk horizontally across the scene and wrap around with a random
    pause, so a long sequence contains many separate "appearances" of each
    identity, as in the paper's recording of people repeatedly entering and
    leaving the building.
    """

    def __init__(
        self,
        actors: Sequence[ActorSpec] | None = None,
        config: SceneConfig | None = None,
        seed: SeedLike = None,
    ):
        self.config = config or SceneConfig()
        self.actors = list(actors) if actors is not None else default_actor_palette()
        if not self.actors:
            raise ConfigurationError("at least one actor is required")
        self._rng = as_generator(seed)
        self._background = self._render_background()
        self._occluders = self._place_occluders()
        self._colour_cache: dict[int, np.ndarray] = {}
        # Per-actor walk state: horizontal position and frames left in a pause.
        # Long, staggered pauses mean that only a few people are in view at
        # any moment, as in the paper's entrance scene where people arrive
        # one at a time rather than as a permanent crowd.
        self._positions = {
            actor.identity: float(self._rng.uniform(0, self.config.width))
            for actor in self.actors
        }
        self._pauses = {
            actor.identity: int(
                self._rng.integers(0, max(self.config.initial_pause_max_frames, 1))
            )
            for actor in self.actors
        }

    # ------------------------------------------------------------------ #
    # Static scene construction
    # ------------------------------------------------------------------ #
    def _render_background(self) -> np.ndarray:
        """Build the static office background (walls, floor, door, window)."""
        rng = as_generator(self.config.background_seed)
        h, w = self.config.height, self.config.width
        background = np.zeros((h, w, 3), dtype=np.float64)
        background[: 2 * h // 3] = (168.0, 162.0, 150.0)   # wall
        background[2 * h // 3 :] = (110.0, 100.0, 92.0)    # floor
        # Door on the right-hand edge (the exit the paper's camera watches).
        background[h // 4 : 2 * h // 3, w - w // 8 :] = (96.0, 78.0, 60.0)
        # Window band near the top -- brighter, drives the lighting variation.
        background[: h // 6, w // 4 : 3 * w // 4] = (214.0, 220.0, 228.0)
        # Mild texture so background subtraction is not trivially exact.
        background += rng.normal(0.0, 3.0, size=background.shape)
        return np.clip(background, 0, 255)

    def _place_occluders(self) -> list[tuple[int, int, int, int, tuple[int, int, int]]]:
        """Static furniture rectangles (row0, row1, col0, col1, colour)."""
        rng = as_generator(self.config.background_seed + 1)
        occluders = []
        h, w = self.config.height, self.config.width
        for _ in range(self.config.furniture_occluders):
            width = int(rng.integers(w // 8, w // 5))
            col0 = int(rng.integers(w // 8, w - width - w // 8))
            height = int(rng.integers(h // 6, h // 4))
            row1 = h - int(rng.integers(0, h // 10))
            row0 = row1 - height
            colour = (
                int(rng.integers(60, 120)),
                int(rng.integers(50, 100)),
                int(rng.integers(40, 90)),
            )
            occluders.append((row0, row1, col0, col0 + width, colour))
        return occluders

    @property
    def background(self) -> np.ndarray:
        """The clean background plate (uint8), before lighting and noise."""
        return np.clip(self._background, 0, 255).astype(np.uint8)

    # ------------------------------------------------------------------ #
    # Actor rendering
    # ------------------------------------------------------------------ #
    def _actor_silhouette(self, actor: ActorSpec) -> np.ndarray:
        """Boolean person-shaped stencil of ``actor.height x actor.width``."""
        h, w = actor.height, actor.width
        stencil = np.zeros((h, w), dtype=bool)
        head_h = max(h // 6, 2)
        torso_h = max(h // 2, 3)
        # Head: a centred narrow block.
        head_w = max(w // 2, 2)
        head_left = (w - head_w) // 2
        stencil[:head_h, head_left : head_left + head_w] = True
        # Torso: full width.
        stencil[head_h : head_h + torso_h, :] = True
        # Legs: two columns with a gap.
        leg_w = max(w // 3, 1)
        stencil[head_h + torso_h :, :leg_w] = True
        stencil[head_h + torso_h :, w - leg_w :] = True
        return stencil

    def _actor_colours(self, actor: ActorSpec) -> np.ndarray:
        """Per-pixel RGB colours for the actor stencil (head/torso/legs).

        A static per-actor texture (seeded by the identity) is added on top
        of the base clothing colours, so the actor's colour histogram covers
        a stable band of bins rather than a handful of spikes -- which is
        what makes the binarised signature consistent from frame to frame,
        as in the paper's figure 3.
        """
        cached = self._colour_cache.get(actor.identity)
        if cached is not None and cached.shape[:2] == (actor.height, actor.width):
            return cached
        h, w = actor.height, actor.width
        colours = np.zeros((h, w, 3), dtype=np.float64)
        head_h = max(h // 6, 2)
        torso_h = max(h // 2, 3)
        colours[:head_h] = actor.head_colour
        colours[head_h : head_h + torso_h] = actor.torso_colour
        colours[head_h + torso_h :] = actor.legs_colour
        texture_rng = as_generator(1000 + actor.identity)
        colours += texture_rng.normal(0.0, actor.texture_scale, size=colours.shape)
        colours = np.clip(colours, 0, 255)
        self._colour_cache[actor.identity] = colours
        return colours

    def _advance_actor(self, actor: ActorSpec) -> float | None:
        """Advance the actor's walk state; return its column or ``None`` if paused."""
        if self._pauses[actor.identity] > 0:
            self._pauses[actor.identity] -= 1
            return None
        position = self._positions[actor.identity] + actor.speed
        span = self.config.width + actor.width
        if position > span:
            position = -actor.width
            self._pauses[actor.identity] = int(self._rng.integers(60, 400))
        elif position < -actor.width:
            position = span
            self._pauses[actor.identity] = int(self._rng.integers(60, 400))
        self._positions[actor.identity] = position
        return position

    # ------------------------------------------------------------------ #
    # Frame rendering
    # ------------------------------------------------------------------ #
    def render_frame(self, index: int) -> Frame:
        """Render frame ``index``, advancing every actor's walk state."""
        cfg = self.config
        h, w = cfg.height, cfg.width
        lighting = cfg.lighting_amplitude * np.sin(
            2.0 * np.pi * index / cfg.lighting_period_frames
        )
        image = self._background + lighting

        truth_masks: dict[int, np.ndarray] = {}
        for actor in self.actors:
            column = self._advance_actor(actor)
            if column is None:
                continue
            stencil = self._actor_silhouette(actor)
            colours = self._actor_colours(actor)
            jitter = self._rng.normal(0.0, actor.colour_jitter, size=3)
            top = int(np.clip(actor.entry_row + self._rng.integers(-2, 3), 0, h - 1))
            left = int(round(column))
            mask = np.zeros((h, w), dtype=bool)
            row0, row1 = top, min(top + actor.height, h)
            col0, col1 = max(left, 0), min(left + actor.width, w)
            if row1 <= row0 or col1 <= col0:
                continue
            sten = stencil[: row1 - row0, col0 - left : col1 - left]
            col_patch = colours[: row1 - row0, col0 - left : col1 - left]
            region = image[row0:row1, col0:col1]
            region[sten] = np.clip(col_patch[sten] + jitter + lighting * 0.3, 0, 255)
            mask[row0:row1, col0:col1] = sten
            # Later-drawn actors are closer to the camera: remove the pixels
            # they cover from every earlier actor's ground-truth silhouette,
            # so a partially hidden person's histogram only sees the pixels
            # that are actually theirs.
            for other_mask in truth_masks.values():
                other_mask &= ~mask
            truth_masks[actor.identity] = mask

        # Furniture occluders are drawn last so they clip any actor behind them.
        for row0, row1, col0, col1, colour in self._occluders:
            image[row0:row1, col0:col1] = colour
            for mask in truth_masks.values():
                mask[row0:row1, col0:col1] = False

        # Camera jitter: shift the whole frame by up to +-jitter pixels.
        if cfg.camera_jitter_pixels > 0:
            dy = int(self._rng.integers(-cfg.camera_jitter_pixels, cfg.camera_jitter_pixels + 1))
            dx = int(self._rng.integers(-cfg.camera_jitter_pixels, cfg.camera_jitter_pixels + 1))
            image = np.roll(image, (dy, dx), axis=(0, 1))
            truth_masks = {
                identity: np.roll(mask, (dy, dx), axis=(0, 1))
                for identity, mask in truth_masks.items()
            }

        if cfg.pixel_noise_std > 0:
            image = image + self._rng.normal(0.0, cfg.pixel_noise_std, size=image.shape)

        # Drop identities whose visible silhouette vanished behind furniture.
        truth_masks = {
            identity: mask for identity, mask in truth_masks.items() if mask.any()
        }
        return Frame(
            index=index,
            image=np.clip(image, 0, 255).astype(np.uint8),
            truth_masks=truth_masks,
            timestamp=index / 30.0,
        )

    def frames(self, count: int, start: int = 0) -> Iterator[Frame]:
        """Yield ``count`` consecutive frames starting at index ``start``."""
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        for index in range(start, start + count):
            yield self.render_frame(index)
