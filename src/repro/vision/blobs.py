"""Blob extraction from labelled masks, and the paper's size filter.

After connected components labelling each foreground region becomes a
*blob*: its silhouette mask, bounding box, centroid and area.  The paper
filters blobs with fewer than 768 pixels as noise -- this "also avoids
values of theta < 1" in the binarisation equation, because a silhouette
with at least as many pixels as histogram bins guarantees a mean bin count
of at least one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DataError

#: The paper's noise filter: silhouettes below this many pixels are dropped.
PAPER_MIN_BLOB_AREA = 768


@dataclass(frozen=True)
class Blob:
    """A segmented foreground region.

    Attributes
    ----------
    label:
        The connected-component label this blob came from.
    mask:
        Full-frame boolean silhouette.
    area:
        Number of foreground pixels.
    bounding_box:
        ``(top, left, bottom, right)`` -- bottom/right are exclusive.
    centroid:
        ``(row, column)`` centre of mass.
    """

    label: int
    mask: np.ndarray
    area: int
    bounding_box: tuple[int, int, int, int]
    centroid: tuple[float, float]

    @property
    def height(self) -> int:
        top, _, bottom, _ = self.bounding_box
        return bottom - top

    @property
    def width(self) -> int:
        _, left, _, right = self.bounding_box
        return right - left

    def crop(self, image: np.ndarray) -> np.ndarray:
        """Crop ``image`` to this blob's bounding box."""
        top, left, bottom, right = self.bounding_box
        return image[top:bottom, left:right]

    def crop_mask(self) -> np.ndarray:
        """The silhouette cropped to its bounding box."""
        top, left, bottom, right = self.bounding_box
        return self.mask[top:bottom, left:right]


def extract_blobs(labels: np.ndarray, count: int | None = None) -> list[Blob]:
    """Build :class:`Blob` objects from a labelled component image.

    Parameters
    ----------
    labels:
        Integer label image from
        :func:`repro.vision.connected_components.label_components`.
    count:
        Number of components; inferred from ``labels.max()`` when omitted.
    """
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise DataError(f"expected a 2-D label image, got shape {labels.shape}")
    if count is None:
        count = int(labels.max(initial=0))
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    blobs: list[Blob] = []
    for label in range(1, count + 1):
        mask = labels == label
        area = int(mask.sum())
        if area == 0:
            continue
        rows, cols = np.nonzero(mask)
        blobs.append(
            Blob(
                label=label,
                mask=mask,
                area=area,
                bounding_box=(
                    int(rows.min()),
                    int(cols.min()),
                    int(rows.max()) + 1,
                    int(cols.max()) + 1,
                ),
                centroid=(float(rows.mean()), float(cols.mean())),
            )
        )
    return blobs


def filter_blobs_by_area(
    blobs: list[Blob], min_area: int = PAPER_MIN_BLOB_AREA
) -> list[Blob]:
    """Drop blobs smaller than ``min_area`` pixels (the paper's noise rule)."""
    if min_area < 0:
        raise ConfigurationError(f"min_area must be non-negative, got {min_area}")
    return [blob for blob in blobs if blob.area >= min_area]
