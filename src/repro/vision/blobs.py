"""Blob extraction from labelled masks, and the paper's size filter.

After connected components labelling each foreground region becomes a
*blob*: its silhouette mask, bounding box, centroid and area.  The paper
filters blobs with fewer than 768 pixels as noise -- this "also avoids
values of theta < 1" in the binarisation equation, because a silhouette
with at least as many pixels as histogram bins guarantees a mean bin count
of at least one.

:func:`extract_blobs` derives every blob of a frame in one pass over the
label image: areas come from ``np.bincount``, bounding boxes and centroids
from segment reductions over the raster-sorted foreground coordinates
(``np.minimum/maximum/add.reduceat``), instead of the seed's full-frame
rescan per label (retained as :func:`extract_blobs_oracle`).  Blobs store
only their *cropped* silhouette; the full-frame :attr:`Blob.mask` view is
materialised lazily on first access and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.errors import ConfigurationError, DataError

#: The paper's noise filter: silhouettes below this many pixels are dropped.
PAPER_MIN_BLOB_AREA = 768


@dataclass(frozen=True)
class Blob:
    """A segmented foreground region.

    Attributes
    ----------
    label:
        The connected-component label this blob came from.
    area:
        Number of foreground pixels.
    bounding_box:
        ``(top, left, bottom, right)`` -- bottom/right are exclusive.
    centroid:
        ``(row, column)`` centre of mass.
    frame_shape:
        ``(height, width)`` of the frame the blob was segmented from.
    cropped:
        Boolean silhouette cropped to the bounding box (the stored
        representation; the full-frame :attr:`mask` is derived from it).
    """

    label: int
    area: int
    bounding_box: tuple[int, int, int, int]
    centroid: tuple[float, float]
    frame_shape: tuple[int, int]
    cropped: np.ndarray = field(repr=False, compare=False)

    @cached_property
    def mask(self) -> np.ndarray:
        """Full-frame boolean silhouette (lazily materialised and cached)."""
        full = np.zeros(self.frame_shape, dtype=bool)
        top, left, bottom, right = self.bounding_box
        full[top:bottom, left:right] = self.cropped
        return full

    @property
    def height(self) -> int:
        top, _, bottom, _ = self.bounding_box
        return bottom - top

    @property
    def width(self) -> int:
        _, left, _, right = self.bounding_box
        return right - left

    def crop(self, image: np.ndarray) -> np.ndarray:
        """Crop ``image`` to this blob's bounding box."""
        top, left, bottom, right = self.bounding_box
        return image[top:bottom, left:right]

    def crop_mask(self) -> np.ndarray:
        """The silhouette cropped to its bounding box."""
        return self.cropped


def _validate_labels(labels: np.ndarray, count: int | None) -> tuple[np.ndarray, int]:
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise DataError(f"expected a 2-D label image, got shape {labels.shape}")
    if count is None:
        count = int(labels.max(initial=0))
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    return labels, count


def extract_blobs(labels: np.ndarray, count: int | None = None) -> list[Blob]:
    """Build :class:`Blob` objects from a labelled component image.

    One vectorized pass: foreground coordinates are grouped by label with a
    stable argsort (which preserves raster order inside each group, so row
    extrema are the group's first/last elements), then areas, bounding
    boxes and centroid sums all fall out of segment reductions.

    Parameters
    ----------
    labels:
        Integer label image from
        :func:`repro.vision.connected_components.label_components`.
    count:
        Number of components; inferred from ``labels.max()`` when omitted.
        Labels greater than ``count`` are ignored, matching the oracle.
    """
    labels, count = _validate_labels(labels, count)
    if count == 0:
        return []
    rows, cols = np.nonzero(labels)
    if rows.size == 0:
        return []
    values = labels[rows, cols]
    order = np.argsort(values, kind="stable")
    values = values[order]
    rows = rows[order]
    cols = cols[order]

    boundaries = np.flatnonzero(values[1:] != values[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [values.size]))
    present = values[starts]
    # The reduceat calls run over *every* segment (a reduceat segment spans
    # from one start to the next, so dropping starts first would leak the
    # dropped labels' pixels into the preceding kept segment); labels above
    # ``count`` are filtered afterwards.
    areas = ends - starts
    # Raster order within each segment: rows are non-decreasing, so the
    # vertical extent is just the segment's first and last row.
    tops = rows[starts]
    bottoms = rows[ends - 1] + 1
    lefts = np.minimum.reduceat(cols, starts)
    rights = np.maximum.reduceat(cols, starts) + 1
    row_sums = np.add.reduceat(rows, starts)
    col_sums = np.add.reduceat(cols, starts)
    keep = present <= count
    if not keep.all():
        present, areas = present[keep], areas[keep]
        tops, bottoms = tops[keep], bottoms[keep]
        lefts, rights = lefts[keep], rights[keep]
        row_sums, col_sums = row_sums[keep], col_sums[keep]
    if present.size == 0:
        return []

    frame_shape = (int(labels.shape[0]), int(labels.shape[1]))
    blobs: list[Blob] = []
    for i in range(present.size):
        top, left = int(tops[i]), int(lefts[i])
        bottom, right = int(bottoms[i]), int(rights[i])
        label = int(present[i])
        cropped = labels[top:bottom, left:right] == label
        blobs.append(
            Blob(
                label=label,
                area=int(areas[i]),
                bounding_box=(top, left, bottom, right),
                centroid=(
                    float(row_sums[i] / areas[i]),
                    float(col_sums[i] / areas[i]),
                ),
                frame_shape=frame_shape,
                cropped=cropped,
            )
        )
    return blobs


def extract_blobs_oracle(labels: np.ndarray, count: int | None = None) -> list[Blob]:
    """The seed's per-label full-frame rescan (parity oracle)."""
    labels, count = _validate_labels(labels, count)
    blobs: list[Blob] = []
    for label in range(1, count + 1):
        mask = labels == label
        area = int(mask.sum())
        if area == 0:
            continue
        rows, cols = np.nonzero(mask)
        top, left = int(rows.min()), int(cols.min())
        bottom, right = int(rows.max()) + 1, int(cols.max()) + 1
        blobs.append(
            Blob(
                label=label,
                area=area,
                bounding_box=(top, left, bottom, right),
                centroid=(float(rows.mean()), float(cols.mean())),
                frame_shape=(int(labels.shape[0]), int(labels.shape[1])),
                cropped=mask[top:bottom, left:right],
            )
        )
    return blobs


def filter_blobs_by_area(
    blobs: list[Blob], min_area: int = PAPER_MIN_BLOB_AREA
) -> list[Blob]:
    """Drop blobs smaller than ``min_area`` pixels (the paper's noise rule)."""
    if min_area < 0:
        raise ConfigurationError(f"min_area must be non-negative, got {min_area}")
    return [blob for blob in blobs if blob.area >= min_area]
