"""Binary morphology used to clean foreground masks.

Background differencing produces speckle noise and small holes; the paper's
upstream pipeline (and essentially every surveillance system) cleans the
mask with a morphological opening followed by a closing before connected
components analysis.  These are small, dependency-free implementations over
square structuring elements, written with numpy shifts so they stay fast on
the frame sizes used here.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError


def _validate_mask(mask: np.ndarray) -> np.ndarray:
    mask = np.asarray(mask)
    if mask.ndim != 2:
        raise DataError(f"expected a 2-D binary mask, got shape {mask.shape}")
    return mask.astype(bool)


def _validate_radius(radius: int) -> int:
    if radius < 0:
        raise ConfigurationError(f"radius must be non-negative, got {radius}")
    return int(radius)


def _shifted(mask: np.ndarray, dy: int, dx: int, fill: bool) -> np.ndarray:
    """Shift ``mask`` by (dy, dx), padding with ``fill``."""
    result = np.full_like(mask, fill)
    h, w = mask.shape
    src_y = slice(max(0, -dy), min(h, h - dy))
    src_x = slice(max(0, -dx), min(w, w - dx))
    dst_y = slice(max(0, dy), min(h, h + dy))
    dst_x = slice(max(0, dx), min(w, w + dx))
    result[dst_y, dst_x] = mask[src_y, src_x]
    return result


def binary_dilate(mask: np.ndarray, radius: int = 1) -> np.ndarray:
    """Dilate ``mask`` with a ``(2*radius+1)`` square structuring element."""
    mask = _validate_mask(mask)
    radius = _validate_radius(radius)
    if radius == 0:
        return mask.copy()
    result = mask.copy()
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            if dy == 0 and dx == 0:
                continue
            result |= _shifted(mask, dy, dx, fill=False)
    return result


def binary_erode(mask: np.ndarray, radius: int = 1) -> np.ndarray:
    """Erode ``mask`` with a ``(2*radius+1)`` square structuring element."""
    mask = _validate_mask(mask)
    radius = _validate_radius(radius)
    if radius == 0:
        return mask.copy()
    result = mask.copy()
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            if dy == 0 and dx == 0:
                continue
            result &= _shifted(mask, dy, dx, fill=False)
    return result


def binary_open(mask: np.ndarray, radius: int = 1) -> np.ndarray:
    """Opening (erosion then dilation): removes specks smaller than the element."""
    return binary_dilate(binary_erode(mask, radius), radius)


def binary_close(mask: np.ndarray, radius: int = 1) -> np.ndarray:
    """Closing (dilation then erosion): fills holes smaller than the element."""
    return binary_erode(binary_dilate(mask, radius), radius)
