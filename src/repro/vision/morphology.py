"""Binary morphology used to clean foreground masks.

Background differencing produces speckle noise and small holes; the paper's
upstream pipeline (and essentially every surveillance system) cleans the
mask with a morphological opening followed by a closing before connected
components analysis.

The production implementations are **separable**: a ``(2r+1)`` square
structuring element is the Minkowski composition of a horizontal and a
vertical ``(2r+1)`` segment, so dilation/erosion run as a row pass followed
by a column pass -- ``O(r)`` shifted in-place OR/AND slice operations
instead of the ``O(r^2)`` full-kernel sweep.  The seed's full-kernel
implementations are retained as ``binary_dilate_oracle`` /
``binary_erode_oracle``; the two agree bit-exactly on every mask and
radius, which the property tests and ``scripts/check_vision.py`` enforce.

Border semantics: pixels outside the frame are treated as **background for
dilation** and **foreground for erosion**.  (The seed treated them as
background for both, so an object flush against the frame edge was eroded
from outside the image as well -- a person entering the scene lost an edge
ring of silhouette pixels for no reason.)  With the OR/AND slice form this
costs nothing: out-of-frame contributions are the identity element of each
operation, so no explicit padding is ever materialised.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError


def _validate_mask(mask: np.ndarray) -> np.ndarray:
    mask = np.asarray(mask)
    if mask.ndim != 2:
        raise DataError(f"expected a 2-D binary mask, got shape {mask.shape}")
    if mask.dtype != np.bool_:
        mask = mask.astype(bool)
    return mask


def _validate_radius(radius: int) -> int:
    if radius < 0:
        raise ConfigurationError(f"radius must be non-negative, got {radius}")
    return int(radius)


def _axis_pass(src: np.ndarray, radius: int, axis: int, out: np.ndarray, erode: bool):
    """1-D dilation (OR) or erosion (AND) of ``src`` along ``axis`` into ``out``.

    Out-of-frame pixels contribute the identity element (False for OR,
    True for AND), so the border never needs explicit padding.
    """
    np.copyto(out, src)
    op = np.logical_and if erode else np.logical_or
    for step in range(1, radius + 1):
        if axis == 0:
            op(out[step:], src[:-step], out=out[step:])
            op(out[:-step], src[step:], out=out[:-step])
        else:
            op(out[:, step:], src[:, :-step], out=out[:, step:])
            op(out[:, :-step], src[:, step:], out=out[:, :-step])


def _separable(mask: np.ndarray, radius: int, erode: bool, out: np.ndarray | None):
    """Square-element morphology as a row pass then a column pass."""
    mask = _validate_mask(mask)
    radius = _validate_radius(radius)
    if out is None:
        out = np.empty_like(mask)
    elif out.shape != mask.shape or out.dtype != np.bool_:
        raise DataError(
            f"out must be a boolean array of shape {mask.shape}, got "
            f"{out.dtype} {out.shape}"
        )
    if radius == 0:
        np.copyto(out, mask)
        return out
    rows_done = np.empty_like(mask)
    _axis_pass(mask, radius, 1, rows_done, erode)
    _axis_pass(rows_done, radius, 0, out, erode)
    return out


def binary_dilate(
    mask: np.ndarray, radius: int = 1, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Dilate ``mask`` with a ``(2*radius+1)`` square structuring element.

    ``out`` optionally receives the result (a preallocated boolean buffer of
    the mask's shape), letting per-frame pipelines reuse scratch memory.
    """
    return _separable(mask, radius, erode=False, out=out)


def binary_erode(
    mask: np.ndarray, radius: int = 1, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Erode ``mask`` with a ``(2*radius+1)`` square structuring element.

    Out-of-frame neighbours count as foreground, so silhouettes touching
    the frame edge are not eaten from outside the image.
    """
    return _separable(mask, radius, erode=True, out=out)


def binary_open(
    mask: np.ndarray, radius: int = 1, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Opening (erosion then dilation): removes specks smaller than the element."""
    mask = _validate_mask(mask)
    radius = _validate_radius(radius)
    scratch = np.empty_like(mask)
    _separable(mask, radius, erode=True, out=scratch)
    return _separable(scratch, radius, erode=False, out=out)


def binary_close(
    mask: np.ndarray, radius: int = 1, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Closing (dilation then erosion): fills holes smaller than the element."""
    mask = _validate_mask(mask)
    radius = _validate_radius(radius)
    scratch = np.empty_like(mask)
    _separable(mask, radius, erode=False, out=scratch)
    return _separable(scratch, radius, erode=True, out=out)


# --------------------------------------------------------------------- #
# Full-kernel oracles (the seed implementation, with the erosion border
# fixed to match the separable path: outside-the-frame is foreground).
# --------------------------------------------------------------------- #
def _shifted(mask: np.ndarray, dy: int, dx: int, fill: bool) -> np.ndarray:
    """Shift ``mask`` by (dy, dx), padding with ``fill``."""
    result = np.full_like(mask, fill)
    h, w = mask.shape
    if abs(dy) >= h or abs(dx) >= w:
        return result
    src_y = slice(max(0, -dy), min(h, h - dy))
    src_x = slice(max(0, -dx), min(w, w - dx))
    dst_y = slice(max(0, dy), min(h, h + dy))
    dst_x = slice(max(0, dx), min(w, w + dx))
    result[dst_y, dst_x] = mask[src_y, src_x]
    return result


def binary_dilate_oracle(mask: np.ndarray, radius: int = 1) -> np.ndarray:
    """O(r^2) full-kernel dilation (parity oracle for :func:`binary_dilate`)."""
    mask = _validate_mask(mask)
    radius = _validate_radius(radius)
    if radius == 0:
        return mask.copy()
    result = mask.copy()
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            if dy == 0 and dx == 0:
                continue
            result |= _shifted(mask, dy, dx, fill=False)
    return result


def binary_erode_oracle(mask: np.ndarray, radius: int = 1) -> np.ndarray:
    """O(r^2) full-kernel erosion (parity oracle for :func:`binary_erode`)."""
    mask = _validate_mask(mask)
    radius = _validate_radius(radius)
    if radius == 0:
        return mask.copy()
    result = mask.copy()
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            if dy == 0 and dx == 0:
                continue
            result &= _shifted(mask, dy, dx, fill=True)
    return result


def binary_open_oracle(mask: np.ndarray, radius: int = 1) -> np.ndarray:
    """Full-kernel opening (parity oracle for :func:`binary_open`)."""
    return binary_dilate_oracle(binary_erode_oracle(mask, radius), radius)


def binary_close_oracle(mask: np.ndarray, radius: int = 1) -> np.ndarray:
    """Full-kernel closing (parity oracle for :func:`binary_close`)."""
    return binary_erode_oracle(binary_dilate_oracle(mask, radius), radius)
