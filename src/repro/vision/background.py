"""Background modelling and foreground segmentation.

The paper's upstream pipeline segments moving objects by *background
differencing* (the companion paper [2] accelerates exactly this stage on
FPGA).  This module provides a classic running-average background model
with a per-pixel difference threshold:

* the background estimate is updated as an exponential moving average of
  the incoming frames, restricted to pixels currently classified as
  background so that slow lighting drift is absorbed but loitering objects
  are not, and
* a pixel is foreground when the maximum absolute difference over the RGB
  channels exceeds ``threshold``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError


class BackgroundModel:
    """Exponential running-average background estimate.

    Parameters
    ----------
    learning_rate:
        Fraction of the new frame blended into the background estimate each
        update (``alpha`` in the classic formulation).
    selective:
        When ``True`` (default) only pixels classified as background are
        updated, so stationary foreground objects do not get absorbed.
    """

    def __init__(self, learning_rate: float = 0.02, selective: bool = True):
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigurationError(
                f"learning_rate must lie in (0, 1], got {learning_rate}"
            )
        self.learning_rate = float(learning_rate)
        self.selective = bool(selective)
        self._estimate: np.ndarray | None = None

    @property
    def initialised(self) -> bool:
        """Whether at least one frame has been absorbed."""
        return self._estimate is not None

    @property
    def estimate(self) -> np.ndarray:
        """Current background estimate as a uint8 image."""
        if self._estimate is None:
            raise DataError("background model has not seen any frames yet")
        return np.clip(self._estimate, 0, 255).astype(np.uint8)

    def initialise(self, image: np.ndarray) -> None:
        """Set the background estimate directly from a clean plate."""
        image = self._validate(image)
        self._estimate = image.astype(np.float64)

    def update(self, image: np.ndarray, foreground: np.ndarray | None = None) -> None:
        """Blend ``image`` into the estimate.

        Parameters
        ----------
        image:
            New frame.
        foreground:
            Optional boolean mask of pixels to exclude from the update
            (only honoured when the model is selective).
        """
        image = self._validate(image).astype(np.float64)
        if self._estimate is None:
            self._estimate = image
            return
        alpha = self.learning_rate
        if self.selective and foreground is not None:
            foreground = np.asarray(foreground, dtype=bool)
            if foreground.shape != image.shape[:2]:
                raise DataError(
                    f"foreground mask shape {foreground.shape} does not match frame "
                    f"shape {image.shape[:2]}"
                )
            blend = np.where(foreground[..., np.newaxis], 0.0, alpha)
        else:
            blend = alpha
        self._estimate = (1.0 - blend) * self._estimate + blend * image

    @staticmethod
    def _validate(image: np.ndarray) -> np.ndarray:
        image = np.asarray(image)
        if image.ndim != 3 or image.shape[2] != 3:
            raise DataError(f"expected an HxWx3 frame, got shape {image.shape}")
        return image


class BackgroundSubtractor:
    """Foreground segmentation by thresholded background differencing.

    Parameters
    ----------
    threshold:
        Minimum per-channel absolute difference (0-255) for a pixel to be
        declared foreground.
    learning_rate, selective:
        Forwarded to the underlying :class:`BackgroundModel`.
    """

    def __init__(
        self,
        threshold: float = 28.0,
        *,
        learning_rate: float = 0.02,
        selective: bool = True,
    ):
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive, got {threshold}")
        self.threshold = float(threshold)
        self.model = BackgroundModel(learning_rate=learning_rate, selective=selective)

    def initialise(self, image: np.ndarray) -> None:
        """Initialise the background from a clean plate (no moving objects)."""
        self.model.initialise(image)

    def apply(self, image: np.ndarray) -> np.ndarray:
        """Segment ``image``; returns the boolean foreground mask.

        The model is updated after segmentation (selectively, if enabled),
        so calling :meth:`apply` frame after frame tracks lighting drift.
        """
        image = BackgroundModel._validate(image)
        if not self.model.initialised:
            self.model.initialise(image)
            return np.zeros(image.shape[:2], dtype=bool)
        difference = np.abs(
            image.astype(np.int16) - self.model.estimate.astype(np.int16)
        ).max(axis=2)
        foreground = difference > self.threshold
        self.model.update(image, foreground)
        return foreground
