"""Background modelling and foreground segmentation.

The paper's upstream pipeline segments moving objects by *background
differencing* (the companion paper [2] accelerates exactly this stage on
FPGA).  This module provides a classic running-average background model
with a per-pixel difference threshold:

* the background estimate is updated as an exponential moving average of
  the incoming frames, restricted to pixels currently classified as
  background so that slow lighting drift is absorbed but loitering objects
  are not, and
* a pixel is foreground when the maximum absolute difference over the RGB
  channels exceeds ``threshold``.

In the default (``vectorized=True``) configuration the estimate is a
float32 image updated **in place** through one preallocated scratch buffer,
the differencing path reads the raw float estimate directly through
:attr:`BackgroundModel.estimate_float`, and the per-pixel channel maximum
is taken with two pairwise ``np.maximum`` calls (a reduction over the tiny
contiguous channel axis is ~75x slower in numpy).  ``vectorized=False``
retains the seed implementation -- float64 out-of-place EMA and a
differencing path that round-trips the estimate through a clipped uint8
copy and back to int16 every frame -- as the reference the throughput
benchmark measures the seed front-end with.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError


class BackgroundModel:
    """Exponential running-average background estimate.

    Parameters
    ----------
    learning_rate:
        Fraction of the new frame blended into the background estimate each
        update (``alpha`` in the classic formulation).
    selective:
        When ``True`` (default) only pixels classified as background are
        updated, so stationary foreground objects do not get absorbed.
    vectorized:
        ``True`` (default) keeps a float32 estimate updated in place;
        ``False`` retains the seed's float64 out-of-place update.
    """

    def __init__(
        self,
        learning_rate: float = 0.02,
        selective: bool = True,
        vectorized: bool = True,
    ):
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigurationError(
                f"learning_rate must lie in (0, 1], got {learning_rate}"
            )
        self.learning_rate = float(learning_rate)
        self.selective = bool(selective)
        self.vectorized = bool(vectorized)
        self._estimate: np.ndarray | None = None
        self._scratch: np.ndarray | None = None

    @property
    def initialised(self) -> bool:
        """Whether at least one frame has been absorbed."""
        return self._estimate is not None

    @property
    def estimate(self) -> np.ndarray:
        """Current background estimate as a uint8 image."""
        if self._estimate is None:
            raise DataError("background model has not seen any frames yet")
        return np.clip(self._estimate, 0, 255).astype(np.uint8)

    @property
    def estimate_float(self) -> np.ndarray:
        """Raw float background estimate (read-only view, no quantisation).

        This is what the differencing hot path consumes; mutate the model
        only through :meth:`update` / :meth:`initialise`.
        """
        if self._estimate is None:
            raise DataError("background model has not seen any frames yet")
        view = self._estimate.view()
        view.flags.writeable = False
        return view

    def initialise(self, image: np.ndarray) -> None:
        """Set the background estimate directly from a clean plate."""
        image = self._validate(image)
        dtype = np.float32 if self.vectorized else np.float64
        self._estimate = image.astype(dtype)
        self._scratch = np.empty_like(self._estimate) if self.vectorized else None

    def update(self, image: np.ndarray, foreground: np.ndarray | None = None) -> None:
        """Blend ``image`` into the estimate.

        Parameters
        ----------
        image:
            New frame.
        foreground:
            Optional boolean mask of pixels to exclude from the update
            (only honoured when the model is selective).
        """
        image = self._validate(image)
        if self._estimate is None:
            self.initialise(image)
            return
        foreground = self._validate_foreground(foreground, image)
        if self.vectorized:
            # estimate += alpha * (image - estimate), masked, in place.
            scratch = self._scratch
            np.subtract(image, self._estimate, out=scratch, casting="unsafe")
            np.multiply(scratch, np.float32(self.learning_rate), out=scratch)
            if foreground is not None:
                scratch[foreground] = 0.0
            np.add(self._estimate, scratch, out=self._estimate)
        else:
            alpha = self.learning_rate
            if foreground is not None:
                blend = np.where(foreground[..., np.newaxis], 0.0, alpha)
            else:
                blend = alpha
            image = image.astype(np.float64)
            self._estimate = (1.0 - blend) * self._estimate + blend * image

    def _validate_foreground(
        self, foreground: np.ndarray | None, image: np.ndarray
    ) -> np.ndarray | None:
        if not self.selective or foreground is None:
            return None
        foreground = np.asarray(foreground, dtype=bool)
        if foreground.shape != image.shape[:2]:
            raise DataError(
                f"foreground mask shape {foreground.shape} does not match frame "
                f"shape {image.shape[:2]}"
            )
        return foreground

    @staticmethod
    def _validate(image: np.ndarray) -> np.ndarray:
        image = np.asarray(image)
        if image.ndim != 3 or image.shape[2] != 3:
            raise DataError(f"expected an HxWx3 frame, got shape {image.shape}")
        return image


class BackgroundSubtractor:
    """Foreground segmentation by thresholded background differencing.

    Parameters
    ----------
    threshold:
        Minimum per-channel absolute difference (0-255) for a pixel to be
        declared foreground.
    learning_rate, selective:
        Forwarded to the underlying :class:`BackgroundModel`.
    vectorized:
        ``True`` (default) differences against the raw float estimate into
        preallocated scratch; ``False`` retains the seed's uint8/int16
        round trip (see the module docstring).
    """

    def __init__(
        self,
        threshold: float = 28.0,
        *,
        learning_rate: float = 0.02,
        selective: bool = True,
        vectorized: bool = True,
    ):
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive, got {threshold}")
        self.threshold = float(threshold)
        self.vectorized = bool(vectorized)
        self.model = BackgroundModel(
            learning_rate=learning_rate, selective=selective, vectorized=vectorized
        )
        self._diff: np.ndarray | None = None
        self._channel_max: np.ndarray | None = None

    def initialise(self, image: np.ndarray) -> None:
        """Initialise the background from a clean plate (no moving objects)."""
        self.model.initialise(image)

    def apply(self, image: np.ndarray) -> np.ndarray:
        """Segment ``image``; returns the boolean foreground mask.

        The model is updated after segmentation (selectively, if enabled),
        so calling :meth:`apply` frame after frame tracks lighting drift.
        """
        image = BackgroundModel._validate(image)
        if not self.model.initialised:
            self.model.initialise(image)
            return np.zeros(image.shape[:2], dtype=bool)
        if not self.vectorized:
            difference = np.abs(
                image.astype(np.int16) - self.model.estimate.astype(np.int16)
            ).max(axis=2)
            foreground = difference > self.threshold
            self.model.update(image, foreground)
            return foreground
        estimate = self.model.estimate_float
        if self._diff is None or self._diff.shape != image.shape:
            self._diff = np.empty(image.shape, dtype=np.float32)
            self._channel_max = np.empty(image.shape[:2], dtype=np.float32)
        diff, channel_max = self._diff, self._channel_max
        np.subtract(image, estimate, out=diff, casting="unsafe")
        np.abs(diff, out=diff)
        np.maximum(diff[:, :, 0], diff[:, :, 1], out=channel_max)
        np.maximum(channel_max, diff[:, :, 2], out=channel_max)
        foreground = channel_max > self.threshold
        self.model.update(image, foreground)
        return foreground
