"""Frame and video-sequence containers used throughout the vision substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.errors import DataError


@dataclass
class Frame:
    """A single video frame with optional ground-truth annotations.

    Attributes
    ----------
    index:
        Zero-based frame number within its sequence.
    image:
        ``HxWx3`` RGB image (uint8).
    truth_masks:
        Optional mapping from ground-truth object identity to its boolean
        silhouette in this frame.  Only populated by the synthetic scene
        generator; real pipelines leave it empty.
    timestamp:
        Capture time in seconds from the start of the sequence (the paper's
        camera runs at 30 fps).
    """

    index: int
    image: np.ndarray
    truth_masks: dict[int, np.ndarray] = field(default_factory=dict)
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        image = np.asarray(self.image)
        if image.ndim != 3 or image.shape[2] != 3:
            raise DataError(
                f"frame image must be HxWx3, got shape {image.shape}"
            )
        self.image = image.astype(np.uint8)

    @property
    def shape(self) -> tuple[int, int]:
        """``(height, width)`` of the frame."""
        return self.image.shape[:2]

    def truth_identities(self) -> list[int]:
        """Identities present in this frame (sorted, ground truth only)."""
        return sorted(self.truth_masks)


class VideoSequence:
    """An in-memory, iterable sequence of :class:`Frame` objects.

    The synthetic generator yields frames lazily; this container is used
    whenever a fixed sequence needs to be replayed (for example to compare
    a software and a hardware run on identical input).
    """

    def __init__(self, frames: Optional[list[Frame]] = None, fps: float = 30.0):
        if fps <= 0:
            raise DataError(f"fps must be positive, got {fps}")
        self.fps = float(fps)
        self._frames: list[Frame] = []
        for frame in frames or []:
            self.append(frame)

    def append(self, frame: Frame) -> None:
        """Append a frame, checking the resolution is consistent."""
        if self._frames and frame.shape != self._frames[0].shape:
            raise DataError(
                f"frame {frame.index} has shape {frame.shape}, expected "
                f"{self._frames[0].shape}"
            )
        self._frames.append(frame)

    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self._frames)

    def __getitem__(self, index: int) -> Frame:
        return self._frames[index]

    @property
    def duration_seconds(self) -> float:
        """Length of the sequence in seconds at its frame rate."""
        return len(self._frames) / self.fps

    @property
    def resolution(self) -> Optional[tuple[int, int]]:
        """``(height, width)`` of the frames, or ``None`` when empty."""
        return self._frames[0].shape if self._frames else None
