"""Video segmentation and tracking substrate (the CPU side of figure 1).

The paper's identification stage sits downstream of a conventional
segmentation-and-tracking pipeline (background differencing, connected
components analysis and a model-free tracker) that runs on a PC and emits a
colour histogram for every moving object in every frame.  This subpackage
implements that substrate from scratch:

* :mod:`repro.vision.frame` -- frame and video-sequence containers,
* :mod:`repro.vision.synthetic` -- a deterministic synthetic surveillance
  scene generator standing in for the paper's two-hour indoor recording,
* :mod:`repro.vision.background` -- running-average background model
  (float32, updated in place) and frame differencing,
* :mod:`repro.vision.morphology` -- separable binary erosion / dilation /
  opening / closing used to clean the foreground mask (full-kernel
  oracles retained as ``*_oracle``),
* :mod:`repro.vision.connected_components` -- vectorized run-based
  connected-components labelling, with the two-pass scalar union-find
  labeller retained as its bit-exact oracle,
* :mod:`repro.vision.blobs` -- single-pass blob extraction (silhouettes,
  bounding boxes, centroids) and the paper's minimum-size noise filter,
* :mod:`repro.vision.tracker` -- a nearest-neighbour frame-to-frame tracker
  that maintains persistent object identities.
"""

from repro.vision.frame import Frame, VideoSequence
from repro.vision.synthetic import (
    ActorSpec,
    SceneConfig,
    SyntheticSurveillanceScene,
    default_actor_palette,
)
from repro.vision.background import BackgroundModel, BackgroundSubtractor
from repro.vision.morphology import (
    binary_dilate,
    binary_erode,
    binary_open,
    binary_close,
    binary_dilate_oracle,
    binary_erode_oracle,
    binary_open_oracle,
    binary_close_oracle,
)
from repro.vision.connected_components import ConnectedComponentLabeller, label_components
from repro.vision.blobs import Blob, extract_blobs, extract_blobs_oracle, filter_blobs_by_area
from repro.vision.tracker import ObjectTracker, Track, TrackState

__all__ = [
    "Frame",
    "VideoSequence",
    "ActorSpec",
    "SceneConfig",
    "SyntheticSurveillanceScene",
    "default_actor_palette",
    "BackgroundModel",
    "BackgroundSubtractor",
    "binary_dilate",
    "binary_erode",
    "binary_open",
    "binary_close",
    "binary_dilate_oracle",
    "binary_erode_oracle",
    "binary_open_oracle",
    "binary_close_oracle",
    "ConnectedComponentLabeller",
    "label_components",
    "Blob",
    "extract_blobs",
    "extract_blobs_oracle",
    "filter_blobs_by_area",
    "ObjectTracker",
    "Track",
    "TrackState",
]
