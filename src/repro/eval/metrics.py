"""Classification metrics for the identification experiments.

The paper reports a single overall recognition accuracy ("the bSOM
recognition has less than 15.97% error"); the richer per-class breakdown and
confusion matrix here are used by the examples and by the error analysis in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError


def _validate_labels(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.ndim != 1 or y_pred.ndim != 1:
        raise DataError("labels must be one-dimensional arrays")
    if y_true.shape != y_pred.shape:
        raise DataError(
            f"true and predicted labels have different lengths "
            f"({y_true.shape[0]} vs {y_pred.shape[0]})"
        )
    if y_true.size == 0:
        raise DataError("cannot compute metrics on empty label arrays")
    return y_true, y_pred


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of predictions that exactly match the true label."""
    y_true, y_pred = _validate_labels(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def per_class_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> dict[int, float]:
    """Recognition accuracy restricted to each true class."""
    y_true, y_pred = _validate_labels(y_true, y_pred)
    result: dict[int, float] = {}
    for label in np.unique(y_true):
        members = y_true == label
        result[int(label)] = float(np.mean(y_pred[members] == label))
    return result


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, labels: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Confusion matrix ``C[i, j]`` = count of true label ``i`` predicted ``j``.

    Returns ``(matrix, labels)`` where ``labels`` gives the row/column order.
    Predicted labels not present in ``labels`` (e.g. the ``-1`` unknown
    label when it never appears among the true labels) get their own column
    appended at the end.
    """
    y_true, y_pred = _validate_labels(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {int(label): i for i, label in enumerate(labels)}
    matrix = np.zeros((labels.size, labels.size), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[index[int(t)], index[int(p)]] += 1
    return matrix, labels


@dataclass(frozen=True)
class ClassificationReport:
    """Summary of a classification run.

    Attributes
    ----------
    accuracy:
        Overall recognition accuracy.
    error_rate:
        ``1 - accuracy`` (the paper quotes this as "less than 15.97% error").
    per_class:
        Accuracy for each true class.
    confusion:
        Confusion matrix in the order given by :attr:`labels`.
    labels:
        Class labels indexing the confusion matrix.
    n_samples:
        Number of evaluated signatures.
    rejected_fraction:
        Fraction of predictions that were the unknown label (-1).
    """

    accuracy: float
    error_rate: float
    per_class: dict[int, float]
    confusion: np.ndarray
    labels: np.ndarray
    n_samples: int
    rejected_fraction: float


def classification_report(y_true: np.ndarray, y_pred: np.ndarray) -> ClassificationReport:
    """Build a :class:`ClassificationReport` from true and predicted labels."""
    y_true, y_pred = _validate_labels(y_true, y_pred)
    overall = accuracy(y_true, y_pred)
    matrix, labels = confusion_matrix(y_true, y_pred)
    return ClassificationReport(
        accuracy=overall,
        error_rate=1.0 - overall,
        per_class=per_class_accuracy(y_true, y_pred),
        confusion=matrix,
        labels=labels,
        n_samples=int(y_true.size),
        rejected_fraction=float(np.mean(y_pred == -1)),
    )
