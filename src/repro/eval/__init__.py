"""Evaluation harness: metrics, statistics and per-table experiment runners.

* :mod:`repro.eval.metrics` -- recognition accuracy, per-class accuracy and
  confusion matrices (the paper's headline metric is overall recognition
  accuracy on 1,139 held-out signatures).
* :mod:`repro.eval.stats` -- the one-tailed Wilcoxon rank-sum test used in
  Table II, implemented from first principles (and cross-checked against
  scipy in the test suite).
* :mod:`repro.eval.experiments` -- runnable reproductions of every table
  and figure in the paper; each returns a plain dataclass of results that
  the benchmarks and the ``paper_tables`` example render.
* :mod:`repro.eval.reporting` -- plain-text table rendering used by the
  examples and EXPERIMENTS.md.
"""

from repro.eval.metrics import (
    accuracy,
    per_class_accuracy,
    confusion_matrix,
    ClassificationReport,
    classification_report,
)
from repro.eval.stats import (
    WilcoxonResult,
    wilcoxon_rank_sum,
    rank_sum_statistic,
    normal_sf,
)
from repro.eval.experiments import (
    Table1Config,
    Table1Result,
    Table1Row,
    run_table1,
    Table2Row,
    run_table2,
    NeuronSweepConfig,
    NeuronSweepRow,
    run_neuron_sweep,
    Figure3Result,
    run_figure3,
)
from repro.eval.reporting import format_table, format_markdown_table

__all__ = [
    "accuracy",
    "per_class_accuracy",
    "confusion_matrix",
    "ClassificationReport",
    "classification_report",
    "WilcoxonResult",
    "wilcoxon_rank_sum",
    "rank_sum_statistic",
    "normal_sf",
    "Table1Config",
    "Table1Result",
    "Table1Row",
    "run_table1",
    "Table2Row",
    "run_table2",
    "NeuronSweepConfig",
    "NeuronSweepRow",
    "run_neuron_sweep",
    "Figure3Result",
    "run_figure3",
    "format_table",
    "format_markdown_table",
]
