"""Runnable reproductions of the paper's experiments (Tables I/II, figures).

Each ``run_*`` function reproduces one table or figure of the paper's
evaluation on the synthetic surveillance dataset.  They return plain result
dataclasses; rendering (text tables, markdown) is left to
:mod:`repro.eval.reporting` and to the examples.

Protocol notes
--------------
* "Iterations" in Table I are full passes (epochs) over the training
  signatures, which is how the experiment is run here.
* The cSOM baseline uses a slow learning-rate schedule
  (:data:`TABLE1_CSOM_LEARNING_RATE`) so that its convergence happens on
  the same iteration scale as the paper's Table I -- the conventional SOM
  in the paper clearly improves between 10 and 500 iterations, and a fast
  schedule would saturate within the first iteration on this dataset.  The
  asymptotic accuracy is unaffected by this choice; only the approach to it
  is stretched out.  The choice is called out in EXPERIMENTS.md.
* The bSOM uses the library defaults (full winner rule, stochastic
  neighbour rule, stepwise 4..1 neighbourhood).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro._rng import SeedLike, as_generator, spawn
from repro.core.bsom import BinarySom
from repro.core.classifier import SomClassifier
from repro.core.csom import KohonenSom, LearningRateSchedule
from repro.datasets.surveillance import SurveillanceDataset, make_surveillance_dataset
from repro.errors import ConfigurationError
from repro.eval.stats import WilcoxonResult, wilcoxon_rank_sum

#: The 14 iteration counts of Table I.
PAPER_ITERATIONS: tuple[int, ...] = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 200, 300, 400, 500)

#: Learning-rate schedule used for the cSOM baseline in the Table I protocol.
TABLE1_CSOM_LEARNING_RATE = LearningRateSchedule(initial=0.02, final=0.001)


# --------------------------------------------------------------------------- #
# Table I -- accuracy vs iterations for cSOM and bSOM
# --------------------------------------------------------------------------- #
@dataclass
class Table1Config:
    """Configuration of the Table I experiment.

    The defaults follow the paper (14 iteration counts, 10 repetitions,
    40 neurons, paper-scale dataset); benchmarks shrink ``iterations``,
    ``repetitions`` and ``dataset_scale`` to keep the run time reasonable
    and record the reduction in EXPERIMENTS.md.
    """

    iterations: Sequence[int] = PAPER_ITERATIONS
    repetitions: int = 10
    n_neurons: int = 40
    dataset_scale: float = 1.0
    dataset_seed: int = 2010
    seed: int = 7
    csom_learning_rate: LearningRateSchedule = field(
        default_factory=lambda: TABLE1_CSOM_LEARNING_RATE
    )

    def __post_init__(self) -> None:
        if not self.iterations:
            raise ConfigurationError("at least one iteration count is required")
        if any(i <= 0 for i in self.iterations):
            raise ConfigurationError("iteration counts must be positive")
        if self.repetitions <= 0:
            raise ConfigurationError(
                f"repetitions must be positive, got {self.repetitions}"
            )
        if self.n_neurons <= 0:
            raise ConfigurationError(f"n_neurons must be positive, got {self.n_neurons}")


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I: the two algorithms at one iteration count."""

    iterations: int
    csom_scores: tuple[float, ...]
    bsom_scores: tuple[float, ...]

    @property
    def csom_mean(self) -> float:
        return float(np.mean(self.csom_scores))

    @property
    def bsom_mean(self) -> float:
        return float(np.mean(self.bsom_scores))

    @property
    def csom_std(self) -> float:
        return float(np.std(self.csom_scores))

    @property
    def bsom_std(self) -> float:
        return float(np.std(self.bsom_scores))


@dataclass
class Table1Result:
    """All rows of the Table I reproduction plus the data used."""

    rows: list[Table1Row]
    config: Table1Config
    dataset_summary: dict

    def row(self, iterations: int) -> Table1Row:
        for row in self.rows:
            if row.iterations == iterations:
                return row
        raise ConfigurationError(f"no Table I row for {iterations} iterations")


def _fit_and_score(
    som, dataset: SurveillanceDataset, epochs: int, seed: np.random.Generator
) -> float:
    classifier = SomClassifier(som)
    classifier.fit(
        dataset.train_signatures,
        dataset.train_labels,
        epochs=epochs,
        seed=seed,
        record_history=False,
    )
    return classifier.score(dataset.test_signatures, dataset.test_labels)


def run_table1(
    dataset: Optional[SurveillanceDataset] = None,
    config: Optional[Table1Config] = None,
) -> Table1Result:
    """Reproduce Table I: mean recognition accuracy of cSOM and bSOM.

    For every iteration count the experiment trains ``repetitions``
    independent maps of each kind (fresh random weights and presentation
    order per repetition) and records the test accuracy of each run.
    """
    config = config or Table1Config()
    if dataset is None:
        dataset = make_surveillance_dataset(
            scale=config.dataset_scale, seed=config.dataset_seed
        )
    master = as_generator(config.seed)
    rows: list[Table1Row] = []
    for iterations in config.iterations:
        csom_scores: list[float] = []
        bsom_scores: list[float] = []
        for rep_rng in spawn(master, config.repetitions):
            init_seed = int(rep_rng.integers(0, 2**31 - 1))
            order_seed = int(rep_rng.integers(0, 2**31 - 1))
            bsom = BinarySom(config.n_neurons, dataset.n_bits, seed=init_seed)
            csom = KohonenSom(
                config.n_neurons,
                dataset.n_bits,
                seed=init_seed,
                learning_rate=config.csom_learning_rate,
            )
            bsom_scores.append(
                _fit_and_score(bsom, dataset, iterations, np.random.default_rng(order_seed))
            )
            csom_scores.append(
                _fit_and_score(csom, dataset, iterations, np.random.default_rng(order_seed))
            )
        rows.append(
            Table1Row(
                iterations=int(iterations),
                csom_scores=tuple(csom_scores),
                bsom_scores=tuple(bsom_scores),
            )
        )
    return Table1Result(rows=rows, config=config, dataset_summary=dataset.summary())


# --------------------------------------------------------------------------- #
# Table II -- Wilcoxon rank-sum tests on the Table I repetitions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Table2Row:
    """One row of Table II: the rank-sum test at one iteration count.

    The ``symbol`` column follows the paper's notation: ``">"`` when bSOM is
    significantly better, ``"<"`` when cSOM is significantly better and
    ``"-"`` when there is no significant difference at the 5% level.
    """

    iterations: int
    csom_mean_rank: float
    bsom_mean_rank: float
    z: float
    p_value: float
    symbol: str
    result: WilcoxonResult


def run_table2(table1: Table1Result, alpha: float = 0.05) -> list[Table2Row]:
    """Reproduce Table II from a Table I result.

    As in the paper, a one-tailed test is run in the direction of the
    observed mean difference at each iteration count: if bSOM's mean
    accuracy is higher the alternative is "bSOM > cSOM", otherwise
    "cSOM > bSOM".  The ``z`` statistic is reported with the paper's sign
    convention (cSOM ranks minus expectation), so bSOM being better gives a
    negative ``z``.
    """
    rows: list[Table2Row] = []
    for row in table1.rows:
        csom = np.array(row.csom_scores)
        bsom = np.array(row.bsom_scores)
        if row.bsom_mean >= row.csom_mean:
            alternative = "less"  # cSOM < bSOM
        else:
            alternative = "greater"  # cSOM > bSOM
        result = wilcoxon_rank_sum(csom, bsom, alternative=alternative, alpha=alpha)
        if not result.significant:
            symbol = "-"
        elif row.bsom_mean >= row.csom_mean:
            symbol = ">"
        else:
            symbol = "<"
        rows.append(
            Table2Row(
                iterations=row.iterations,
                csom_mean_rank=result.mean_rank_a,
                bsom_mean_rank=result.mean_rank_b,
                z=result.z,
                p_value=result.p_value,
                symbol=symbol,
                result=result,
            )
        )
    return rows


# --------------------------------------------------------------------------- #
# Section IV -- neuron count sweep (10..100 neurons)
# --------------------------------------------------------------------------- #
@dataclass
class NeuronSweepConfig:
    """Configuration of the neuron-count sweep of section IV."""

    neuron_counts: Sequence[int] = tuple(range(10, 101, 10))
    repetitions: int = 3
    epochs: int = 30
    dataset_scale: float = 1.0
    dataset_seed: int = 2010
    seed: int = 11

    def __post_init__(self) -> None:
        if not self.neuron_counts:
            raise ConfigurationError("at least one neuron count is required")
        if any(n <= 0 for n in self.neuron_counts):
            raise ConfigurationError("neuron counts must be positive")
        if self.repetitions <= 0 or self.epochs <= 0:
            raise ConfigurationError("repetitions and epochs must be positive")


@dataclass(frozen=True)
class NeuronSweepRow:
    """Accuracy and neuron usage at one map size, for both algorithms."""

    n_neurons: int
    bsom_accuracy: float
    csom_accuracy: float
    bsom_used_neurons: float
    csom_used_neurons: float


def run_neuron_sweep(
    dataset: Optional[SurveillanceDataset] = None,
    config: Optional[NeuronSweepConfig] = None,
) -> list[NeuronSweepRow]:
    """Sweep the map size as in section IV.

    The paper observes that both SOMs exceed 90% recognition once the map
    has more than 50 neurons, at the price of neurons that never win a
    pattern.  The returned rows record mean accuracy and the mean number of
    *used* neurons for each size.
    """
    config = config or NeuronSweepConfig()
    if dataset is None:
        dataset = make_surveillance_dataset(
            scale=config.dataset_scale, seed=config.dataset_seed
        )
    master = as_generator(config.seed)
    rows: list[NeuronSweepRow] = []
    for n_neurons in config.neuron_counts:
        bsom_accuracies, csom_accuracies = [], []
        bsom_used, csom_used = [], []
        for rep_rng in spawn(master, config.repetitions):
            init_seed = int(rep_rng.integers(0, 2**31 - 1))
            order_seed = int(rep_rng.integers(0, 2**31 - 1))
            bsom = BinarySom(n_neurons, dataset.n_bits, seed=init_seed)
            csom = KohonenSom(
                n_neurons,
                dataset.n_bits,
                seed=init_seed,
                learning_rate=TABLE1_CSOM_LEARNING_RATE,
            )
            bsom_accuracies.append(
                _fit_and_score(bsom, dataset, config.epochs, np.random.default_rng(order_seed))
            )
            csom_accuracies.append(
                _fit_and_score(csom, dataset, config.epochs, np.random.default_rng(order_seed))
            )
            bsom_used.append(int((bsom.neuron_usage(dataset.train_signatures) > 0).sum()))
            csom_used.append(int((csom.neuron_usage(dataset.train_signatures) > 0).sum()))
        rows.append(
            NeuronSweepRow(
                n_neurons=int(n_neurons),
                bsom_accuracy=float(np.mean(bsom_accuracies)),
                csom_accuracy=float(np.mean(csom_accuracies)),
                bsom_used_neurons=float(np.mean(bsom_used)),
                csom_used_neurons=float(np.mean(csom_used)),
            )
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 3 -- per-object signatures over time
# --------------------------------------------------------------------------- #
@dataclass
class Figure3Result:
    """Signature history matrices for a few identities (figure 3).

    Attributes
    ----------
    identities:
        The identities included.
    signature_matrices:
        For each identity, a ``(time, n_bits)`` matrix of its training
        signatures in temporal order.
    within_identity_distance:
        Mean pairwise Hamming distance between signatures of the same
        identity (the "consistency" visible in figure 3).
    between_identity_distance:
        Mean Hamming distance between signatures of different identities
        (should be clearly larger than within-identity).
    """

    identities: list[int]
    signature_matrices: dict[int, np.ndarray]
    within_identity_distance: float
    between_identity_distance: float


def run_figure3(
    dataset: Optional[SurveillanceDataset] = None,
    identities: Optional[Sequence[int]] = None,
    max_rows_per_identity: int = 200,
    seed: SeedLike = 0,
) -> Figure3Result:
    """Reproduce figure 3: binary signatures of selected objects over time."""
    if dataset is None:
        dataset = make_surveillance_dataset(scale=0.25, seed=2010)
    labels = np.unique(dataset.train_labels)
    if identities is None:
        identities = labels[:3].tolist()
    matrices: dict[int, np.ndarray] = {}
    for identity in identities:
        if identity not in labels:
            raise ConfigurationError(f"identity {identity} is not in the dataset")
        matrix = dataset.signatures_for_identity(int(identity), "train")
        matrices[int(identity)] = matrix[:max_rows_per_identity]

    rng = as_generator(seed)
    X, y = dataset.train_signatures, dataset.train_labels
    sample = rng.choice(X.shape[0], size=min(400, X.shape[0]), replace=False)
    Xs, ys = X[sample], y[sample]
    distances = (Xs[:, np.newaxis, :] != Xs[np.newaxis, :, :]).sum(axis=2)
    same = ys[:, np.newaxis] == ys[np.newaxis, :]
    off_diagonal = ~np.eye(Xs.shape[0], dtype=bool)
    within = float(distances[same & off_diagonal].mean())
    between = float(distances[~same].mean())
    return Figure3Result(
        identities=[int(i) for i in identities],
        signature_matrices=matrices,
        within_identity_distance=within,
        between_identity_distance=between,
    )
