"""The Wilcoxon rank-sum test used for Table II, from first principles.

Table II of the paper applies a one-tailed Wilcoxon rank-sum (Mann-Whitney)
test to the ten repetitions of each Table I cell, reporting the mean rank of
each algorithm, the ``z`` statistic of the normal approximation and whether
the difference is significant at the 5% level.  This module implements the
test directly (average ranks for ties, tie-corrected variance, normal
approximation) so the library has no runtime dependency on scipy; the unit
tests cross-check the p-values against :func:`scipy.stats.ranksums` and
:func:`scipy.stats.mannwhitneyu` when scipy is available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DataError

_VALID_ALTERNATIVES = ("two-sided", "greater", "less")


def normal_sf(z: float) -> float:
    """Survival function of the standard normal distribution, ``P(Z > z)``."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def _rank_with_ties(values: np.ndarray) -> np.ndarray:
    """Ranks (1-based) with tied values receiving their average rank."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_values = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        average_rank = 0.5 * (i + j) + 1.0
        ranks[order[i : j + 1]] = average_rank
        i = j + 1
    return ranks


def rank_sum_statistic(a: np.ndarray, b: np.ndarray) -> tuple[float, float, float]:
    """Mean ranks of the two samples and the tie-corrected ``z`` statistic.

    The ``z`` statistic is positive when sample ``a`` tends to have *larger*
    values than sample ``b`` (so Table II's negative ``z`` for cSOM-vs-bSOM
    at low iteration counts means cSOM ranked lower, i.e. bSOM performed
    better).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1:
        raise DataError("samples must be one-dimensional arrays")
    if a.size == 0 or b.size == 0:
        raise DataError("both samples must be non-empty")
    n_a, n_b = a.size, b.size
    n = n_a + n_b
    combined = np.concatenate([a, b])
    ranks = _rank_with_ties(combined)
    rank_sum_a = float(ranks[:n_a].sum())
    mean_rank_a = rank_sum_a / n_a
    mean_rank_b = float(ranks[n_a:].sum()) / n_b

    expected = n_a * (n + 1) / 2.0
    # Tie correction to the variance of the rank sum.
    _, tie_counts = np.unique(combined, return_counts=True)
    tie_term = float(np.sum(tie_counts**3 - tie_counts))
    variance = (n_a * n_b / 12.0) * ((n + 1) - tie_term / (n * (n - 1)))
    if variance <= 0.0:
        # Every value identical: no evidence either way.
        return mean_rank_a, mean_rank_b, 0.0
    z = (rank_sum_a - expected) / math.sqrt(variance)
    return mean_rank_a, mean_rank_b, z


@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of a Wilcoxon rank-sum comparison of two samples.

    Attributes
    ----------
    mean_rank_a, mean_rank_b:
        Mean rank of each sample in the pooled ranking (Table II's first two
        columns).
    z:
        Normal-approximation test statistic; positive when sample ``a``
        tends to be larger.
    p_value:
        p-value under the requested alternative.
    alternative:
        ``"two-sided"``, ``"greater"`` (a > b) or ``"less"`` (a < b).
    significant:
        Whether ``p_value`` is below the significance level used.
    alpha:
        The significance level (the paper uses 5%).
    """

    mean_rank_a: float
    mean_rank_b: float
    z: float
    p_value: float
    alternative: str
    significant: bool
    alpha: float

    def verdict(self, name_a: str = "a", name_b: str = "b") -> str:
        """Human-readable verdict in the style of Table II's symbols.

        Returns ``"<name_a> better"`` / ``"<name_b> better"`` when the
        difference is significant, or ``"no significant difference"``.
        """
        if not self.significant:
            return "no significant difference"
        if self.z > 0:
            return f"{name_a} better"
        return f"{name_b} better"


def wilcoxon_rank_sum(
    a: np.ndarray,
    b: np.ndarray,
    *,
    alternative: str = "two-sided",
    alpha: float = 0.05,
) -> WilcoxonResult:
    """One- or two-tailed Wilcoxon rank-sum test between samples ``a`` and ``b``.

    Parameters
    ----------
    a, b:
        The two independent samples (in the paper, ten recognition
        accuracies of cSOM and ten of bSOM at one iteration count).
    alternative:
        ``"greater"`` tests whether ``a`` tends to exceed ``b``; ``"less"``
        the opposite; ``"two-sided"`` tests for any difference.  The paper
        runs one-tailed tests in the direction of the observed mean
        difference.
    alpha:
        Significance level (paper: 0.05).
    """
    if alternative not in _VALID_ALTERNATIVES:
        raise ConfigurationError(
            f"alternative must be one of {_VALID_ALTERNATIVES}, got {alternative!r}"
        )
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must lie strictly between 0 and 1, got {alpha}")
    mean_rank_a, mean_rank_b, z = rank_sum_statistic(a, b)
    if alternative == "greater":
        p_value = normal_sf(z)
    elif alternative == "less":
        p_value = normal_sf(-z)
    else:
        p_value = 2.0 * normal_sf(abs(z))
    p_value = min(max(p_value, 0.0), 1.0)
    return WilcoxonResult(
        mean_rank_a=mean_rank_a,
        mean_rank_b=mean_rank_b,
        z=z,
        p_value=p_value,
        alternative=alternative,
        significant=bool(p_value < alpha),
        alpha=alpha,
    )
