"""Plain-text and markdown table rendering for experiment results.

The examples and EXPERIMENTS.md use these helpers to print results in a
layout that can be compared side by side with the paper's tables.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import DataError


def _normalise_rows(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> list[list[str]]:
    rendered: list[list[str]] = []
    width = len(headers)
    for row in rows:
        cells = ["" if cell is None else str(cell) for cell in row]
        if len(cells) != width:
            raise DataError(
                f"row has {len(cells)} cells but the table has {width} columns"
            )
        rendered.append(cells)
    return rendered


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table with column-aligned cells."""
    if not headers:
        raise DataError("a table needs at least one column")
    rendered = _normalise_rows(headers, rows)
    widths = [len(str(h)) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table (used by EXPERIMENTS.md)."""
    if not headers:
        raise DataError("a table needs at least one column")
    rendered = _normalise_rows(headers, rows)
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rendered:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def format_percentage(value: float, decimals: int = 2) -> str:
    """Format a fraction as a percentage string (``0.8532 -> '85.32%'``)."""
    return f"{100.0 * value:.{decimals}f}%"
