"""Binary appearance signatures extracted from colour histograms.

This subpackage implements section III-A of the paper: a segmented moving
object's silhouette is summarised as a 768-bin RGB colour histogram (256
bins per channel), which is then binarised by thresholding every bin at the
mean bin count (equations 1 and 2).  The resulting 768-bit *binary
signature* is the only representation the bSOM ever sees.

Public API
----------

:class:`ColourHistogram`
    Accumulates an RGB histogram from silhouette pixels.
:func:`rgb_histogram`
    One-shot histogram extraction from an image + mask.
:func:`rgb_histogram_batch`
    All silhouettes of a frame histogrammed in one offset-``bincount``.
:func:`binarize_histogram`
    Mean-threshold binarisation (equation 1/2 of the paper).
:func:`extract_signature`
    Convenience: image + mask -> packed binary signature.
:class:`BinarySignature`
    Immutable value object wrapping a binary vector with helpers for
    packing, Hamming distance and reshaping to the 32x24 image the FPGA
    design streams in.
"""

from repro.signatures.histogram import (
    ColourHistogram,
    HISTOGRAM_BINS,
    BINS_PER_CHANNEL,
    rgb_histogram,
    rgb_histogram_batch,
)
from repro.signatures.binarize import (
    ThresholdStrategy,
    MeanThreshold,
    MedianThreshold,
    FixedFractionThreshold,
    binarize_histogram,
    mean_threshold,
)
from repro.signatures.packing import (
    pack_bits,
    unpack_bits,
    pack_signature_batch,
    packed_signature_words,
    signature_key,
    signature_to_image,
    image_to_signature,
)
from repro.signatures.signature import BinarySignature, extract_signature
from repro.signatures.features import (
    ExtendedFeatureExtractor,
    ShapeFeatures,
    shape_features,
)

__all__ = [
    "ColourHistogram",
    "HISTOGRAM_BINS",
    "BINS_PER_CHANNEL",
    "rgb_histogram",
    "rgb_histogram_batch",
    "ThresholdStrategy",
    "MeanThreshold",
    "MedianThreshold",
    "FixedFractionThreshold",
    "binarize_histogram",
    "mean_threshold",
    "pack_bits",
    "unpack_bits",
    "pack_signature_batch",
    "packed_signature_words",
    "signature_key",
    "signature_to_image",
    "image_to_signature",
    "BinarySignature",
    "extract_signature",
    "ExtendedFeatureExtractor",
    "ShapeFeatures",
    "shape_features",
]
