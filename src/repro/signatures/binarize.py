"""Histogram binarisation strategies (equations 1 and 2 of the paper).

The paper converts a histogram into a binary signature by thresholding every
bin at the mean bin count::

    theta = sum(bin_i) / n_bins          (equation 1)
    x_i   = 1 if bin_i >= theta else 0   (equation 2)

The mean threshold is the paper's choice; :class:`MedianThreshold` and
:class:`FixedFractionThreshold` are provided for the ablation study on the
binarisation rule (see ``benchmarks/test_ablation_threshold.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError, DataError


def _validate_histogram(histogram: np.ndarray) -> np.ndarray:
    histogram = np.asarray(histogram, dtype=np.float64)
    if histogram.ndim != 1:
        raise DataError(
            f"expected a one-dimensional histogram, got shape {histogram.shape}"
        )
    if histogram.size == 0:
        raise DataError("cannot binarise an empty histogram")
    if np.any(histogram < 0):
        raise DataError("histogram bins must be non-negative")
    return histogram


class ThresholdStrategy(ABC):
    """Strategy object that maps a histogram to a scalar threshold."""

    @abstractmethod
    def threshold(self, histogram: np.ndarray) -> float:
        """Return the threshold value ``theta`` for ``histogram``."""

    def binarize(self, histogram: np.ndarray) -> np.ndarray:
        """Binarise ``histogram``: 1 where ``bin >= theta``, else 0."""
        histogram = _validate_histogram(histogram)
        theta = self.threshold(histogram)
        return (histogram >= theta).astype(np.uint8)

    def binarize_batch(self, histograms: np.ndarray) -> np.ndarray:
        """Binarise a ``(n, bins)`` stack of histograms row by row.

        The base implementation loops over rows; strategies whose threshold
        is a simple row reduction (the paper's mean rule) override it with
        one array expression so a frame's worth of silhouettes binarises in
        a single pass.
        """
        histograms = np.asarray(histograms)
        if histograms.ndim != 2:
            raise DataError(
                f"expected a (n, bins) histogram stack, got shape {histograms.shape}"
            )
        if histograms.shape[0] == 0:
            return np.zeros(histograms.shape, dtype=np.uint8)
        return np.stack([self.binarize(row) for row in histograms])

    def __call__(self, histogram: np.ndarray) -> np.ndarray:
        return self.binarize(histogram)


class MeanThreshold(ThresholdStrategy):
    """The paper's rule: threshold at the mean of all bins (equation 1)."""

    def threshold(self, histogram: np.ndarray) -> float:
        histogram = _validate_histogram(histogram)
        return float(histogram.mean())

    def binarize_batch(self, histograms: np.ndarray) -> np.ndarray:
        """Vectorized equation 2: every row thresholded at its own mean."""
        histograms = np.asarray(histograms, dtype=np.float64)
        if histograms.ndim != 2:
            raise DataError(
                f"expected a (n, bins) histogram stack, got shape {histograms.shape}"
            )
        if histograms.shape[0] == 0:
            return np.zeros(histograms.shape, dtype=np.uint8)
        if histograms.shape[1] == 0:
            raise DataError("cannot binarise an empty histogram")
        if np.any(histograms < 0):
            raise DataError("histogram bins must be non-negative")
        thetas = histograms.mean(axis=1, keepdims=True)
        return (histograms >= thetas).astype(np.uint8)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "MeanThreshold()"


class MedianThreshold(ThresholdStrategy):
    """Ablation alternative: threshold at the median bin count.

    For the sparse histograms produced by small silhouettes the median is
    frequently zero, which makes every non-empty bin fire; the ablation
    benchmark quantifies how much worse this is than the mean rule.
    """

    def threshold(self, histogram: np.ndarray) -> float:
        histogram = _validate_histogram(histogram)
        return float(np.median(histogram))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "MedianThreshold()"


class FixedFractionThreshold(ThresholdStrategy):
    """Ablation alternative: keep the top ``fraction`` of bins set.

    The threshold is chosen as the ``(1 - fraction)`` quantile of the bin
    counts, so roughly ``fraction * n_bins`` bits end up set regardless of
    the silhouette size.  This gives signatures of near-constant weight,
    which is convenient for hardware but discards the object-size cue the
    mean rule keeps.
    """

    def __init__(self, fraction: float = 0.25):
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError(
                f"fraction must lie strictly between 0 and 1, got {fraction}"
            )
        self.fraction = float(fraction)

    def threshold(self, histogram: np.ndarray) -> float:
        histogram = _validate_histogram(histogram)
        return float(np.quantile(histogram, 1.0 - self.fraction))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedFractionThreshold(fraction={self.fraction})"


def mean_threshold(histogram: np.ndarray) -> float:
    """Equation 1: the mean bin count of ``histogram``."""
    return MeanThreshold().threshold(histogram)


def binarize_histogram(
    histogram: np.ndarray,
    strategy: ThresholdStrategy | None = None,
) -> np.ndarray:
    """Convert ``histogram`` into a binary vector (equation 2).

    Parameters
    ----------
    histogram:
        One-dimensional array of non-negative bin counts.
    strategy:
        Threshold rule; defaults to the paper's :class:`MeanThreshold`.

    Returns
    -------
    numpy.ndarray
        A ``uint8`` vector of zeros and ones with the same length as
        ``histogram``.
    """
    strategy = strategy or MeanThreshold()
    return strategy.binarize(histogram)
