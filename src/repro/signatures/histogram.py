"""RGB colour histograms over segmented object silhouettes.

The paper (section III-A) builds a 768-bin histogram for every segmented
moving object: 256 bins for each of the red, green and blue channels,
counting only the pixels inside the object's silhouette mask.  The
histogram is deliberately simple -- it is cheap to compute, invariant to
the object's position and (largely) to its pose, and it converts directly
into a binary signature by mean thresholding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, DataError

#: Number of bins per colour channel used throughout the paper.
BINS_PER_CHANNEL = 256

#: Total histogram length (three concatenated channels).
HISTOGRAM_BINS = 3 * BINS_PER_CHANNEL


def _validate_image(image: np.ndarray) -> np.ndarray:
    """Check that ``image`` is an ``HxWx3`` uint8-compatible RGB array."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise DataError(
            f"expected an HxWx3 RGB image, got an array of shape {image.shape}"
        )
    if image.dtype != np.uint8:
        if np.issubdtype(image.dtype, np.integer):
            if image.min(initial=0) < 0 or image.max(initial=0) > 255:
                raise DataError("integer image values must lie in [0, 255]")
            image = image.astype(np.uint8)
        else:
            raise DataError(
                f"expected an integer image with values in [0, 255], got dtype "
                f"{image.dtype}"
            )
    return image


def _validate_mask(mask: np.ndarray, image_shape: tuple[int, ...]) -> np.ndarray:
    """Check that ``mask`` is a boolean ``HxW`` array matching ``image_shape``."""
    mask = np.asarray(mask)
    if mask.ndim != 2:
        raise DataError(f"expected an HxW mask, got an array of shape {mask.shape}")
    if mask.shape != image_shape[:2]:
        raise DataError(
            f"mask shape {mask.shape} does not match image shape {image_shape[:2]}"
        )
    return mask.astype(bool)


@dataclass
class ColourHistogram:
    """An accumulating RGB colour histogram.

    The histogram can be filled incrementally from several frames of the
    same object (useful for the on-line training extension described in the
    paper's conclusion) or in one shot via :func:`rgb_histogram`.

    Parameters
    ----------
    bins_per_channel:
        Number of bins per colour channel.  The paper uses 256 so that each
        8-bit intensity maps to its own bin; coarser histograms are allowed
        for experimentation and for the small illustrative example of
        figure 2.
    """

    bins_per_channel: int = BINS_PER_CHANNEL
    counts: np.ndarray = field(init=False)
    pixel_count: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.bins_per_channel <= 0:
            raise ConfigurationError(
                f"bins_per_channel must be positive, got {self.bins_per_channel}"
            )
        if 256 % self.bins_per_channel != 0:
            raise ConfigurationError(
                "bins_per_channel must divide 256 so that intensities map uniformly "
                f"to bins, got {self.bins_per_channel}"
            )
        self.counts = np.zeros(3 * self.bins_per_channel, dtype=np.int64)

    @property
    def total_bins(self) -> int:
        """Total length of the concatenated histogram."""
        return 3 * self.bins_per_channel

    def add_pixels(self, pixels: np.ndarray) -> None:
        """Accumulate an ``Nx3`` array of RGB pixels into the histogram."""
        pixels = np.asarray(pixels)
        if pixels.ndim != 2 or pixels.shape[1] != 3:
            raise DataError(
                f"expected an Nx3 array of RGB pixels, got shape {pixels.shape}"
            )
        if pixels.size == 0:
            return
        if pixels.min() < 0 or pixels.max() > 255:
            raise DataError("pixel values must lie in [0, 255]")
        shrink = 256 // self.bins_per_channel
        binned = pixels.astype(np.int64) // shrink
        for channel in range(3):
            channel_counts = np.bincount(
                binned[:, channel], minlength=self.bins_per_channel
            )
            start = channel * self.bins_per_channel
            self.counts[start : start + self.bins_per_channel] += channel_counts
        self.pixel_count += int(pixels.shape[0])

    def add_image(self, image: np.ndarray, mask: np.ndarray | None = None) -> None:
        """Accumulate every pixel of ``image`` under ``mask`` (silhouette)."""
        image = _validate_image(image)
        if mask is None:
            pixels = image.reshape(-1, 3)
        else:
            mask = _validate_mask(mask, image.shape)
            pixels = image[mask]
        self.add_pixels(pixels)

    def merge(self, other: "ColourHistogram") -> "ColourHistogram":
        """Return a new histogram that is the sum of ``self`` and ``other``."""
        if other.bins_per_channel != self.bins_per_channel:
            raise ConfigurationError(
                "cannot merge histograms with different bins_per_channel "
                f"({self.bins_per_channel} vs {other.bins_per_channel})"
            )
        merged = ColourHistogram(self.bins_per_channel)
        merged.counts = self.counts + other.counts
        merged.pixel_count = self.pixel_count + other.pixel_count
        return merged

    def normalised(self) -> np.ndarray:
        """Return the histogram normalised to sum to one (empty -> zeros)."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts.astype(np.float64) / float(total)

    def channel(self, index: int) -> np.ndarray:
        """Return the slice of counts belonging to colour channel ``index``."""
        if index not in (0, 1, 2):
            raise ConfigurationError(f"channel index must be 0, 1 or 2, got {index}")
        start = index * self.bins_per_channel
        return self.counts[start : start + self.bins_per_channel].copy()

    def reset(self) -> None:
        """Clear all accumulated counts."""
        self.counts[:] = 0
        self.pixel_count = 0


def rgb_histogram(
    image: np.ndarray,
    mask: np.ndarray | None = None,
    bins_per_channel: int = BINS_PER_CHANNEL,
) -> np.ndarray:
    """Compute the concatenated RGB histogram of ``image`` under ``mask``.

    This is the one-shot functional form of :class:`ColourHistogram` and is
    what the tracking substrate calls per frame, per object.

    Parameters
    ----------
    image:
        ``HxWx3`` RGB image with integer values in ``[0, 255]``.
    mask:
        Optional ``HxW`` boolean silhouette; when omitted the whole image is
        used.
    bins_per_channel:
        Bins per colour channel (paper default 256, total 768).

    Returns
    -------
    numpy.ndarray
        Integer array of length ``3 * bins_per_channel``.
    """
    histogram = ColourHistogram(bins_per_channel)
    histogram.add_image(image, mask)
    return histogram.counts.copy()


def rgb_histogram_batch(
    image: np.ndarray,
    regions,
    bins_per_channel: int = BINS_PER_CHANNEL,
) -> np.ndarray:
    """Histogram every silhouette of a frame in one ``np.bincount`` call.

    Pixel values of all regions are gathered into one array, offset by
    ``region_index * 3 * bins + channel * bins`` and counted with a single
    ``np.bincount`` -- one pass regardless of how many objects the frame
    contains, which is what feeds the frame-batched ``predict_batch``
    classification path.

    Parameters
    ----------
    image:
        ``HxWx3`` RGB image with integer values in ``[0, 255]``.
    regions:
        Sequence of silhouettes; each entry is either a full-frame ``HxW``
        boolean mask or a ``(bounding_box, cropped_mask)`` pair with the
        ``(top, left, bottom, right)`` box convention of
        :class:`repro.vision.blobs.Blob` (pass ``(blob.bounding_box,
        blob.crop_mask())`` to avoid materialising full-frame masks).
    bins_per_channel:
        Bins per colour channel (paper default 256, total 768).

    Returns
    -------
    numpy.ndarray
        ``(len(regions), 3 * bins_per_channel)`` int64 array whose row
        ``i`` equals ``rgb_histogram(image, regions[i], bins_per_channel)``.
    """
    image = _validate_image(image)
    # Instantiating validates bins_per_channel (positive, divides 256).
    total_bins = ColourHistogram(bins_per_channel).total_bins
    n_regions = len(regions)
    if n_regions == 0:
        return np.zeros((0, total_bins), dtype=np.int64)

    pixel_groups: list[np.ndarray] = []
    group_sizes = np.empty(n_regions, dtype=np.int64)
    for i, region in enumerate(regions):
        if isinstance(region, tuple):
            (top, left, bottom, right), cropped = region
            cropped = np.asarray(cropped, dtype=bool)
            window = image[top:bottom, left:right]
            if cropped.shape != window.shape[:2]:
                raise DataError(
                    f"cropped mask shape {cropped.shape} does not match its "
                    f"bounding box {(top, left, bottom, right)}"
                )
            pixels = window[cropped]
        else:
            mask = _validate_mask(np.asarray(region), image.shape)
            pixels = image[mask]
        pixel_groups.append(pixels)
        group_sizes[i] = pixels.shape[0]

    pixels = np.concatenate(pixel_groups, axis=0)
    if pixels.shape[0] == 0:
        return np.zeros((n_regions, total_bins), dtype=np.int64)
    shrink = 256 // bins_per_channel
    binned = pixels.astype(np.int64) // shrink
    # Offset each pixel's three bin indices into its region's row and its
    # channel's band: region * 3*bins + channel * bins + bin.
    region_of_pixel = np.repeat(
        np.arange(n_regions, dtype=np.int64) * total_bins, group_sizes
    )
    binned += np.arange(3, dtype=np.int64) * bins_per_channel
    binned += region_of_pixel[:, np.newaxis]
    counts = np.bincount(binned.ravel(), minlength=n_regions * total_bins)
    return counts.reshape(n_regions, total_bins)
