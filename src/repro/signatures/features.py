"""Extended invariant appearance features (paper's future-work section).

The conclusion of the paper lists "the use of more sophisticated invariant
features for identification" as future work.  This module provides a modest
realisation of that extension: simple shape statistics of the silhouette
(area, aspect ratio, fill ratio, vertical profile) that can be binarised and
appended to the colour signature.  The extension is exercised by the
``online_learning`` example and its own tests, and keeps the same binary
representation so the bSOM consumes it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.signatures.binarize import MeanThreshold, ThresholdStrategy


@dataclass(frozen=True)
class ShapeFeatures:
    """Scalar shape statistics of a silhouette mask.

    Attributes
    ----------
    area:
        Number of foreground pixels.
    height, width:
        Bounding-box dimensions (zero for an empty mask).
    aspect_ratio:
        ``height / width`` (zero for an empty mask).
    fill_ratio:
        ``area / (height * width)`` -- how much of the bounding box the
        silhouette occupies.
    vertical_profile:
        Fraction of foreground pixels in each of ``profile_bands``
        horizontal bands of the bounding box (head/torso/legs style cue).
    """

    area: int
    height: int
    width: int
    aspect_ratio: float
    fill_ratio: float
    vertical_profile: tuple[float, ...]


def shape_features(mask: np.ndarray, profile_bands: int = 8) -> ShapeFeatures:
    """Compute :class:`ShapeFeatures` for a boolean silhouette ``mask``."""
    mask = np.asarray(mask)
    if mask.ndim != 2:
        raise DataError(f"expected a 2-D mask, got shape {mask.shape}")
    if profile_bands <= 0:
        raise ConfigurationError(f"profile_bands must be positive, got {profile_bands}")
    mask = mask.astype(bool)
    area = int(mask.sum())
    if area == 0:
        return ShapeFeatures(
            area=0,
            height=0,
            width=0,
            aspect_ratio=0.0,
            fill_ratio=0.0,
            vertical_profile=tuple(0.0 for _ in range(profile_bands)),
        )
    rows = np.any(mask, axis=1)
    cols = np.any(mask, axis=0)
    top, bottom = np.flatnonzero(rows)[[0, -1]]
    left, right = np.flatnonzero(cols)[[0, -1]]
    height = int(bottom - top + 1)
    width = int(right - left + 1)
    box = mask[top : bottom + 1, left : right + 1]
    band_edges = np.linspace(0, height, profile_bands + 1).astype(int)
    profile = []
    for i in range(profile_bands):
        band = box[band_edges[i] : band_edges[i + 1]]
        profile.append(float(band.sum()) / float(area))
    return ShapeFeatures(
        area=area,
        height=height,
        width=width,
        aspect_ratio=float(height) / float(width),
        fill_ratio=float(area) / float(height * width),
        vertical_profile=tuple(profile),
    )


class ExtendedFeatureExtractor:
    """Produce an extended binary signature: colour histogram + shape bits.

    The colour part follows the paper exactly; the shape part quantises each
    shape statistic into ``bits_per_feature`` thermometer-coded bits so that
    Hamming distance remains meaningful (adjacent quantisation levels differ
    by a single bit).
    """

    def __init__(
        self,
        bins_per_channel: int = 256,
        bits_per_feature: int = 8,
        profile_bands: int = 8,
        strategy: ThresholdStrategy | None = None,
    ):
        if bits_per_feature <= 0:
            raise ConfigurationError(
                f"bits_per_feature must be positive, got {bits_per_feature}"
            )
        self.bins_per_channel = bins_per_channel
        self.bits_per_feature = bits_per_feature
        self.profile_bands = profile_bands
        self.strategy = strategy or MeanThreshold()

    @property
    def signature_length(self) -> int:
        """Total length of the extended signature in bits."""
        shape_scalars = 3 + self.profile_bands  # aspect, fill, norm. area + profile
        return 3 * self.bins_per_channel + shape_scalars * self.bits_per_feature

    def _thermometer(self, value: float, low: float, high: float) -> np.ndarray:
        """Thermometer-code ``value`` within ``[low, high]``."""
        span = max(high - low, 1e-12)
        level = int(round((np.clip(value, low, high) - low) / span * self.bits_per_feature))
        bits = np.zeros(self.bits_per_feature, dtype=np.uint8)
        bits[:level] = 1
        return bits

    def extract(self, image: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Return the extended binary signature for ``image`` under ``mask``."""
        from repro.signatures.histogram import rgb_histogram
        from repro.signatures.binarize import binarize_histogram

        histogram = rgb_histogram(image, mask, self.bins_per_channel)
        colour_bits = binarize_histogram(histogram, self.strategy)
        shape = shape_features(mask, self.profile_bands)
        image_area = float(mask.shape[0] * mask.shape[1])
        pieces = [
            colour_bits,
            self._thermometer(shape.aspect_ratio, 0.0, 4.0),
            self._thermometer(shape.fill_ratio, 0.0, 1.0),
            self._thermometer(shape.area / image_area, 0.0, 0.5),
        ]
        pieces.extend(
            self._thermometer(band, 0.0, 0.5) for band in shape.vertical_profile
        )
        return np.concatenate(pieces).astype(np.uint8)
