"""The :class:`BinarySignature` value object and one-shot extraction helper.

A *binary signature* is the paper's appearance descriptor: a 768-bit vector
obtained by mean-thresholding an object's RGB colour histogram.  This module
wraps the raw bit vector in a small immutable value object so the rest of
the library (SOMs, datasets, the FPGA simulation) can pass signatures around
with their provenance (frame index, track id, label) attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import DataError
from repro.signatures.binarize import ThresholdStrategy, binarize_histogram
from repro.signatures.histogram import HISTOGRAM_BINS, rgb_histogram
from repro.signatures.packing import (
    SIGNATURE_IMAGE_SHAPE,
    pack_bits,
    signature_to_image,
)


@dataclass(frozen=True)
class BinarySignature:
    """An immutable binary appearance signature.

    Attributes
    ----------
    bits:
        ``uint8`` vector of zeros and ones (length 768 in the paper's
        configuration).  The array is copied and made read-only on
        construction so signatures can safely be shared and hashed.
    label:
        Optional identity label (the paper's manually labelled object id).
    track_id:
        Optional id of the track the signature was extracted from.
    frame_index:
        Optional index of the video frame it came from.
    """

    bits: np.ndarray
    label: Optional[int] = None
    track_id: Optional[int] = None
    frame_index: Optional[int] = None

    def __post_init__(self) -> None:
        bits = np.asarray(self.bits)
        if bits.ndim != 1 or bits.size == 0:
            raise DataError(
                f"signature bits must be a non-empty 1-D vector, got shape {bits.shape}"
            )
        if not np.all(np.isin(np.unique(bits), (0, 1))):
            raise DataError("signature bits must contain only zeros and ones")
        bits = bits.astype(np.uint8).copy()
        bits.setflags(write=False)
        object.__setattr__(self, "bits", bits)

    def __len__(self) -> int:
        return int(self.bits.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinarySignature):
            return NotImplemented
        return (
            self.bits.shape == other.bits.shape
            and bool(np.all(self.bits == other.bits))
            and self.label == other.label
        )

    def __hash__(self) -> int:
        return hash((self.bits.tobytes(), self.label))

    @property
    def popcount(self) -> int:
        """Number of set bits in the signature."""
        return int(self.bits.sum())

    def hamming_distance(self, other: "BinarySignature | np.ndarray") -> int:
        """Hamming distance to another signature or raw bit vector."""
        other_bits = other.bits if isinstance(other, BinarySignature) else np.asarray(other)
        if other_bits.shape != self.bits.shape:
            raise DataError(
                f"cannot compare signatures of lengths {self.bits.size} and "
                f"{other_bits.size}"
            )
        return int(np.count_nonzero(self.bits != other_bits))

    def packed(self) -> np.ndarray:
        """Return the signature packed into bytes (BlockRAM layout)."""
        return pack_bits(self.bits)

    def as_image(self, shape: tuple[int, int] = SIGNATURE_IMAGE_SHAPE) -> np.ndarray:
        """Return the signature as the 2-D binary image the FPGA streams."""
        return signature_to_image(self.bits, shape)

    def with_label(self, label: int) -> "BinarySignature":
        """Return a copy of this signature carrying ``label``."""
        return BinarySignature(
            bits=self.bits.copy(),
            label=int(label),
            track_id=self.track_id,
            frame_index=self.frame_index,
        )


def extract_signature(
    image: np.ndarray,
    mask: np.ndarray | None = None,
    *,
    bins_per_channel: int = HISTOGRAM_BINS // 3,
    strategy: ThresholdStrategy | None = None,
    label: Optional[int] = None,
    track_id: Optional[int] = None,
    frame_index: Optional[int] = None,
) -> BinarySignature:
    """Extract a :class:`BinarySignature` from an image and silhouette mask.

    This is the composition the paper's figure 1 shows on the CPU side:
    histogram the silhouette pixels, threshold at the mean, emit the binary
    signature.

    Parameters
    ----------
    image:
        ``HxWx3`` RGB frame.
    mask:
        Boolean silhouette of the moving object; ``None`` uses every pixel.
    bins_per_channel:
        Bins per colour channel (256 in the paper, 768 bits total).
    strategy:
        Binarisation rule; defaults to the paper's mean threshold.
    label, track_id, frame_index:
        Optional provenance recorded on the resulting signature.
    """
    histogram = rgb_histogram(image, mask, bins_per_channel)
    bits = binarize_histogram(histogram, strategy)
    return BinarySignature(
        bits=bits, label=label, track_id=track_id, frame_index=frame_index
    )
