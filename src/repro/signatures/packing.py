"""Bit packing helpers and the 32x24 image view of a signature.

The FPGA design (section V-B of the paper) streams each 768-bit signature in
as a 32x24 binary image, one bit per clock cycle.  These helpers convert
between the three representations used throughout the library:

* an unpacked ``uint8`` vector of zeros and ones (the software view),
* a packed ``uint8`` byte array (the storage / BlockRAM view), and
* a 2-D binary image (the camera-interface / VGA-display view).
"""

from __future__ import annotations

import numpy as np

from repro.core.backends import pack_bits_to_words
from repro.errors import DataError

#: Default image shape the FPGA design streams signatures as (width x height).
SIGNATURE_IMAGE_SHAPE = (24, 32)  # rows, columns -> 768 bits


def _validate_bits(bits: np.ndarray, *, validate: bool = True) -> np.ndarray:
    bits = np.asarray(bits)
    if bits.ndim != 1:
        raise DataError(f"expected a one-dimensional bit vector, got shape {bits.shape}")
    if bits.size == 0:
        raise DataError("bit vector must not be empty")
    if validate:
        values = np.unique(bits)
        if not np.all(np.isin(values, (0, 1))):
            raise DataError("bit vector must contain only zeros and ones")
    return bits.astype(np.uint8)


def pack_bits(bits: np.ndarray, *, validate: bool = True) -> np.ndarray:
    """Pack a vector of zeros and ones into bytes (big-endian within a byte).

    The packed form is what the BlockRAM model in :mod:`repro.hw` stores:
    768 bits fit in 96 bytes per neuron.  ``validate=False`` skips the
    O(n log n) zeros-and-ones scan for callers that validated the bits at
    the API boundary already.
    """
    bits = _validate_bits(bits, validate=validate)
    return np.packbits(bits)


def unpack_bits(packed: np.ndarray, length: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns exactly ``length`` bits."""
    packed = np.asarray(packed, dtype=np.uint8)
    if length <= 0:
        raise DataError(f"length must be positive, got {length}")
    bits = np.unpackbits(packed)
    if bits.size < length:
        raise DataError(
            f"packed buffer holds only {bits.size} bits but {length} were requested"
        )
    return bits[:length].astype(np.uint8)


def pack_signature_batch(bits: np.ndarray, *, validate: bool = True) -> np.ndarray:
    """Pack a ``(n_samples, n_bits)`` binary matrix row-wise into bytes.

    The batched counterpart of :func:`pack_bits`: one ``packbits`` call
    over the whole matrix instead of a Python loop.  Each packed row equals
    ``pack_bits`` of the corresponding input row, so row ``i`` of the
    result is byte-identical to :func:`signature_key` of signature ``i`` --
    useful for bulk-deriving cache keys or BlockRAM images of a whole
    signature set.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise DataError(f"expected a 2-D bit matrix, got shape {bits.shape}")
    if bits.size == 0:
        raise DataError("bit matrix must not be empty")
    if validate and not np.all(np.isin(np.unique(bits), (0, 1))):
        raise DataError("bit matrix must contain only zeros and ones")
    return np.packbits(bits.astype(np.uint8), axis=1)


def signature_key(bits: np.ndarray, *, validate: bool = True) -> bytes:
    """Compact, hashable identity of one signature: its packed bytes.

    Two signatures share a key exactly when they are bit-for-bit equal, so
    the serving layer's LRU cache (:mod:`repro.serve.cache`) can treat the
    packed 96-byte form of a 768-bit signature as the cache key -- repeated
    silhouettes of the same object hash to the same entry and skip the SOM
    entirely.

    The serving layer itself now derives its keys from the padded
    ``uint64`` words of :func:`repro.core.backends.pack_bits_to_words`
    (packing once for both the cache key and the distance kernel); both
    forms are injective over equal-length signatures, and for 768-bit
    signatures (96 bytes = 12 words exactly) they are byte-identical.
    """
    return pack_bits(bits, validate=validate).tobytes()


def packed_signature_words(bits: np.ndarray, *, validate: bool = True) -> np.ndarray:
    """Validate once, pack once: one signature as ``uint64`` words.

    The serving layer's submit path derives *both* artefacts it needs from
    this single call: the words feed the packed distance backend directly
    (:meth:`repro.core.BinarySom.distance_matrix_packed`), and their raw
    bytes (``words.tobytes()``) are the LRU cache key.  The signature is
    therefore validated and packed exactly once per request, instead of
    once per lookup plus once per classification.
    """
    bits = _validate_bits(bits, validate=validate)
    return pack_bits_to_words(bits)


def signature_to_image(
    bits: np.ndarray, shape: tuple[int, int] = SIGNATURE_IMAGE_SHAPE
) -> np.ndarray:
    """Reshape a flat signature into the binary image the FPGA streams.

    Parameters
    ----------
    bits:
        Flat binary vector whose length must equal ``shape[0] * shape[1]``.
    shape:
        ``(rows, columns)`` of the image; default 24x32 = 768 bits.
    """
    bits = _validate_bits(bits)
    rows, cols = shape
    if bits.size != rows * cols:
        raise DataError(
            f"signature of length {bits.size} cannot be reshaped to {rows}x{cols}"
        )
    return bits.reshape(rows, cols)


def image_to_signature(image: np.ndarray) -> np.ndarray:
    """Flatten a binary image back into a signature vector (row-major).

    Row-major order matches the raster scan the pattern-input block uses
    when it reads bits from the camera interface.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise DataError(f"expected a 2-D binary image, got shape {image.shape}")
    return _validate_bits(image.reshape(-1))
