"""Exporters: JSONL metric snapshots and Prometheus text rendering.

Two render targets over one :class:`~repro.obs.metrics.MetricRegistry`:

* :class:`JsonlExporter` appends self-contained JSON records (metrics +
  incremental events) to a file -- the format the upcoming load harness
  aggregates into ``BENCH_serve.json``, and what the examples write behind
  their ``--metrics-out`` flags, and
* :func:`render_prometheus` emits the Prometheus text exposition format
  (``# TYPE`` headers, cumulative ``_bucket{le=...}`` histogram series,
  ``_sum``/``_count``), with :func:`parse_prometheus` as the matching
  parser so CI can prove the round trip (``scripts/check_obs.py``).

Durations cross this boundary in *seconds* -- the registry's invariant --
and any millisecond convenience values are derived here, never stored.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Any, Callable, Optional, TextIO, Union

from repro.errors import ConfigurationError, DataError
from repro.obs.events import EventLog
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry

PathLike = Union[str, Path]


# --------------------------------------------------------------------- #
# JSON snapshot records
# --------------------------------------------------------------------- #
def metrics_record(registry: MetricRegistry) -> dict[str, Any]:
    """One JSON-safe snapshot of every metric in ``registry``.

    Counters and gauges render as numbers; histograms as
    ``{"buckets": {le: cumulative_count}, "sum": ..., "count": ...,
    "p50": ..., "p99": ..., "p999": ...}`` so downstream aggregation never
    needs the registry object.  Keys are ``name`` or ``name{k=v,...}``.
    """
    record: dict[str, Any] = {}
    for metric in registry.collect():
        key = metric.name
        if metric.labels:
            rendered = ",".join(f"{k}={v}" for k, v in metric.labels)
            key = f"{metric.name}{{{rendered}}}"
        if isinstance(metric, Histogram):
            counts = metric.bucket_counts()
            cumulative: dict[str, int] = {}
            running = 0
            for bound, count in zip(metric.bounds, counts):
                running += count
                cumulative[repr(float(bound))] = running
            cumulative["+Inf"] = running + counts[-1]
            record[key] = {
                "buckets": cumulative,
                "sum": metric.sum,
                "count": metric.count,
                "p50": metric.quantile(0.50),
                "p99": metric.quantile(0.99),
                "p999": metric.quantile(0.999),
            }
        elif isinstance(metric, (Counter, Gauge)):
            record[key] = metric.value
    return record


class JsonlExporter:
    """Append metric snapshots (plus incremental events) to a JSONL file.

    Each :meth:`export` call writes one line::

        {"ts": <unix seconds>, "metrics": {...}, "events": [...]}

    Events are shipped incrementally: the exporter remembers the last
    sequence number written, so a periodic exporter never duplicates an
    event even though the log is a ring.

    Parameters
    ----------
    path:
        Output file, opened in append mode per call (crash-safe: a dead
        scraper never holds the file).
    clock:
        Wall-clock source for the ``ts`` field (unix seconds; traces and
        events keep their own monotonic timestamps).
    """

    def __init__(self, path: PathLike, *, clock: Callable[[], float] = time.time):
        self.path = Path(path)
        self._clock = clock
        self._last_event_seq: Optional[int] = None

    def export(
        self,
        registry: MetricRegistry,
        *,
        events: Optional[EventLog] = None,
        extra: Optional[dict[str, Any]] = None,
    ) -> dict[str, Any]:
        """Write one snapshot line; returns the record that was written."""
        record: dict[str, Any] = {
            "ts": float(self._clock()),
            "metrics": metrics_record(registry),
        }
        if events is not None:
            fresh = events.events(since_seq=self._last_event_seq)
            record["events"] = [event.to_dict() for event in fresh]
            if fresh:
                self._last_event_seq = fresh[-1].seq
            elif self._last_event_seq is None:
                self._last_event_seq = events.last_seq
        if extra:
            record.update(extra)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        return record


def read_jsonl(path: PathLike) -> list[dict[str, Any]]:
    """Read every record of a JSONL snapshot file (schema-checking helper)."""
    records = []
    for line_number, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise DataError(f"{path}:{line_number}: invalid JSON ({error})") from error
        if not isinstance(record, dict) or "metrics" not in record or "ts" not in record:
            raise DataError(
                f"{path}:{line_number}: snapshot records need 'ts' and 'metrics' keys"
            )
        records.append(record)
    return records


# --------------------------------------------------------------------- #
# Windowed deltas over consecutive snapshots
# --------------------------------------------------------------------- #
def _window_quantile(buckets: dict[str, float], q: float) -> float:
    """Quantile over a *window's* cumulative bucket deltas.

    Mirrors :meth:`~repro.obs.metrics.Histogram.quantile` exactly --
    linear interpolation inside the target bucket, the overflow bucket
    reporting its finite lower edge, 0.0 for an empty window -- so a
    windowed p99 is comparable with the registry's own lifetime p99.
    """
    finite = sorted(
        (float(le), float(count))
        for le, count in buckets.items()
        if le != "+Inf"
    )
    if not finite:
        return 0.0
    bounds = [edge for edge, _ in finite]
    cumulative = [count for _, count in finite]
    total = float(buckets.get("+Inf", cumulative[-1]))
    if total <= 0:
        return 0.0
    target = q * total
    previous = 0.0
    for index, edge in enumerate(bounds):
        bucket_count = cumulative[index] - previous
        if bucket_count > 0:
            lower = bounds[index - 1] if index > 0 else 0.0
            if cumulative[index] >= target:
                fraction = (target - previous) / bucket_count
                return lower + (edge - lower) * min(1.0, max(0.0, fraction))
        previous = cumulative[index]
    return bounds[-1]  # target rank landed in the overflow bucket


def windowed_deltas(
    snapshots: "list[dict[str, Any]]",
) -> list[dict[str, Any]]:
    """Diff consecutive metric snapshots into per-window deltas.

    Input is a sequence of at least two snapshot records -- either full
    JSONL records (as written by :class:`JsonlExporter` / read back by
    :func:`read_jsonl`, with the metrics under a ``"metrics"`` key) or
    bare :func:`metrics_record` dicts.  Returns ``len(snapshots) - 1``
    dicts, one per consecutive window, keyed like the input:

    * cumulative series (names ending ``_total`` or ``_sum``, the
      vocabulary's counter grammar) become the difference ``b - a``
      (a series absent from the earlier snapshot counts from zero);
    * other plain numbers are gauges and carry the window-end value;
    * histograms become ``{"buckets": <per-le delta>, "count": ...,
      "sum": ..., "p50": ..., "p99": ..., "p999": ...}`` where the
      quantiles are computed from the *delta* buckets -- i.e. the
      latency distribution of just that window, which is what per-phase
      load reports need and lifetime quantiles cannot provide.
    """
    metric_maps: list[dict[str, Any]] = []
    for snapshot in snapshots:
        if not isinstance(snapshot, dict):
            raise DataError(
                f"snapshots must be dicts, got {type(snapshot).__name__}"
            )
        metrics = snapshot.get("metrics", snapshot)
        if not isinstance(metrics, dict):
            raise DataError("snapshot 'metrics' entry must be a dict")
        metric_maps.append(metrics)
    if len(metric_maps) < 2:
        raise DataError(
            f"windowed_deltas needs at least two snapshots, got {len(metric_maps)}"
        )
    windows: list[dict[str, Any]] = []
    for before, after in zip(metric_maps, metric_maps[1:]):
        delta: dict[str, Any] = {}
        for key, end_value in after.items():
            start_value = before.get(key)
            if isinstance(end_value, dict) and "buckets" in end_value:
                start_buckets = (
                    start_value.get("buckets", {})
                    if isinstance(start_value, dict)
                    else {}
                )
                buckets = {
                    le: count - start_buckets.get(le, 0)
                    for le, count in end_value["buckets"].items()
                }
                start_count = (
                    start_value.get("count", 0)
                    if isinstance(start_value, dict)
                    else 0
                )
                start_sum = (
                    start_value.get("sum", 0.0)
                    if isinstance(start_value, dict)
                    else 0.0
                )
                delta[key] = {
                    "buckets": buckets,
                    "count": end_value.get("count", 0) - start_count,
                    "sum": end_value.get("sum", 0.0) - start_sum,
                    "p50": _window_quantile(buckets, 0.50),
                    "p99": _window_quantile(buckets, 0.99),
                    "p999": _window_quantile(buckets, 0.999),
                }
            elif isinstance(end_value, (int, float)):
                name = key.split("{", 1)[0]
                if name.endswith(("_total", "_sum")):
                    base = (
                        start_value
                        if isinstance(start_value, (int, float))
                        else 0
                    )
                    delta[key] = end_value - base
                else:
                    delta[key] = end_value  # gauge: carry the latest level
        windows.append(delta)
    return windows


# --------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------- #
def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _render_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{name}="{_escape_label_value(value)}"' for name, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _render_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(registry: MetricRegistry) -> str:
    """Render every metric in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for metric in registry.collect():
        if metric.name not in seen_headers:
            seen_headers.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            counts = metric.bucket_counts()
            running = 0
            for bound, count in zip(metric.bounds, counts):
                running += count
                labels = _render_labels(metric.labels, f'le="{_render_value(bound)}"')
                lines.append(f"{metric.name}_bucket{labels} {running}")
            labels = _render_labels(metric.labels, 'le="+Inf"')
            lines.append(f"{metric.name}_bucket{labels} {running + counts[-1]}")
            lines.append(
                f"{metric.name}_sum{_render_labels(metric.labels)} "
                f"{_render_value(metric.sum)}"
            )
            lines.append(
                f"{metric.name}_count{_render_labels(metric.labels)} {metric.count}"
            )
        else:
            lines.append(
                f"{metric.name}{_render_labels(metric.labels)} "
                f"{_render_value(metric.value)}"
            )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse Prometheus text back into ``{(name, labels): value}``.

    The inverse of :func:`render_prometheus` for the subset it emits --
    enough for CI to prove a lossless round trip of every sample line.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name_part, value_part = line.rsplit(" ", 1)
        except ValueError:
            raise DataError(f"line {line_number}: not a sample line: {raw!r}")
        labels: list[tuple[str, str]] = []
        name = name_part
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise DataError(f"line {line_number}: unterminated labels: {raw!r}")
            name, label_blob = name_part[:-1].split("{", 1)
            if label_blob:
                for pair in label_blob.split(","):
                    key, _, value = pair.partition("=")
                    if not value.startswith('"') or not value.endswith('"'):
                        raise DataError(
                            f"line {line_number}: unquoted label value: {raw!r}"
                        )
                    unescaped = (
                        value[1:-1].replace('\\"', '"').replace("\\\\", "\\")
                    )
                    labels.append((key, unescaped))
        if value_part == "+Inf":
            value = math.inf
        elif value_part == "-Inf":
            value = -math.inf
        elif value_part == "NaN":
            value = math.nan
        else:
            try:
                value = float(value_part)
            except ValueError:
                raise DataError(f"line {line_number}: bad value {value_part!r}")
        samples[(name, tuple(labels))] = value
    return samples


def write_prometheus(
    registry: MetricRegistry, target: Union[PathLike, TextIO]
) -> None:
    """Render ``registry`` to a path or open text handle."""
    text = render_prometheus(registry)
    if hasattr(target, "write"):
        target.write(text)
        return
    Path(target).write_text(text, encoding="utf-8")
