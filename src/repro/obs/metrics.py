"""The metric registry: named counters, gauges and fixed-bucket histograms.

One process-wide vocabulary for everything the system measures.  The serve
layer (:class:`repro.serve.metrics.ServiceMetrics`) and the vision pipeline
(:class:`repro.pipeline.metrics.PipelineMetrics`) are both thin facades
over instances of this registry, so a single exporter pass
(:mod:`repro.obs.export`) sees every signal under one consistent naming
scheme -- ``<subsystem>_<quantity>_<unit>`` with durations always in
*seconds* (exporters and snapshot dataclasses convert to milliseconds at
render time, never before).

Three metric kinds, deliberately mirroring the Prometheus data model:

* :class:`Counter` -- monotonically increasing totals (``*_total``),
* :class:`Gauge` -- instantaneous values, settable or backed by a callback
  read lazily at collection time (queue depths, pending budgets), and
* :class:`Histogram` -- fixed-bucket distributions.  Observations fall
  into pre-declared buckets, so p50/p99/p999 estimates
  (:meth:`Histogram.quantile`) cost O(buckets) with **no raw samples
  stored** -- a long-running service's latency telemetry is O(1) memory.

Recording is O(1) under a per-metric lock; the registry lock is only taken
to create or look up metrics, which callers do once and cache.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Mapping, Optional, Sequence

from repro.errors import ConfigurationError

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Immutable, hashable form of a labels mapping.
LabelsKey = tuple[tuple[str, str], ...]


def labels_key(labels: Optional[Mapping[str, str]]) -> LabelsKey:
    """Normalise a labels mapping into a sorted, hashable key."""
    if not labels:
        return ()
    for name in labels:
        if not _LABEL_NAME.match(name):
            raise ConfigurationError(f"invalid label name {name!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """Geometric bucket bounds: ``start * factor**i`` for ``i < count``."""
    if start <= 0 or factor <= 1.0 or count <= 0:
        raise ConfigurationError(
            f"need start > 0, factor > 1, count > 0; got {start}, {factor}, {count}"
        )
    return tuple(start * factor**i for i in range(count))


#: Default duration buckets: ~10 us to ~2 minutes, geometric (x1.6).  Wide
#: enough for a cache hit and a saturated p999 alike, and the same bounds
#: everywhere means percentile estimates are comparable across services.
DEFAULT_TIME_BUCKETS = exponential_buckets(1e-5, 1.6, 35)


class Metric:
    """Base class: identity (name, labels, help) plus the recording lock."""

    kind = "untyped"

    def __init__(self, name: str, labels: LabelsKey, help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()

    def _read_unlocked(self) -> float:
        raise NotImplementedError

    @property
    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)


def read_consistent(*metrics: "Metric") -> tuple[float, ...]:
    """Read several metrics' values while holding *all* their locks.

    Derived gauges like a hit *ratio* are wrong if their numerator and
    denominator are read in two separate critical sections -- a recorder
    can slip between the reads.  Locks are acquired in a deterministic
    (id-sorted) order so two concurrent consistent reads cannot deadlock.
    Callback-backed gauges are evaluated inside the critical section.
    """
    ordered = sorted(set(metrics), key=id)
    for metric in ordered:
        metric._lock.acquire()
    try:
        return tuple(metric._read_unlocked() for metric in metrics)
    finally:
        for metric in reversed(ordered):
            metric._lock.release()


class Counter(Metric):
    """A monotonically increasing total (resettable only for benchmarks)."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelsKey, help: str = ""):
        super().__init__(name, labels, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _read_unlocked(self) -> float:
        return self._value

    def reset(self) -> None:
        """Zero the counter (benchmark repeats only; never during export)."""
        with self._lock:
            self._value = 0.0


class Gauge(Metric):
    """An instantaneous value: set directly, or read from a callback.

    A callback gauge (``fn=...``) is evaluated lazily at collection time,
    so live quantities like queue depth never need a recording hook on the
    hot path.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: LabelsKey,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ):
        super().__init__(name, labels, help)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ConfigurationError(
                f"gauge {self.name!r} is callback-backed and cannot be set"
            )
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise ConfigurationError(
                f"gauge {self.name!r} is callback-backed and cannot be set"
            )
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def _read_unlocked(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def reset(self) -> None:
        if self._fn is None:
            with self._lock:
                self._value = 0.0


class Histogram(Metric):
    """Fixed-bucket distribution with O(buckets) quantile estimates.

    Parameters
    ----------
    buckets:
        Strictly increasing upper bounds.  An implicit ``+Inf`` overflow
        bucket is always appended, so every observation lands somewhere.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelsKey,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ):
        super().__init__(name, labels, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} needs strictly increasing, non-empty buckets"
            )
        if any(not math.isfinite(b) for b in bounds):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be finite (+Inf is implicit)"
            )
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = overflow (+Inf)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def _read_unlocked(self) -> float:
        return float(self._count)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket (non-cumulative) counts; the last entry is overflow."""
        with self._lock:
            return tuple(self._counts)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) by bucket interpolation.

        Linear interpolation inside the bucket that contains the target
        rank; the overflow bucket reports its lower bound (the largest
        finite bucket edge), which keeps the estimate finite and monotone.
        Returns 0.0 before the first observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must lie in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = tuple(self._counts)
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            lower = self.bounds[index - 1] if index > 0 else 0.0
            if index >= len(self.bounds):  # overflow bucket
                return self.bounds[-1]
            upper = self.bounds[index]
            if cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
            cumulative += bucket_count
        return self.bounds[-1]

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0


class MetricRegistry:
    """Get-or-create home for every named metric of one process/service.

    ``counter``/``gauge``/``histogram`` return the existing instance when
    the (name, labels) pair is already registered -- callers hold the
    returned object and record through it without further registry lookups.
    Re-registering a name with a different kind (or a histogram with
    different buckets) raises :class:`ConfigurationError` so two subsystems
    can never silently split one metric.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelsKey], Metric] = {}

    def _get_or_create(self, cls, name: str, labels, help: str, **kwargs) -> Metric:
        if not _METRIC_NAME.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        key = (name, labels_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigurationError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                if (
                    isinstance(existing, Histogram)
                    and "buckets" in kwargs
                    and tuple(float(b) for b in kwargs["buckets"]) != existing.bounds
                ):
                    raise ConfigurationError(
                        f"histogram {name!r} is already registered with "
                        "different buckets"
                    )
                return existing
            metric = cls(name, key[1], help, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(
        self, name: str, *, labels: Optional[Mapping[str, str]] = None, help: str = ""
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(
        self,
        name: str,
        *,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        gauge = self._get_or_create(Gauge, name, labels, help, fn=fn)
        if fn is not None and gauge._fn is None:
            # Upgrading an existing settable gauge to callback-backed would
            # silently discard its stored value; refuse instead.
            raise ConfigurationError(
                f"gauge {name!r} is already registered as settable"
            )
        return gauge

    def histogram(
        self,
        name: str,
        *,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, help, buckets=buckets)

    def get(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get((name, labels_key(labels)))

    def collect(self) -> list[Metric]:
        """Every registered metric, ordered by (name, labels) for stable export."""
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted(metrics, key=lambda m: (m.name, m.labels))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return any(key[0] == name for key in self._metrics)
