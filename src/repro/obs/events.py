"""Structured lifecycle event log with monotonic sequence numbers.

Counters say a swap happened; the event log says *which model, when, and in
what order relative to everything else*.  Lifecycle transitions
(``model_swap``, ``evict``, ``dedup``, ``shed``, ``cache_invalidate``,
``model_registered``) are appended as immutable :class:`Event` records with
a process-wide monotonic ``seq`` -- eviction from the bounded ring never
reuses or reorders sequence numbers, so an exporter that remembers the last
``seq`` it shipped can stream increments (:class:`repro.obs.export.JsonlExporter`
does exactly that).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Event:
    """One structured lifecycle event.

    Attributes
    ----------
    seq:
        Monotonically increasing sequence number (never reused).
    ts_s:
        Monotonic timestamp in seconds (the owning log's clock).
    kind:
        Event type, e.g. ``"model_swap"``.
    fields:
        Free-form structured payload (model name, counts, ...).
    """

    seq: int
    ts_s: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "ts_s": self.ts_s,
            "kind": self.kind,
            **{k: v for k, v in self.fields.items() if k not in ("seq", "ts_s", "kind")},
        }


class EventLog:
    """Thread-safe bounded ring of :class:`Event` records.

    Parameters
    ----------
    capacity:
        Events retained; the oldest is dropped when a newer one arrives.
        ``total_emitted`` and ``seq`` keep counting past evictions.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self, capacity: int = 1024, *, clock: Callable[[], float] = time.monotonic
    ):
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._clock = clock
        self._lock = threading.Lock()
        self._events: deque[Event] = deque(maxlen=self.capacity)
        self._next_seq = 0

    def emit(self, kind: str, **fields: Any) -> Event:
        """Append one event; returns the stamped record."""
        with self._lock:
            event = Event(self._next_seq, self._clock(), str(kind), dict(fields))
            self._next_seq += 1
            self._events.append(event)
        return event

    def events(
        self, *, since_seq: Optional[int] = None, kind: Optional[str] = None
    ) -> tuple[Event, ...]:
        """Retained events in order, optionally after ``since_seq`` / by kind."""
        with self._lock:
            events = tuple(self._events)
        if since_seq is not None:
            events = tuple(e for e in events if e.seq > since_seq)
        if kind is not None:
            events = tuple(e for e in events if e.kind == kind)
        return events

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent event (-1 when none yet)."""
        with self._lock:
            return self._next_seq - 1

    @property
    def total_emitted(self) -> int:
        with self._lock:
            return self._next_seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
