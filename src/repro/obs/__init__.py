"""Unified observability: tracing, metric registry, events and exporters.

One substrate the whole system reports through, replacing the previously
fragmented telemetry (two unrelated snapshot classes in ``serve`` and
``pipeline``, bare lifecycle counters):

* :mod:`repro.obs.metrics` -- named counters, gauges and fixed-bucket
  histograms in a :class:`MetricRegistry`; p50/p99/p999 without storing
  raw samples, durations always in seconds internally,
* :mod:`repro.obs.trace` -- per-request spans (queue-wait, batch, kernel,
  cache) with parent/cross-trace links, sampled, in a bounded ring,
* :mod:`repro.obs.events` -- structured lifecycle events (``model_swap``,
  ``evict``, ``dedup``, ``shed``, ``cache_invalidate``) with monotonic
  sequence numbers, and
* :mod:`repro.obs.export` -- JSONL snapshot writer and Prometheus text
  renderer (plus the parser CI uses to prove the round trip).

:class:`Observability` bundles one of each behind a single object that a
:class:`~repro.serve.StreamingInferenceService` threads through its
scheduler, shards, cache, dedup table and hot-swap path::

    from repro import api
    from repro.obs import Observability

    obs = Observability(sample_every=1)          # trace every request
    service = api.serve({"hall": snapshot}, obs=obs)
    response = service.submit(signature, model="hall").result()
    trace = obs.trace(response.trace_id)         # submit -> queue -> batch
    print(trace.span_names())                    #   -> kernel -> resolve

``scripts/check_obs.py`` holds the throughput overhead of observability
(at the default sampling rate) to <= 5% in CI.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.obs.events import Event, EventLog
from repro.obs.export import (
    JsonlExporter,
    metrics_record,
    parse_prometheus,
    read_jsonl,
    render_prometheus,
    windowed_deltas,
    write_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    exponential_buckets,
)
from repro.obs.trace import ROOT_SPAN, Span, Trace, Tracer


class Observability:
    """One registry + tracer + event log, wired to a shared clock.

    Parameters
    ----------
    sample_every:
        Trace every Nth request (``1`` = all, ``0`` = tracing off).  The
        serving default of 16 keeps the measured throughput overhead well
        inside the 5% CI bound while still surfacing a steady stream of
        complete traces.
    trace_capacity, event_capacity:
        Ring sizes for completed traces and lifecycle events.
    registry, tracer, events:
        Pre-built components to share (e.g. one registry across several
        services scraped by one exporter); built fresh when omitted.
    clock:
        Monotonic time source shared by tracer and events, injectable for
        tests (pass the service's clock).
    """

    def __init__(
        self,
        *,
        sample_every: int = 16,
        trace_capacity: int = 512,
        event_capacity: int = 1024,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
        events: Optional[EventLog] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = tracer if tracer is not None else Tracer(
            capacity=trace_capacity, sample_every=sample_every, clock=clock
        )
        self.events = events if events is not None else EventLog(
            capacity=event_capacity, clock=clock
        )

    @classmethod
    def disabled(cls, **kwargs) -> "Observability":
        """An instance with tracing off (metrics and events still record)."""
        kwargs.setdefault("sample_every", 0)
        return cls(**kwargs)

    def trace(self, trace_id: Optional[int]) -> Optional[Trace]:
        """Look up a trace (in flight or completed) by id."""
        return self.tracer.get(trace_id)

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        return render_prometheus(self.registry)

    def metrics_record(self) -> dict:
        """The registry as one JSON-safe snapshot dict."""
        return metrics_record(self.registry)


__all__ = [
    "Observability",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_TIME_BUCKETS",
    "exponential_buckets",
    "Tracer",
    "Trace",
    "Span",
    "ROOT_SPAN",
    "EventLog",
    "Event",
    "JsonlExporter",
    "metrics_record",
    "read_jsonl",
    "render_prometheus",
    "parse_prometheus",
    "windowed_deltas",
    "write_prometheus",
]
